"""Command-line interface.

Run ``python -m repro <command>``:

* ``info`` — version, architectures, and the Table I/II summaries.
* ``train`` — confidential collaborative training on synthetic data.
* ``assess`` — information-exposure assessment of a freshly trained model.
* ``forensics`` — the Trojaning-attack accountability pipeline.

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CalTrain: confidential and accountable collaborative learning",
    )
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and architecture tables")

    train = sub.add_parser("train", help="confidential collaborative training")
    train.add_argument("--architecture", default="cifar10-10layer",
                       choices=["cifar10-10layer", "cifar10-18layer"])
    train.add_argument("--epochs", type=int, default=4)
    train.add_argument("--width-scale", type=float, default=0.1)
    train.add_argument("--partition", type=int, default=2)
    train.add_argument("--participants", type=int, default=3)
    train.add_argument("--train-size", type=int, default=300)
    train.add_argument("--test-size", type=int, default=100)

    assess = sub.add_parser("assess", help="exposure assessment")
    assess.add_argument("--epochs", type=int, default=3)
    assess.add_argument("--width-scale", type=float, default=0.1)
    assess.add_argument("--inputs", type=int, default=2)

    forensics = sub.add_parser("forensics", help="trojan accountability demo")
    forensics.add_argument("--identities", type=int, default=8)
    forensics.add_argument("--queries", type=int, default=3)
    return parser


def _cmd_info(args) -> int:
    import repro
    from repro.nn.zoo import cifar10_10layer, cifar10_18layer

    print(f"repro-caltrain {repro.__version__}")
    print("\nTable I — 10-layer CIFAR-10 network:")
    print(cifar10_10layer(np.random.default_rng(0), width_scale=1.0).summary())
    print("\nTable II — 18-layer CIFAR-10 network:")
    print(cifar10_18layer(np.random.default_rng(0), width_scale=1.0).summary())
    return 0


def _cmd_train(args) -> int:
    from repro.core.caltrain import CalTrain, CalTrainConfig
    from repro.data.datasets import synthetic_cifar
    from repro.federation.participant import TrainingParticipant
    from repro.utils.rng import RngStream

    rng = RngStream(args.seed, name="cli-train")
    train, test = synthetic_cifar(rng.child("data"), num_train=args.train_size,
                                  num_test=args.test_size)
    system = CalTrain(CalTrainConfig(
        seed=args.seed, architecture=args.architecture,
        width_scale=args.width_scale, epochs=args.epochs,
        partition=args.partition, augment=False,
    ))
    print(f"enclave MRENCLAVE: {system.expected_measurement.hex()}")
    fractions = [1.0 / args.participants] * args.participants
    for i, share in enumerate(train.split(fractions,
                                          rng=rng.child("split").generator)):
        participant = TrainingParticipant(f"p{i}", share, rng.child(f"p{i}"))
        system.register_participant(participant)
        system.submit_data(participant)
    reports = system.train(test_x=test.x, test_y=test.y)
    summary = system.decryption_summary
    print(f"accepted {summary.accepted} records "
          f"({summary.rejected_tampered} tampered, "
          f"{summary.rejected_unregistered} unregistered rejected)")
    for report in reports:
        print(f"epoch {report.epoch + 1:>2}: loss {report.mean_loss:.4f}  "
              f"top-1 {report.top1:.2%}  top-2 {report.top2:.2%}  "
              f"simulated {report.simulated_seconds:.3f}s")
    database = system.fingerprint_stage()
    print(f"linkage database: {len(database)} records "
          f"(dimension {database.dimension})")
    return 0


def _cmd_assess(args) -> int:
    from repro.core.assessment import ExposureAssessor, train_validation_oracle
    from repro.data.batching import iterate_minibatches
    from repro.data.datasets import synthetic_cifar
    from repro.nn.optimizers import Sgd
    from repro.nn.zoo import cifar10_18layer
    from repro.utils.rng import RngStream

    rng = RngStream(args.seed, name="cli-assess")
    train, test = synthetic_cifar(rng.child("data"), num_train=400, num_test=100)
    print("training the IRValNet oracle…")
    oracle = train_validation_oracle(train.x, train.y, rng.child("oracle"),
                                     epochs=6, width_scale=0.15,
                                     learning_rate=0.03)
    print("training the IRGenNet model…")
    model = cifar10_18layer(rng.child("init").generator,
                            width_scale=args.width_scale)
    optimizer = Sgd(0.02, 0.9)
    batch_rng = rng.child("batches").generator
    for _ in range(args.epochs):
        for xb, yb in iterate_minibatches(train.x, train.y, 32, rng=batch_rng):
            model.train_batch(xb, yb, optimizer)
    result = ExposureAssessor(oracle, max_channels_per_layer=4).assess(
        model, test.x[: args.inputs]
    )
    print(f"uniform baseline delta_mu = {result.uniform_baseline:.3f}")
    for exposure in result.layers:
        verdict = "LEAK" if exposure.leaks(result.uniform_baseline) else "safe"
        print(f"  layer {exposure.layer_index + 1:>2}: "
              f"KL in [{exposure.kl_min:7.3f}, {exposure.kl_max:7.3f}]  {verdict}")
    print(f"=> enclose the first {result.optimal_partition} layers")
    return 0


def _cmd_forensics(args) -> int:
    from repro.attacks.trojan import TrojanAttack
    from repro.core.fingerprint import Fingerprinter
    from repro.core.linkage import LinkageDatabase, instance_digest
    from repro.core.query import QueryService
    from repro.data.batching import iterate_minibatches
    from repro.data.datasets import synthetic_faces
    from repro.nn.optimizers import Sgd
    from repro.nn.zoo import face_recognition_net
    from repro.utils.rng import RngStream

    rng = RngStream(args.seed, name="cli-forensics")
    faces = synthetic_faces(rng.child("faces"), num_identities=args.identities,
                            per_identity=40)
    train, test, substitute = faces.split([0.6, 0.2, 0.2],
                                          rng=rng.child("split").generator)
    model = face_recognition_net(num_classes=args.identities,
                                 rng=rng.child("init").generator)
    optimizer = Sgd(0.01, 0.9)
    batch_rng = rng.child("batches").generator
    for _ in range(18):
        for xb, yb in iterate_minibatches(train.x, train.y, 16, rng=batch_rng):
            model.train_batch(xb, yb, optimizer)
    attack = TrojanAttack(model, target_label=0, patch=4,
                          rng=rng.child("attack").generator)
    outcome = attack.run(substitute, test, trigger_iterations=40,
                         retrain_epochs=4, learning_rate=0.01)
    print(f"attack success rate: {attack.attack_success_rate(outcome):.2%}")

    fingerprinter = Fingerprinter(outcome.trojaned_model)
    database = LinkageDatabase()
    for dataset, source, kind_key in ((train, "honest", None),
                                      (outcome.poisoned_train, "attacker",
                                       "poisoned")):
        fingerprints = fingerprinter.fingerprint(dataset.x)
        kinds = [
            "poisoned" if kind_key and dataset.flags[kind_key][i] else "normal"
            for i in range(len(dataset))
        ]
        database.add_batch(
            fingerprints, dataset.y.tolist(), [source] * len(dataset),
            [instance_digest(dataset.x[i]) for i in range(len(dataset))],
            source_indices=list(range(len(dataset))), kinds=kinds,
        )
    service = QueryService(database)
    labels, _, fingerprints = fingerprinter.predict_with_fingerprint(
        outcome.trojaned_test.x[: args.queries]
    )
    for qi in range(args.queries):
        print(f"misprediction #{qi}: closest training instances")
        for neighbor in service.query(fingerprints[qi], int(labels[qi]), k=5):
            print(f"  #{neighbor.rank}: L2 {neighbor.distance:.3f}  "
                  f"{neighbor.record.kind} / {neighbor.record.source}")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "train": _cmd_train,
    "assess": _cmd_assess,
    "forensics": _cmd_forensics,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
