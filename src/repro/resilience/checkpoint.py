"""Sealed, atomic, versioned training checkpoints.

A checkpoint captures everything needed to continue partitioned training
*bitwise-identically*: both halves of the model, the optimizer's moment
buffers, the trusted and minibatch RNG states, the per-epoch report
history, the early-stop bookkeeping, the audit-log chain, and — for
mid-epoch checkpoints — the per-batch losses already banked this epoch.

Confidentiality follows the FrontNet/BackNet boundary: the FrontNet
weights and the trusted-RNG states never touch disk in plaintext. They
are sealed to the training enclave's identity
(:func:`repro.enclave.sealing.seal`), so only the *same enclave code on
the same platform* can resume from them. The seal nonce is derived from
the checkpoint content rather than drawn from the trusted RNG —
checkpointing must not consume the RNG stream that drives augmentation
and dropout, or the no-fault run would diverge from the checkpointed one.

Durability follows write-ahead discipline: every file is written via
temp-file + fsync + rename, and the manifest — whose digests cover every
other file — is written *last*. A crash at any point leaves either a
fully valid checkpoint or a torn directory that
:meth:`CheckpointManager.checkpoints` detects and skips, so recovery
always lands on the latest *valid* checkpoint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import re
import shutil
import struct
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.partitioned_training import ConfidentialTrainer, EpochReport
from repro.enclave.enclave import Enclave
from repro.enclave.sealing import SealedBlob, seal, unseal
from repro.errors import CheckpointError, SealingError
from repro.utils.fileio import atomic_write_bytes, atomic_write_text
from repro.utils.logging import get_logger
from repro.utils.rng import get_generator_state, set_generator_state
from repro.utils.serialization import canonical_digest, canonical_json

__all__ = ["TrainingState", "CheckpointInfo", "CheckpointManager",
           "capture_state", "restore_state"]

_LOG = get_logger("resilience.checkpoint")

_FORMAT_VERSION = 1
_DIR_RE = re.compile(r"^ckpt-(\d{6})-e(\d{4})-b(\d{4})$")
_FRONTNET_FILE = "frontnet.sealed"
_STATE_FILE = "state.npz"
_MANIFEST_FILE = "manifest.json"


@dataclass
class TrainingState:
    """A full snapshot of the training stage at one instant.

    ``epoch``/``batch`` name the *next* work item: ``batch == 0`` means
    "epoch boundary, about to start ``epoch``"; ``batch == k > 0`` means
    "mid-epoch, ``k`` batches of ``epoch`` already applied".
    ``batch_rng_state`` is always the state to install *before* the epoch's
    shuffle permutation is drawn, so a mid-epoch resume replays the
    identical order and skips the first ``batch`` batches.
    """

    epoch: int
    batch: int
    batch_size: int
    partition: int
    network_weights: List[Dict[str, np.ndarray]]
    optimizer_state: Dict[str, Any]
    batch_rng_state: Dict[str, Any]
    trusted_rng_state: Dict[str, Any]
    reports: List[EpochReport] = field(default_factory=list)
    carried_losses: List[float] = field(default_factory=list)
    best_top1: Optional[float] = None
    stale_epochs: int = 0
    stop_training: bool = False
    best_weights: Optional[List[Dict[str, np.ndarray]]] = None
    audit_bytes: bytes = b""
    clock_now: float = 0.0


@dataclass(frozen=True)
class CheckpointInfo:
    """One valid on-disk checkpoint (manifest successfully parsed)."""

    seq: int
    epoch: int
    batch: int
    batch_size: int
    partition: int
    path: Path
    manifest: Dict[str, Any]


def capture_state(trainer: ConfidentialTrainer, epoch: int, batch: int,
                  batch_rng_state: Optional[Dict[str, Any]] = None,
                  carried_losses: Optional[List[float]] = None,
                  audit_bytes: bytes = b"") -> TrainingState:
    """Snapshot a trainer into a :class:`TrainingState`.

    ``batch_rng_state`` must be the epoch-start state when ``batch > 0``
    (the caller captured it before the epoch's permutation was drawn);
    when omitted the batch RNG's *current* state is used, which is only
    correct at an epoch boundary.
    """
    if batch > 0 and batch_rng_state is None:
        raise CheckpointError(
            "mid-epoch capture needs the epoch-start batch RNG state"
        )
    partitioned = trainer.partitioned
    enclave = partitioned.enclave
    if enclave is None:
        raise CheckpointError(
            "checkpointing requires an enclave-backed partitioned network"
        )
    return TrainingState(
        epoch=epoch,
        batch=batch,
        batch_size=trainer.batch_size,
        partition=partitioned.partition,
        network_weights=partitioned.network.get_weights(),
        optimizer_state=trainer.optimizer.state_dict(),
        batch_rng_state=(batch_rng_state if batch_rng_state is not None
                         else get_generator_state(trainer.batch_rng)),
        trusted_rng_state=enclave.trusted_rng.stream.get_state(),
        reports=list(trainer.reports),
        carried_losses=list(carried_losses or []),
        best_top1=trainer.best_top1,
        stale_epochs=trainer.stale_epochs,
        stop_training=trainer.stop_training,
        best_weights=trainer.best_weights,
        audit_bytes=audit_bytes,
        clock_now=(enclave.platform.clock.now),
    )


def restore_state(trainer: ConfidentialTrainer, state: TrainingState) -> None:
    """Install a :class:`TrainingState` into a live trainer.

    The trainer's enclave must already be attested and bound
    (:meth:`PartitionedNetwork.rebind_enclave` after a rebuild); this
    restores partition, weights, optimizer buffers, RNG states, report
    history, and the early-stop bookkeeping. The simulated clock is
    advanced (never rewound) to at least the checkpoint's timestamp.
    """
    partitioned = trainer.partitioned
    enclave = partitioned.enclave
    if enclave is None:
        raise CheckpointError("restore requires an enclave-backed network")
    if partitioned.partition != state.partition:
        partitioned.set_partition(state.partition)
    partitioned.network.set_weights(state.network_weights)
    # A fault can strike between backward and step, leaving partially
    # accumulated gradients behind; a restored state starts pristine.
    partitioned.network.zero_grads()
    trainer.optimizer.load_state_dict(state.optimizer_state)
    trainer.batch_size = state.batch_size
    set_generator_state(trainer.batch_rng, state.batch_rng_state)
    enclave.trusted_rng.stream.set_state(state.trusted_rng_state)
    trainer.reports = list(state.reports)
    trainer.best_top1 = state.best_top1
    trainer.stale_epochs = state.stale_epochs
    trainer.stop_training = state.stop_training
    trainer.best_weights = state.best_weights
    clock = enclave.platform.clock
    if state.clock_now > clock.now:
        clock.advance(state.clock_now - clock.now)


# -- array (de)marshalling ----------------------------------------------------


def _npz_bytes(arrays: Dict[str, np.ndarray]) -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def _npz_load(blob: bytes) -> Dict[str, np.ndarray]:
    with np.load(io.BytesIO(blob)) as data:
        return {key: data[key] for key in data.files}


def _split_weights(weights: List[Dict[str, np.ndarray]], partition: int,
                   prefix_front: str = "front", prefix_back: str = "back",
                   ) -> "tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]":
    front: Dict[str, np.ndarray] = {}
    back: Dict[str, np.ndarray] = {}
    for i, layer_weights in enumerate(weights):
        side, prefix = ((front, prefix_front) if i < partition
                        else (back, prefix_back))
        for name, arr in layer_weights.items():
            side[f"{prefix}/layer{i}/{name}"] = arr
    return front, back


def _merge_weights(n_layers: int, *groups: Dict[str, np.ndarray],
                   ) -> List[Dict[str, np.ndarray]]:
    weights: List[Dict[str, np.ndarray]] = [{} for _ in range(n_layers)]
    for group in groups:
        for key, arr in group.items():
            _, layer_part, name = key.split("/", 2)
            weights[int(layer_part[len("layer"):])][name] = arr
    return weights


def _arch_digest(weights: List[Dict[str, np.ndarray]]) -> str:
    signature = [
        sorted((name, list(arr.shape), arr.dtype.str)
               for name, arr in layer.items())
        for layer in weights
    ]
    return canonical_digest(signature).hex()


# -- the manager ---------------------------------------------------------------


class CheckpointManager:
    """Atomic, versioned checkpoints under one directory.

    Layout: ``ckpt-{seq:06d}-e{epoch:04d}-b{batch:04d}/`` holding
    ``frontnet.sealed`` (12-byte nonce || ciphertext over the FrontNet
    weights and RNG states), ``state.npz`` (everything non-secret), and
    ``manifest.json`` (identity, digests over both files; written last).
    ``seq`` increases monotonically, so "latest" is well defined even
    when training restores to an earlier epoch and re-checkpoints it.

    Args:
        directory: Checkpoint root; created if missing.
        config_digest: Optional deployment digest (architecture config +
            hyperparameters); recorded in every manifest and verified on
            load, so a checkpoint can never restore into a different
            training agreement.
        write_fault_hook: Test/fault-injection hook ``(stage, dir)``
            called before the data files (``stage="data"``) and before
            the manifest (``stage="manifest"``); raising there models a
            crash mid-write and leaves a torn directory behind.
    """

    def __init__(self, directory, config_digest: Optional[bytes] = None,
                 write_fault_hook: Optional[Callable[[str, Path], None]] = None,
                 run_key: Optional[str] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config_digest = config_digest
        #: Hex semantic run identity (:mod:`repro.governance.identity`);
        #: recorded in every manifest so the promotion gate can bind a
        #: checkpoint chain to the training run that produced it.
        self.run_key = run_key
        self.write_fault_hook = write_fault_hook
        #: Optional :class:`~repro.observability.MetricsRegistry`; when set,
        #: save/load publish ``repro_checkpoint_*`` histograms and counters.
        self.metrics = None
        self._next_seq = self._scan_next_seq()

    def _scan_next_seq(self) -> int:
        highest = -1
        for entry in self.directory.iterdir():
            match = _DIR_RE.match(entry.name)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    # -- save -------------------------------------------------------------------

    def save(self, state: TrainingState, enclave: Enclave) -> Path:
        """Write one checkpoint; returns its directory.

        Crash-consistent: the manifest is written last, after both data
        files are durably in place, so a torn write never yields a
        checkpoint that :meth:`checkpoints` would accept.
        """
        started = time.perf_counter()
        seq = self._next_seq
        name = f"ckpt-{seq:06d}-e{state.epoch:04d}-b{state.batch:04d}"
        path = self.directory / name
        path.mkdir(exist_ok=True)
        # The sequence number is burned even if this write crashes: a torn
        # directory must never share a seq with a later valid checkpoint.
        self._next_seq = seq + 1

        sealed_bytes = self._seal_frontnet(state, enclave, seq)
        state_bytes, optimizer_meta = self._plain_state_bytes(state)
        if self.write_fault_hook is not None:
            self.write_fault_hook("data", path)
        atomic_write_bytes(path / _FRONTNET_FILE, sealed_bytes)
        atomic_write_bytes(path / _STATE_FILE, state_bytes)

        manifest = {
            "format": _FORMAT_VERSION,
            "seq": seq,
            "epoch": state.epoch,
            "batch": state.batch,
            "batch_size": state.batch_size,
            "partition": state.partition,
            "mrenclave": enclave.mrenclave.hex(),
            "config_digest": (self.config_digest.hex()
                              if self.config_digest else None),
            "run_key": self.run_key,
            "arch_digest": _arch_digest(state.network_weights),
            "digests": {
                _FRONTNET_FILE: hashlib.sha256(sealed_bytes).hexdigest(),
                _STATE_FILE: hashlib.sha256(state_bytes).hexdigest(),
            },
            "meta": {
                "optimizer": optimizer_meta,
                "reports": [dataclasses.asdict(r) for r in state.reports],
                "carried_losses": list(state.carried_losses),
                "best_top1": state.best_top1,
                "stale_epochs": state.stale_epochs,
                "stop_training": state.stop_training,
                "has_best_weights": state.best_weights is not None,
                "clock_now": state.clock_now,
            },
        }
        if self.write_fault_hook is not None:
            self.write_fault_hook("manifest", path)
        atomic_write_text(
            path / _MANIFEST_FILE,
            json.dumps(manifest, sort_keys=True, indent=1),
        )
        _LOG.info("checkpoint %s written (epoch %d batch %d)",
                  name, state.epoch, state.batch)
        if self.metrics is not None:
            self.metrics.observe("repro_checkpoint_save_seconds",
                                 time.perf_counter() - started)
            self.metrics.inc("repro_checkpoint_writes_total")
            self.metrics.inc("repro_checkpoint_bytes_total",
                             len(sealed_bytes) + len(state_bytes))
        return path

    def _seal_frontnet(self, state: TrainingState, enclave: Enclave,
                       seq: int) -> bytes:
        front, _ = _split_weights(state.network_weights, state.partition)
        if state.best_weights is not None:
            # The early-stop snapshot contains FrontNet layers too; they
            # are just as secret as the live ones and ride in the seal.
            best_front, _ = _split_weights(state.best_weights,
                                           state.partition,
                                           prefix_front="bestf")
            front.update(best_front)
        secret_meta = canonical_json({
            "trusted_rng": state.trusted_rng_state,
            "batch_rng": state.batch_rng_state,
        })
        payload = (struct.pack("<Q", len(secret_meta)) + secret_meta
                   + _npz_bytes(front))
        # Content-derived nonce: deterministic, unique per (seq, content),
        # and — critically — drawn from *no* RNG, so writing a checkpoint
        # never perturbs the training streams.
        nonce = canonical_digest(b"ckpt-nonce", seq, payload)[:12]
        blob = seal(enclave, payload, nonce=nonce)
        return blob.nonce + blob.ciphertext

    def _plain_state_bytes(self, state: TrainingState,
                           ) -> "tuple[bytes, Dict[str, Any]]":
        """Marshal the non-secret side; returns (npz bytes, JSON-able
        optimizer remainder for the manifest)."""
        _, back = _split_weights(state.network_weights, state.partition)
        arrays = dict(back)
        optimizer_meta: Dict[str, Any] = {}
        for key, value in state.optimizer_state.items():
            if isinstance(value, np.ndarray):
                arrays[f"opt/{key}"] = value
            elif isinstance(value, dict) and any(
                isinstance(entry, np.ndarray) for entry in value.values()
            ):
                for subkey, arr in value.items():
                    arrays[f"opt/{key}/{subkey}"] = arr
            else:
                optimizer_meta[key] = value
        if state.best_weights is not None:
            # Only the BackNet half of the early-stop snapshot is public;
            # its FrontNet half travels inside the sealed blob.
            _, best_back = _split_weights(state.best_weights,
                                          state.partition,
                                          prefix_back="bestw")
            arrays.update(best_back)
        arrays["audit"] = np.frombuffer(state.audit_bytes, dtype=np.uint8)
        arrays["layer_count"] = np.asarray([len(state.network_weights)])
        return _npz_bytes(arrays), optimizer_meta

    # -- enumerate --------------------------------------------------------------

    def checkpoints(self) -> List[CheckpointInfo]:
        """All *valid* checkpoints, oldest first.

        A checkpoint is valid when its directory name parses, its
        manifest parses, and both data files hash to the manifest's
        digests. Torn or tampered directories are skipped with a warning
        — fail-closed, recovery falls back to the previous valid one.
        """
        found: List[CheckpointInfo] = []
        for entry in sorted(self.directory.iterdir()):
            match = _DIR_RE.match(entry.name)
            if not match or not entry.is_dir():
                continue
            info = self._validate(entry, int(match.group(1)))
            if info is not None:
                found.append(info)
        found.sort(key=lambda info: info.seq)
        return found

    def _validate(self, path: Path, seq: int) -> Optional[CheckpointInfo]:
        manifest_path = path / _MANIFEST_FILE
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError):
            _LOG.warning("skipping torn checkpoint %s (no valid manifest)",
                         path.name)
            return None
        try:
            for filename, expected in manifest["digests"].items():
                actual = hashlib.sha256(
                    (path / filename).read_bytes()
                ).hexdigest()
                if actual != expected:
                    _LOG.warning("skipping checkpoint %s (%s digest mismatch)",
                                 path.name, filename)
                    return None
            return CheckpointInfo(
                seq=seq,
                epoch=int(manifest["epoch"]),
                batch=int(manifest["batch"]),
                batch_size=int(manifest["batch_size"]),
                partition=int(manifest["partition"]),
                path=path,
                manifest=manifest,
            )
        except (OSError, KeyError, TypeError, ValueError):
            _LOG.warning("skipping malformed checkpoint %s", path.name)
            return None

    def latest(self, predicate: Optional[Callable[[CheckpointInfo], bool]] = None,
               ) -> Optional[CheckpointInfo]:
        """The newest valid checkpoint (optionally filtered)."""
        for info in reversed(self.checkpoints()):
            if predicate is None or predicate(info):
                return info
        return None

    def latest_manifest_digest(self) -> Optional[bytes]:
        """Content address of the newest checkpoint — a cheap accessor.

        Hashes the canonical form of the newest parseable manifest only:
        the manifest already commits to both data files via their
        recorded SHA-256 digests, so hashing it commits to the entire
        checkpoint without re-reading megabytes of weights. The promotion
        gate pairs this with a full :meth:`checkpoints` validation at
        promotion time; this accessor is for the cheap per-event path
        (governance log entries, dedup probes). Returns ``None`` when no
        checkpoint manifest parses.
        """
        for entry in sorted(self.directory.iterdir(), reverse=True):
            if not _DIR_RE.match(entry.name) or not entry.is_dir():
                continue
            try:
                manifest = json.loads((entry / _MANIFEST_FILE).read_text())
            except (OSError, ValueError):
                continue  # torn write; fall back to the previous seq
            return canonical_digest(manifest)
        return None

    # -- load -------------------------------------------------------------------

    def load(self, info: CheckpointInfo, enclave: Enclave) -> TrainingState:
        """Reconstruct the :class:`TrainingState` of a valid checkpoint.

        Fail-closed gates, in order: the manifest's deployment digest must
        match this manager's (when configured), the manifest's MRENCLAVE
        must match the live enclave's measurement *before* any unseal is
        attempted, and the sealed blob must authenticate. A mismatch at
        any gate raises :class:`CheckpointError`.
        """
        started = time.perf_counter()
        manifest = info.manifest
        if (self.config_digest is not None
                and manifest.get("config_digest") != self.config_digest.hex()):
            raise CheckpointError(
                f"checkpoint {info.path.name} belongs to a different "
                "deployment (config digest mismatch)"
            )
        if manifest["mrenclave"] != enclave.mrenclave.hex():
            raise CheckpointError(
                f"checkpoint {info.path.name} was sealed by a different "
                "enclave (MRENCLAVE mismatch); refusing to unseal"
            )
        sealed = (info.path / _FRONTNET_FILE).read_bytes()
        try:
            payload = unseal(
                enclave, SealedBlob(nonce=sealed[:12], ciphertext=sealed[12:])
            )
        except SealingError as exc:
            raise CheckpointError(
                f"checkpoint {info.path.name} failed to unseal: {exc}"
            ) from exc
        (meta_len,) = struct.unpack_from("<Q", payload, 0)
        secret_meta = json.loads(payload[8:8 + meta_len].decode("utf-8"))
        sealed_arrays = _npz_load(payload[8 + meta_len:])
        front = {key: arr for key, arr in sealed_arrays.items()
                 if key.startswith("front/")}
        best_front = {key: arr for key, arr in sealed_arrays.items()
                      if key.startswith("bestf/")}

        plain = _npz_load((info.path / _STATE_FILE).read_bytes())
        n_layers = int(plain.pop("layer_count")[0])
        audit_bytes = plain.pop("audit").tobytes()
        optimizer_state: Dict[str, Any] = dict(manifest["meta"]["optimizer"])
        back: Dict[str, np.ndarray] = {}
        best: Dict[str, np.ndarray] = {}
        for key, arr in plain.items():
            if key.startswith("opt/"):
                rest = key[len("opt/"):]
                if "/" in rest:
                    group, subkey = rest.split("/", 1)
                    optimizer_state.setdefault(group, {})[subkey] = arr
                else:
                    optimizer_state[rest] = arr
            elif key.startswith("bestw/"):
                best[key] = arr
            else:
                back[key] = arr
        weights = _merge_weights(n_layers, front, back)
        best_weights = (
            _merge_weights(n_layers, best_front, best)
            if manifest["meta"]["has_best_weights"] else None
        )
        meta = manifest["meta"]
        if self.metrics is not None:
            self.metrics.observe("repro_checkpoint_restore_seconds",
                                 time.perf_counter() - started)
            self.metrics.inc("repro_checkpoint_restores_total")
        return TrainingState(
            epoch=info.epoch,
            batch=info.batch,
            batch_size=info.batch_size,
            partition=info.partition,
            network_weights=weights,
            optimizer_state=optimizer_state,
            batch_rng_state=secret_meta["batch_rng"],
            trusted_rng_state=secret_meta["trusted_rng"],
            reports=[EpochReport(**entry) for entry in meta["reports"]],
            carried_losses=list(meta["carried_losses"]),
            best_top1=meta["best_top1"],
            stale_epochs=int(meta["stale_epochs"]),
            stop_training=bool(meta["stop_training"]),
            best_weights=best_weights,
            audit_bytes=audit_bytes,
            clock_now=float(meta["clock_now"]),
        )

    # -- retention --------------------------------------------------------------

    def prune(self, keep_last: int = 3) -> int:
        """Drop torn directories and all but the ``keep_last`` newest valid
        checkpoints; returns how many directories were removed."""
        if keep_last < 1:
            raise CheckpointError("keep_last must be >= 1")
        valid = {info.path.name for info in self.checkpoints()[-keep_last:]}
        removed = 0
        for entry in sorted(self.directory.iterdir()):
            if _DIR_RE.match(entry.name) and entry.is_dir() \
                    and entry.name not in valid:
                shutil.rmtree(entry)
                removed += 1
        return removed
