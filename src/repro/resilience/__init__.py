"""repro.resilience — fault-tolerant partitioned training.

Sealed checkpoint/resume (:mod:`repro.resilience.checkpoint`),
deterministic enclave fault injection (:mod:`repro.resilience.faults`),
the supervised retry runtime (:mod:`repro.resilience.supervisor`), and
run telemetry (:mod:`repro.resilience.telemetry`).
"""

from repro.resilience.checkpoint import (CheckpointInfo, CheckpointManager,
                                         TrainingState, capture_state,
                                         restore_state)
from repro.resilience.faults import (FAULT_KINDS, SERVING_FAULT_KINDS,
                                     FaultPlan, FaultSpec, ServingFaultPlan,
                                     ServingFaultSpec)
from repro.resilience.supervisor import (ResilientTrainer, RetryPolicy,
                                         classify_fault)
from repro.resilience.telemetry import RunTelemetry

__all__ = [
    "CheckpointInfo",
    "CheckpointManager",
    "TrainingState",
    "capture_state",
    "restore_state",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "SERVING_FAULT_KINDS",
    "ServingFaultPlan",
    "ServingFaultSpec",
    "ResilientTrainer",
    "RetryPolicy",
    "classify_fault",
    "RunTelemetry",
]
