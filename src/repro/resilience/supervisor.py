"""The supervised retry runtime for the training stage.

:class:`ResilientTrainer` wraps a :class:`ConfidentialTrainer` in a
watchdog loop: every epoch runs under supervision, faults are classified
(enclave-fatal, EPC pressure, transfer corruption, checkpoint-write
crash), recovery restores the latest *valid* checkpoint, enclave-class
faults additionally rebuild and **re-attest** the training enclave
before any sealed state is unsealed, and retries back off exponentially
on the platform's simulated clock. When the consecutive-fault budget is
exhausted the run fails closed with :class:`TrainingAborted` — a
half-trained model is never silently reported as a finished one.

Graceful degradation: a streak of EPC-pressure faults halves the batch
size (down to a floor) so the FrontNet working set fits, restoring from
an epoch-*boundary* checkpoint (mid-epoch positions do not translate
across batch sizes); once training has been stable for a configured
number of epochs, the original batch size is restored.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.audit import AuditLog
from repro.core.partitioned_training import ConfidentialTrainer, EpochReport
from repro.enclave.attestation import AttestationService
from repro.enclave.enclave import Enclave
from repro.errors import (AttestationError, CheckpointError,
                          CheckpointWriteCrash, ConfigurationError,
                          EnclaveAbort, EnclaveError, EnclaveMemoryError,
                          EpcPressureError, TrainingAborted,
                          TransferIntegrityError)
from repro.resilience.checkpoint import (CheckpointInfo, CheckpointManager,
                                         TrainingState, capture_state,
                                         restore_state)
from repro.resilience.faults import FaultPlan
from repro.resilience.telemetry import RunTelemetry
from repro.utils.logging import get_logger
from repro.utils.rng import get_generator_state

__all__ = ["RetryPolicy", "classify_fault", "ResilientTrainer"]

_LOG = get_logger("resilience.supervisor")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the supervisor's recovery behaviour.

    Attributes:
        max_retries: Consecutive faults tolerated without completing an
            epoch before the run aborts fail-closed.
        backoff_base_seconds: First retry delay (simulated seconds).
        backoff_factor: Multiplier per consecutive fault.
        backoff_max_seconds: Delay ceiling.
        degrade_after_epc_faults: EPC-pressure streak length that
            triggers a batch-size halving.
        min_batch_size: Floor under graceful degradation.
        restore_batch_size_after: Stable (fault-free) epochs before the
            original batch size is restored.
    """

    max_retries: int = 5
    backoff_base_seconds: float = 1.0
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 60.0
    degrade_after_epc_faults: int = 2
    min_batch_size: int = 8
    restore_batch_size_after: int = 2

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), capped."""
        delay = self.backoff_base_seconds * (
            self.backoff_factor ** max(0, attempt - 1)
        )
        return min(delay, self.backoff_max_seconds)


def classify_fault(exc: BaseException) -> Optional[str]:
    """Map an exception to a fault class, or ``None`` for non-faults.

    ``None`` means "this is a bug or a policy violation, not a platform
    fault" — the supervisor re-raises instead of retrying, because
    retrying a deterministic error can only burn the budget and mask the
    defect.
    """
    if isinstance(exc, (EnclaveAbort,)):
        return "enclave"
    if isinstance(exc, (EpcPressureError, EnclaveMemoryError)):
        return "epc"
    if isinstance(exc, TransferIntegrityError):
        return "transfer"
    if isinstance(exc, CheckpointWriteCrash):
        return "checkpoint-write"
    if isinstance(exc, EnclaveError):
        return "enclave"
    return None


class ResilientTrainer:
    """Supervises a :class:`ConfidentialTrainer` with checkpoint recovery.

    Args:
        trainer: The wrapped epoch loop.
        manager: Where checkpoints are written and recovered from.
        enclave_factory: Rebuilds the training enclave after an
            enclave-class fault; must reproduce the agreed MRENCLAVE.
            ``None`` makes enclave faults unrecoverable (aborts once the
            budget would need a rebuild).
        expected_mrenclave: The measurement every rebuilt enclave must
            carry; defaults to the current enclave's measurement.
        attestation_service: When given, every rebuilt enclave is
            re-attested (quote verification) before it touches sealed
            state — recovery is held to the same bar as registration.
        policy: Retry/degradation bounds.
        fault_plan: Optional injection schedule (tests, chaos drills).
        telemetry: Counter sink; one is created if omitted.
        audit_provider: Returns the live audit log so fault/recovery
            events land on the accountability chain and checkpoints
            carry the full history.
        on_enclave_rebuilt: Hook so the embedding system (e.g.
            :class:`~repro.core.caltrain.CalTrain`) can re-point its own
            references at the replacement enclave.
        on_restore: Hook fired after a checkpoint restore with the
            restored state (e.g. to adopt the checkpointed audit log on
            cross-process resume).
    """

    def __init__(self, trainer: ConfidentialTrainer,
                 manager: CheckpointManager,
                 enclave_factory: Optional[Callable[[], Enclave]] = None,
                 expected_mrenclave: Optional[bytes] = None,
                 attestation_service: Optional[AttestationService] = None,
                 policy: Optional[RetryPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 telemetry: Optional[RunTelemetry] = None,
                 audit_provider: Optional[Callable[[], AuditLog]] = None,
                 on_enclave_rebuilt: Optional[Callable[[Enclave], None]] = None,
                 on_restore: Optional[Callable[[TrainingState], None]] = None,
                 ) -> None:
        self.trainer = trainer
        self.manager = manager
        self.enclave_factory = enclave_factory
        self.attestation_service = attestation_service
        self.policy = policy or RetryPolicy()
        self.fault_plan = fault_plan
        self.telemetry = telemetry or RunTelemetry()
        if self.manager.metrics is None:
            # Checkpoint I/O metrics land in the same registry as the run
            # telemetry, so one export covers the whole resilient run.
            self.manager.metrics = self.telemetry.registry
        self.audit_provider = audit_provider
        self.on_enclave_rebuilt = on_enclave_rebuilt
        self.on_restore = on_restore
        enclave = trainer.partitioned.enclave
        if enclave is None:
            raise ConfigurationError(
                "ResilientTrainer requires an enclave-backed network"
            )
        self.expected_mrenclave = expected_mrenclave or enclave.mrenclave
        self._epoch = 0
        self._epoch_start_rng = None
        self._checkpoint_every: Optional[int] = None
        self._n_examples = 0
        self._original_batch_size = trainer.batch_size

    # -- small helpers -----------------------------------------------------------

    def _audit(self, event: str, **details) -> None:
        if self.audit_provider is not None:
            self.audit_provider().append(event, **details)

    def _audit_bytes(self) -> bytes:
        if self.audit_provider is None:
            return b""
        return self.audit_provider().to_bytes()

    def _enclave(self) -> Enclave:
        enclave = self.trainer.partitioned.enclave
        assert enclave is not None
        return enclave

    def _checkpoint(self, epoch: int, batch: int,
                    carried_losses: Optional[List[float]] = None) -> None:
        state = capture_state(
            self.trainer, epoch=epoch, batch=batch,
            batch_rng_state=(self._epoch_start_rng if batch > 0 else None),
            carried_losses=carried_losses,
            audit_bytes=self._audit_bytes(),
        )
        started = time.perf_counter()
        path = self.manager.save(state, self._enclave())
        self.telemetry.observe("checkpoint_save", time.perf_counter() - started)
        self.telemetry.count("checkpoints_written")
        self.telemetry.count(
            "checkpoint_bytes",
            sum(f.stat().st_size for f in path.iterdir() if f.is_file()),
        )

    def _batch_callback(self, phase: str, epoch: int, batch: int,
                        losses: List[float]) -> None:
        if phase == "start":
            if self.fault_plan is not None:
                self.fault_plan.before_batch(epoch, batch)
            return
        done = batch + 1
        if (self._checkpoint_every
                and done % self._checkpoint_every == 0
                and done * self.trainer.batch_size < self._n_examples):
            self._checkpoint(epoch, done, carried_losses=list(losses))

    # -- recovery ----------------------------------------------------------------

    def _rebuild_enclave(self) -> None:
        if self.enclave_factory is None:
            raise TrainingAborted(
                "enclave-class fault with no enclave factory configured; "
                "cannot rebuild, aborting fail-closed"
            )
        replacement = self.enclave_factory()
        if self.attestation_service is not None:
            try:
                self.attestation_service.verify(
                    replacement.quote(b"resilience-rebuild"),
                    expected_mrenclave=self.expected_mrenclave,
                )
            except AttestationError as exc:
                raise TrainingAborted(
                    f"rebuilt enclave failed re-attestation: {exc}"
                ) from exc
        elif replacement.mrenclave != self.expected_mrenclave:
            raise TrainingAborted(
                "rebuilt enclave measurement differs from the agreed "
                "MRENCLAVE; aborting fail-closed"
            )
        trainer = self.trainer
        trainer.partitioned.rebind_enclave(replacement)
        trainer.partitioned.network.set_dropout_rng(
            replacement.trusted_rng.generator
        )
        if trainer.augmenter is not None:
            trainer.augmenter.rng = replacement.trusted_rng.generator
        trainer.batch_rng = (
            replacement.trusted_rng.stream.child("batches").generator
        )
        self.telemetry.count("enclave_rebuilds")
        self._audit("enclave-rebuilt",
                    mrenclave=replacement.mrenclave.hex())
        if self.on_enclave_rebuilt is not None:
            self.on_enclave_rebuilt(replacement)

    def _restore_latest(self, boundary_only: bool = False) -> TrainingState:
        """Restore the newest loadable checkpoint; skip broken ones."""
        predicate = (lambda info: info.batch == 0) if boundary_only else None
        candidates = [
            info for info in reversed(self.manager.checkpoints())
            if predicate is None or predicate(info)
        ]
        for info in candidates:
            try:
                started = time.perf_counter()
                state = self.manager.load(info, self._enclave())
                restore_state(self.trainer, state)
                self.telemetry.observe(
                    "checkpoint_restore", time.perf_counter() - started
                )
                self.telemetry.count("restores")
                self._audit("checkpoint-restored",
                            checkpoint=info.path.name,
                            epoch=info.epoch, batch=info.batch)
                if self.on_restore is not None:
                    self.on_restore(state)
                return state
            except CheckpointError as exc:
                _LOG.warning("checkpoint %s unusable during recovery: %s",
                             info.path.name, exc)
                self.telemetry.count("restore_rejects")
        raise TrainingAborted(
            "no usable checkpoint to recover from; aborting fail-closed"
        )

    # -- the supervised loop -----------------------------------------------------

    def run(self, x: np.ndarray, y: np.ndarray, epochs: int,
            test_x: Optional[np.ndarray] = None,
            test_y: Optional[np.ndarray] = None,
            keep_snapshots: bool = False,
            resume: bool = False,
            checkpoint_every_batches: Optional[int] = None,
            ) -> List[EpochReport]:
        """Train to ``epochs`` under supervision; returns the epoch reports.

        ``resume=True`` continues from the newest valid checkpoint in the
        manager's directory (a no-op to a fresh start when none exists).
        ``checkpoint_every_batches`` adds mid-epoch checkpoints on top of
        the always-on epoch-boundary ones.
        """
        if checkpoint_every_batches is not None and checkpoint_every_batches <= 0:
            raise ConfigurationError(
                "checkpoint_every_batches must be positive"
            )
        trainer = self.trainer
        if self.fault_plan is not None:
            self.fault_plan.attach(trainer.partitioned)
            self.manager.write_fault_hook = self.fault_plan.on_checkpoint_write
        self._checkpoint_every = checkpoint_every_batches
        self._n_examples = int(x.shape[0])
        self._original_batch_size = trainer.batch_size

        start_batch = 0
        carried: List[float] = []
        self._epoch = 0
        if resume:
            if self.manager.latest() is not None:
                state = self._restore_latest()
                self._epoch = state.epoch
                start_batch = state.batch
                carried = list(state.carried_losses)
                self._audit("training-resumed", epoch=state.epoch,
                            batch=state.batch)
            else:
                self._checkpoint(0, 0)
        else:
            # Epoch-0 checkpoint so recovery works from the first fault on.
            self._checkpoint(0, 0)

        consecutive_faults = 0
        epc_streak = 0
        stable_epochs = 0
        while self._epoch < epochs and not trainer.stop_training:
            epoch = self._epoch
            # With start_batch > 0 the restore already rewound batch_rng to
            # its epoch-start state, so this capture is correct either way.
            self._epoch_start_rng = get_generator_state(trainer.batch_rng)
            try:
                trainer.run_epoch(
                    x, y, epoch, test_x=test_x, test_y=test_y,
                    keep_snapshots=keep_snapshots,
                    start_batch=start_batch, carried_losses=carried,
                    batch_callback=self._batch_callback,
                )
                self._epoch = epoch + 1
                self._checkpoint(self._epoch, 0)
            except Exception as exc:  # noqa: BLE001 — classified below
                kind = classify_fault(exc)
                if kind is None:
                    raise
                consecutive_faults += 1
                epc_streak = epc_streak + 1 if kind == "epc" else 0
                stable_epochs = 0
                self.telemetry.count(f"fault_{kind}")
                self.telemetry.count("retries")
                self._audit("training-fault", fault=kind, epoch=epoch,
                            detail=str(exc))
                _LOG.warning("fault (%s) at epoch %d: %s", kind, epoch, exc)
                if consecutive_faults > self.policy.max_retries:
                    raise TrainingAborted(
                        f"retry budget exhausted after {consecutive_faults} "
                        f"consecutive faults (last: {kind}: {exc})"
                    ) from exc
                self._enclave().platform.clock.advance(
                    self.policy.backoff_seconds(consecutive_faults)
                )
                if kind in ("enclave", "epc"):
                    self._rebuild_enclave()
                degrade = (
                    epc_streak >= self.policy.degrade_after_epc_faults
                    and trainer.batch_size > self.policy.min_batch_size
                )
                state = self._restore_latest(boundary_only=degrade)
                if degrade:
                    new_size = max(self.policy.min_batch_size,
                                   trainer.batch_size // 2)
                    _LOG.warning(
                        "EPC pressure streak: degrading batch size %d -> %d",
                        trainer.batch_size, new_size,
                    )
                    trainer.batch_size = new_size
                    self.telemetry.count("batch_size_degradations")
                    self._audit("batch-size-degraded", size=new_size)
                    epc_streak = 0
                self._epoch = state.epoch
                start_batch = state.batch
                carried = list(state.carried_losses)
                continue
            # Epoch (and its boundary checkpoint) completed cleanly.
            consecutive_faults = 0
            epc_streak = 0
            start_batch = 0
            carried = []
            if trainer.batch_size != self._original_batch_size:
                stable_epochs += 1
                if stable_epochs >= self.policy.restore_batch_size_after:
                    _LOG.info("stable again: restoring batch size %d",
                              self._original_batch_size)
                    trainer.batch_size = self._original_batch_size
                    self.telemetry.count("batch_size_restorations")
                    self._audit("batch-size-restored",
                                size=self._original_batch_size)
                    stable_epochs = 0
        return trainer.reports
