"""Deterministic fault injection for the training stage.

A :class:`FaultPlan` is a seeded, reproducible schedule of failures the
resilience runtime must survive:

* ``enclave-abort`` — the training enclave is destroyed out from under
  the host process (machine reboot, enclave-killing microcode update,
  AEX storm) at an exact (epoch, batch);
* ``epc-pressure`` — EPC paging escalates into an enclave-fatal
  thrashing storm (models sustained memory pressure on the platform);
* ``ir-corrupt`` / ``delta-corrupt`` — one boundary tensor is flipped in
  the untrusted marshalling buffer, which the transfer checksums in
  :class:`~repro.core.partition.PartitionedNetwork` must catch;
* ``checkpoint-crash`` — the process dies mid-checkpoint-write, leaving
  a torn directory that recovery must skip.

Every fault fires exactly once at its scheduled point, so the same plan
replayed against the same seed produces the same failure trace — the
property the crash/resume parity tests build on.

The serving plane gets the same treatment: a :class:`ServingFaultPlan`
schedules :class:`ServingFaultSpec` injections (replica crash/hang,
latency, index/store byte corruption, torn manifests) keyed by query
ordinal instead of (epoch, batch), and drives them through
:meth:`ServingCluster.inject` — so the availability benchmark, the test
suite, and the CLI ``serve-cluster --inject`` drill all replay the
exact same fault storm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.partition import PartitionedNetwork
from repro.errors import (CheckpointWriteCrash, ConfigurationError,
                          EnclaveAbort, EpcPressureError)
from repro.utils.logging import get_logger

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan",
           "SERVING_FAULT_KINDS", "ServingFaultSpec", "ServingFaultPlan"]

_LOG = get_logger("resilience.faults")

FAULT_KINDS = (
    "enclave-abort",
    "epc-pressure",
    "ir-corrupt",
    "delta-corrupt",
    "checkpoint-crash",
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` at batch ``batch`` of ``epoch``."""

    kind: str
    epoch: int
    batch: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; pick one of {FAULT_KINDS}"
            )
        if self.epoch < 0 or self.batch < 0:
            raise ConfigurationError("fault epoch/batch must be >= 0")


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` injections.

    Wire it into a run by calling :meth:`attach` on the partitioned
    network (installs the boundary corruption tap), passing
    :meth:`before_batch` as the trainer's batch callback hook, and
    :meth:`on_checkpoint_write` as the checkpoint manager's write fault
    hook — the resilience runtime does all three when given a plan.
    """

    def __init__(self, faults: Sequence[FaultSpec] = ()) -> None:
        self._pending: Dict[Tuple[int, int], List[FaultSpec]] = {}
        for spec in faults:
            self._pending.setdefault((spec.epoch, spec.batch), []).append(spec)
        self.fired: List[FaultSpec] = []
        self._armed_corruption: Optional[str] = None
        self._armed_checkpoint_crash = False
        self._partitioned: Optional[PartitionedNetwork] = None

    @classmethod
    def seeded(cls, seed: int, epochs: int, batches_per_epoch: int,
               n_faults: int = 3,
               kinds: Sequence[str] = FAULT_KINDS) -> "FaultPlan":
        """A reproducible random schedule (same seed, same faults)."""
        if epochs <= 0 or batches_per_epoch <= 0:
            raise ConfigurationError("seeded plan needs positive dimensions")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(f"unknown fault kind {kind!r}")
        rng = np.random.default_rng(seed)
        seen = set()
        faults = []
        while len(faults) < n_faults:
            spec = FaultSpec(
                kind=str(rng.choice(list(kinds))),
                epoch=int(rng.integers(0, epochs)),
                batch=int(rng.integers(0, batches_per_epoch)),
            )
            if (spec.epoch, spec.batch) in seen:
                continue
            seen.add((spec.epoch, spec.batch))
            faults.append(spec)
        return cls(faults)

    @property
    def remaining(self) -> int:
        return sum(len(specs) for specs in self._pending.values())

    def attach(self, partitioned: PartitionedNetwork) -> None:
        """Install the boundary corruption tap on the partitioned network."""
        self._partitioned = partitioned
        partitioned.boundary_tap = self._tap

    # -- injection points --------------------------------------------------------

    def before_batch(self, epoch: int, batch: int) -> None:
        """Fire any faults scheduled at this (epoch, batch).

        Abort-class faults raise immediately; corruption faults arm the
        boundary tap for this batch's transfers; checkpoint crashes arm
        the next checkpoint write.
        """
        specs = self._pending.pop((epoch, batch), None)
        if not specs:
            return
        raising: Optional[FaultSpec] = None
        for spec in specs:
            _LOG.info("injecting fault %s at epoch %d batch %d",
                      spec.kind, epoch, batch)
            self.fired.append(spec)
            if spec.kind in ("ir-corrupt", "delta-corrupt"):
                self._armed_corruption = spec.kind.split("-", 1)[0]
            elif spec.kind == "checkpoint-crash":
                self._armed_checkpoint_crash = True
            else:
                raising = spec
        if raising is None:
            return
        if raising.kind == "enclave-abort":
            if (self._partitioned is not None
                    and self._partitioned.enclave is not None):
                # The enclave really is gone: secrets unreachable, every
                # subsequent ECALL fails until a rebuild + re-attest.
                self._partitioned.enclave.destroy()
            raise EnclaveAbort(
                f"injected enclave abort at epoch {epoch} batch {batch}"
            )
        raise EpcPressureError(
            f"injected EPC thrashing storm at epoch {epoch} batch {batch}"
        )

    def _tap(self, site: str, tensor: np.ndarray) -> np.ndarray:
        if self._armed_corruption != site:
            return tensor
        self._armed_corruption = None
        corrupted = np.array(tensor, copy=True)
        flat = corrupted.reshape(-1)
        flat[0] = flat[0] + 1.0 if np.isfinite(flat[0]) else 0.0
        _LOG.info("corrupting %s tensor in flight", site)
        return corrupted

    def on_checkpoint_write(self, stage: str, path) -> None:
        """Crash (once) between the data files and the manifest write."""
        if stage == "manifest" and self._armed_checkpoint_crash:
            self._armed_checkpoint_crash = False
            raise CheckpointWriteCrash(
                f"injected crash while writing checkpoint {path}"
            )


# -- serving-side fault injection ------------------------------------------------

SERVING_FAULT_KINDS = (
    "replica-crash",    # abrupt process death: submits fail fast, work lost
    "replica-hang",     # searches wedge until the fault is released
    "latency-inject",   # fixed delay on every search (slow-host simulation)
    "index-corrupt",    # flip one row in a replica's private index matrix
    "store-corrupt",    # flip one byte in a shared store segment on disk
    "torn-manifest",    # truncate the store manifest mid-file
    "growth-storm",     # benign ingest burst: append records to the store
    "compaction-crash", # crash a replica's next segment merge mid-flight
)


@dataclass(frozen=True)
class ServingFaultSpec:
    """One scheduled serving fault, fired before query ``at_query``.

    ``replica`` targets a replica by name (``None`` = first healthy).
    ``delay_s`` is the injected latency for ``latency-inject``;
    ``label``/``row`` locate the corrupted index row (``row`` also
    selects the segment for ``store-corrupt``); ``value`` optionally
    pins the corrupted row to an exact vector — the availability bench
    uses this to plant an *attractor* row that surfaces in answers (so
    per-answer verification must catch it) instead of silently sinking.
    ``records`` sizes the ``growth-storm`` ingest burst (``None`` =
    the cluster's default burst; ``label`` optionally pins the burst to
    one label).
    """

    kind: str
    at_query: int
    replica: Optional[str] = None
    delay_s: float = 0.05
    label: Optional[int] = None
    row: Optional[int] = None
    value: Optional[Tuple[float, ...]] = None
    records: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in SERVING_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown serving fault kind {self.kind!r}; "
                f"pick one of {SERVING_FAULT_KINDS}"
            )
        if self.at_query < 0:
            raise ConfigurationError("at_query must be >= 0")
        if self.delay_s < 0:
            raise ConfigurationError("delay_s must be >= 0")
        if self.records is not None and self.records <= 0:
            raise ConfigurationError("records must be >= 1 when given")


class ServingFaultPlan:
    """A deterministic schedule of :class:`ServingFaultSpec` injections.

    Drive it from whatever issues the queries: call
    :meth:`before_query` with the running query ordinal and the target
    cluster before each submission; faults scheduled at that ordinal
    fire exactly once via :meth:`ServingCluster.inject`.
    """

    def __init__(self, faults: Sequence[ServingFaultSpec] = ()) -> None:
        self._pending: Dict[int, List[ServingFaultSpec]] = {}
        for spec in faults:
            self._pending.setdefault(spec.at_query, []).append(spec)
        self.fired: List[ServingFaultSpec] = []

    @classmethod
    def seeded(cls, seed: int, queries: int, n_faults: int = 3,
               kinds: Sequence[str] = ("replica-crash", "replica-hang",
                                       "latency-inject", "index-corrupt"),
               ) -> "ServingFaultPlan":
        """A reproducible random schedule over ``queries`` ordinals.

        Defaults to the replica-scoped kinds; the shared-store faults
        (``store-corrupt`` / ``torn-manifest``) poison every replica at
        once and are opt-in for tests that assert fail-closed refusal.
        """
        if queries <= 0:
            raise ConfigurationError("seeded plan needs a positive horizon")
        for kind in kinds:
            if kind not in SERVING_FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown serving fault kind {kind!r}")
        rng = np.random.default_rng(seed)
        seen = set()
        faults = []
        while len(faults) < n_faults:
            at_query = int(rng.integers(0, queries))
            if at_query in seen:
                continue
            seen.add(at_query)
            faults.append(ServingFaultSpec(
                kind=str(rng.choice(list(kinds))),
                at_query=at_query,
                delay_s=float(rng.uniform(0.01, 0.08)),
            ))
        return cls(faults)

    @property
    def remaining(self) -> int:
        return sum(len(specs) for specs in self._pending.values())

    def scheduled(self) -> List[ServingFaultSpec]:
        """Every not-yet-fired spec, ordered by query ordinal."""
        return [spec for ordinal in sorted(self._pending)
                for spec in self._pending[ordinal]]

    def before_query(self, ordinal: int, cluster) -> List[ServingFaultSpec]:
        """Fire every fault scheduled at this query ordinal."""
        specs = self._pending.pop(ordinal, None)
        if not specs:
            return []
        for spec in specs:
            _LOG.info("injecting serving fault %s before query %d",
                      spec.kind, ordinal)
            cluster.inject(spec)
            self.fired.append(spec)
        return list(specs)
