"""Counters for the fault-tolerant training runtime.

Mirrors :class:`~repro.ingest.telemetry.IngestTelemetry` on the training
side: faults observed per kind, retries and enclave rebuilds, checkpoint
writes (and bytes) versus restores, batch-size degradations, and how
long checkpoint save/restore take in wall time.

A thin adapter over the shared
:class:`~repro.observability.MetricsRegistry` (metric namespace
``repro_resilience_*``); :meth:`RunTelemetry.snapshot` returns a plain
dict and :meth:`render` a human-readable table for the CLI.
"""

from __future__ import annotations

from typing import Dict

from repro.observability.adapter import SubsystemTelemetry

__all__ = ["RunTelemetry"]


class RunTelemetry(SubsystemTelemetry):
    """Counters + stage timings for one supervised training run."""

    subsystem = "resilience"

    @property
    def fault_count(self) -> int:
        """Total faults observed, across all kinds."""
        with self._names_lock:
            fault_names = [name for name in self._counter_names
                           if name.startswith("fault_")]
        return sum(self.counter(name) for name in fault_names)

    def snapshot(self) -> Dict[str, object]:
        snapshot = super().snapshot()
        snapshot["fault_count"] = self.fault_count
        return snapshot

    def render(self) -> str:
        snapshot = self.snapshot()
        lines = ["resilience telemetry"]
        for name in sorted(snapshot["counters"]):
            lines.append(f"  {name:<26} {snapshot['counters'][name]:>10}")
        lines.append(f"  {'faults_total':<26} {snapshot['fault_count']:>10}")
        lines.extend(self._render_stage_lines(snapshot["stages"], width=18))
        return "\n".join(lines)
