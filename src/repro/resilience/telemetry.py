"""Counters for the fault-tolerant training runtime.

Mirrors :class:`~repro.ingest.telemetry.IngestTelemetry` on the training
side: faults observed per kind, retries and enclave rebuilds, checkpoint
writes (and bytes) versus restores, batch-size degradations, and how
long checkpoint save/restore take in wall time. Thread-safe;
:meth:`RunTelemetry.snapshot` returns a plain dict and :meth:`render` a
human-readable table for the CLI.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.serving.telemetry import StageStats

__all__ = ["RunTelemetry"]


class RunTelemetry:
    """Counters + stage timings for one supervised training run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._stages: Dict[str, StageStats] = {}

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, stage: str, value: float) -> None:
        with self._lock:
            stats = self._stages.get(stage)
            if stats is None:
                stats = self._stages[stage] = StageStats()
            stats.observe(value)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    @property
    def fault_count(self) -> int:
        """Total faults observed, across all kinds."""
        with self._lock:
            return sum(
                count for name, count in self._counters.items()
                if name.startswith("fault_")
            )

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            stages = {name: stats.as_dict()
                      for name, stats in self._stages.items()}
        return {
            "counters": counters,
            "stages": stages,
            "fault_count": self.fault_count,
        }

    def render(self) -> str:
        snapshot = self.snapshot()
        lines = ["resilience telemetry"]
        for name in sorted(snapshot["counters"]):
            lines.append(f"  {name:<26} {snapshot['counters'][name]:>10}")
        lines.append(f"  {'faults_total':<26} {snapshot['fault_count']:>10}")
        for name in sorted(snapshot["stages"]):
            stage = snapshot["stages"][name]
            lines.append(
                f"  stage {name:<18} n={stage['count']:<7} "
                f"mean={stage['mean'] * 1e3:8.3f}ms max={stage['max'] * 1e3:8.3f}ms"
            )
        return "\n".join(lines)
