"""Shared utilities: logging, deterministic RNG streams, serialization."""

from repro.utils.fileio import atomic_write_bytes, atomic_write_text, fsync_dir
from repro.utils.logging import get_logger
from repro.utils.rng import (
    RngStream,
    derive_seed,
    get_generator_state,
    set_generator_state,
)
from repro.utils.serialization import (
    array_from_bytes,
    array_to_bytes,
    canonical_digest,
    canonical_json,
    stable_hash,
)

__all__ = [
    "get_logger",
    "RngStream",
    "derive_seed",
    "get_generator_state",
    "set_generator_state",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "array_from_bytes",
    "array_to_bytes",
    "canonical_digest",
    "canonical_json",
    "stable_hash",
]
