"""Shared utilities: logging, deterministic RNG streams, serialization."""

from repro.utils.logging import get_logger
from repro.utils.rng import RngStream, derive_seed
from repro.utils.serialization import (
    array_from_bytes,
    array_to_bytes,
    canonical_json,
    stable_hash,
)

__all__ = [
    "get_logger",
    "RngStream",
    "derive_seed",
    "array_from_bytes",
    "array_to_bytes",
    "canonical_json",
    "stable_hash",
]
