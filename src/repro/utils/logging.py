"""Library logging.

The library never configures the root logger; it only creates namespaced
children under ``repro`` with a ``NullHandler`` so that applications decide
where log output goes.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root.

    Args:
        name: Dotted suffix, e.g. ``"enclave"`` or ``"core.assessment"``.
    """
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
