"""Crash-safe file writes.

A process can die at any byte of a ``write()`` — a torn model file or
checkpoint manifest must never be mistaken for a valid one. Every durable
artifact in the reproduction therefore goes through the same discipline:
write the full payload to a temporary sibling, fsync it, atomically
``os.replace`` it over the destination, then fsync the directory so the
rename itself is durable. Readers either see the complete old file or the
complete new file, never a prefix.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["fsync_dir", "atomic_write_bytes", "atomic_write_text"]


def fsync_dir(path: Union[str, os.PathLike]) -> None:
    """Make a directory entry (a new or replaced file name) durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, os.PathLike], data: bytes) -> None:
    """Write ``data`` to ``path`` so a crash never leaves a torn file."""
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_dir(target.parent)


def atomic_write_text(path: Union[str, os.PathLike], text: str) -> None:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))
