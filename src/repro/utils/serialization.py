"""Canonical serialization helpers.

The linkage database stores hash digests of training instances, enclave
measurement covers loaded code/data, and AEAD operates over byte strings —
all of which need a *canonical* byte representation of numpy arrays and
plain-Python structures so that hashes are stable across runs and platforms.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Tuple

import numpy as np

__all__ = [
    "array_to_bytes",
    "array_from_bytes",
    "canonical_digest",
    "canonical_json",
    "stable_hash",
]

_MAGIC = b"RPR1"


def array_to_bytes(array: np.ndarray) -> bytes:
    """Serialize an array to a self-describing canonical byte string.

    The encoding is ``MAGIC | dtype-len | dtype-str | ndim | dims... | data``
    with little-endian, C-contiguous payload, so equal arrays always produce
    equal bytes regardless of their in-memory layout.
    """
    arr = np.ascontiguousarray(array)
    dtype_str = arr.dtype.str.encode("ascii")
    header = _MAGIC + struct.pack("<I", len(dtype_str)) + dtype_str
    header += struct.pack("<I", arr.ndim)
    header += b"".join(struct.pack("<Q", dim) for dim in arr.shape)
    return header + arr.tobytes(order="C")


def array_from_bytes(blob: bytes) -> np.ndarray:
    """Inverse of :func:`array_to_bytes`."""
    if blob[:4] != _MAGIC:
        raise ValueError("not a serialized array (bad magic)")
    offset = 4
    (dtype_len,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    dtype = np.dtype(blob[offset : offset + dtype_len].decode("ascii"))
    offset += dtype_len
    (ndim,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    shape: Tuple[int, ...] = ()
    for _ in range(ndim):
        (dim,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        shape += (dim,)
    data = np.frombuffer(blob, dtype=dtype, offset=offset)
    return data.reshape(shape).copy()


def canonical_json(value: Any) -> bytes:
    """Serialize a JSON-able value with sorted keys and no whitespace.

    Float formatting is Python's shortest round-trip ``repr`` (the only
    encoding two CPython builds agree on bit-for-bit), and non-finite
    floats are rejected outright: ``NaN``/``Infinity`` are not JSON, and
    letting them through would make a digest that other JSON stacks
    cannot reproduce.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")


def canonical_digest(*parts: Any) -> bytes:
    """SHA-256 over a sequence of heterogeneous parts — *the* digest.

    Every content-addressed identity in the system (ledger manifests,
    checkpoint config digests, linkage-store snapshots, governance run
    keys) is defined in terms of this one function so they can never
    drift apart. Arrays are canonicalised via :func:`array_to_bytes`,
    bytes pass through, and everything else goes through
    :func:`canonical_json`. Each part is length-prefixed so
    concatenation ambiguity cannot create collisions.
    """
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, np.ndarray):
            encoded = array_to_bytes(part)
        elif isinstance(part, (bytes, bytearray)):
            encoded = bytes(part)
        else:
            encoded = canonical_json(part)
        hasher.update(struct.pack("<Q", len(encoded)))
        hasher.update(encoded)
    return hasher.digest()


def stable_hash(*parts: Any) -> bytes:
    """Compatibility alias for :func:`canonical_digest`.

    Pre-governance call sites hash through this name; the bytes are
    identical, so sealed manifests and checkpoints written under either
    name verify under both.
    """
    return canonical_digest(*parts)
