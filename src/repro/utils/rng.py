"""Deterministic random-number streams.

Every stochastic component in the reproduction (weight init, shuffling,
augmentation, trigger synthesis, the enclave's trusted RNG) draws from a
named :class:`RngStream` derived from a master seed, so whole experiments
replay bit-for-bit. Stream derivation uses SHA-256 over the parent seed and
the child name, which keeps sibling streams statistically independent and
insensitive to creation order.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Any, Dict

import numpy as np

__all__ = ["derive_seed", "RngStream", "get_generator_state",
           "set_generator_state"]


def derive_seed(parent_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a parent seed and a stream name."""
    digest = hashlib.sha256(f"{parent_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def get_generator_state(generator: np.random.Generator) -> Dict[str, Any]:
    """Capture a generator's exact position as a JSON-able dict.

    Restoring the returned state via :func:`set_generator_state` makes the
    generator replay the identical draw sequence — which is what lets a
    resumed training run reproduce the same minibatch shuffles and
    augmentation decisions as an uninterrupted one.
    """
    return copy.deepcopy(generator.bit_generator.state)


def set_generator_state(generator: np.random.Generator,
                        state: Dict[str, Any]) -> None:
    """Restore a state captured by :func:`get_generator_state` in place."""
    generator.bit_generator.state = copy.deepcopy(state)


class RngStream:
    """A named, hierarchical wrapper around ``numpy.random.Generator``.

    Example:
        >>> root = RngStream(seed=7, name="experiment")
        >>> init = root.child("weight-init")
        >>> float(init.generator.standard_normal()) == float(
        ...     RngStream(seed=7, name="experiment").child("weight-init")
        ...     .generator.standard_normal())
        True
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed) & 0xFFFFFFFFFFFFFFFF
        self.name = name
        self.generator = np.random.Generator(np.random.PCG64(self.seed))

    def child(self, name: str) -> "RngStream":
        """Return an independent stream derived from this one."""
        return RngStream(derive_seed(self.seed, name), name=f"{self.name}/{name}")

    def get_state(self) -> Dict[str, Any]:
        """Capture this stream's generator position (checkpointable)."""
        return get_generator_state(self.generator)

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore a position captured by :meth:`get_state`."""
        set_generator_state(self.generator, state)

    def randbytes(self, n: int) -> bytes:
        """Return ``n`` uniformly random bytes from this stream."""
        return self.generator.bytes(n)

    def fork_generator(self) -> np.random.Generator:
        """Return a fresh generator with this stream's seed (replayable)."""
        return np.random.Generator(np.random.PCG64(self.seed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(name={self.name!r}, seed={self.seed})"
