"""Deterministic semantic run identity.

A training run is *the same run* when it would, bit for bit, produce the
same model: same agreed configuration (architecture + hyperparameters),
same committed training data, same code. The ``run_key`` digests exactly
those three inputs through the one shared
:func:`~repro.utils.serialization.canonical_digest`, so two deployments
computing it independently agree — which is what makes it usable for
training-run dedup (skip a run whose key already completed), checkpoint
binding (a checkpoint names the run that wrote it), and promotion (a
serving replica proves which run it answers for).
"""

from __future__ import annotations

from typing import Iterable, Optional

import repro
from repro.utils.serialization import canonical_digest

__all__ = ["code_version", "compute_run_key", "submissions_digest"]


def code_version() -> str:
    """The code input to the run key — the library release identity."""
    return repro.__version__


def submissions_digest(submissions: Iterable) -> bytes:
    """Data digest for the in-memory submission path (no ledger).

    Hashes the sorted per-record content digests, so the identity is
    order-independent across sources but sensitive to every sealed byte.
    Ledger-backed runs use the ledger manifest digest instead — it
    additionally commits to the quarantine lane.
    """
    from repro.ingest.ledger import record_digest

    digests = sorted(
        record_digest(record).hex()
        for dataset in submissions for record in dataset.records
    )
    return canonical_digest({"submissions": digests})


def compute_run_key(config_digest: bytes, data_digest: bytes,
                    version: Optional[str] = None) -> str:
    """``digest(canonical config ⊕ data manifest digest ⊕ code version)``.

    Hex-encoded so it can travel through JSON manifests, CLI output, and
    audit events unchanged. Any single differing input — one
    hyperparameter, one training record, one release — yields a
    different key.
    """
    return canonical_digest({
        "config": config_digest.hex(),
        "data": data_digest.hex(),
        "code": version if version is not None else code_version(),
    }).hex()
