"""Contributor attribution reports with a complete evidence chain.

The paper's accountability story, made auditable end to end: a model
user flags a prediction, the serving plane finds the training instances
whose fingerprints sit closest to the flagged input, and *this* module
walks each hit all the way back — linkage record → committed ledger
segment → contributor — and assembles a JSON report carrying every link:

1. the **query audit entry** the serving engine chained for the flagged
   query (so the answer itself is tamper-evident),
2. the **linkage hits** (store indices, distances, record digests),
3. the **ledger evidence** per hit (segment name, segment digest, lane,
   contributor, record content digest),
4. the **governance events** for the run (train-start/complete,
   promotion), and
5. the contributor ranking with the implicated set (hit-share
   threshold, same idiom as :class:`~repro.core.accountability.Investigator`).

The walk is fail-closed (:class:`~repro.errors.AttributionError`): a
governance log that does not verify, a promotion that no longer matches
the artifacts, a hit that resolves to no ledger record, or a hit that
resolves into the *quarantine* lane all refuse rather than emit a report
that names contributors on unverifiable evidence. The finished report is
itself chained into the governance log, so reports can never be
retroactively rewritten either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import (AttributionError, GovernanceLogError, LedgerError,
                          PromotionError)
from repro.governance.log import GovernanceLog
from repro.utils.logging import get_logger
from repro.utils.serialization import canonical_digest, canonical_json

__all__ = ["AttributionReport", "Attributor"]

_LOG = get_logger("governance.attribution")


@dataclass(frozen=True)
class AttributionReport:
    """One flagged prediction, attributed, with its evidence chain."""

    run_key: str
    label: int
    query_digest: str
    query_audit: Dict[str, Any]
    hits: List[Dict[str, Any]]
    contributors: List[Dict[str, Any]]
    implicated: List[str]
    governance_events: List[Dict[str, Any]]
    report_digest: str
    governance_entry: Dict[str, Any]

    def to_json(self) -> bytes:
        return canonical_json({
            "run_key": self.run_key,
            "label": self.label,
            "query_digest": self.query_digest,
            "query_audit": self.query_audit,
            "hits": self.hits,
            "contributors": self.contributors,
            "implicated": self.implicated,
            "governance_events": self.governance_events,
            "report_digest": self.report_digest,
            "governance_entry": self.governance_entry,
        })


class Attributor:
    """Resolves flagged predictions to contributors, fail-closed.

    Args:
        engine: A started :class:`~repro.serving.engine.ServingEngine`
            (its audit chain becomes part of the evidence).
        store: The :class:`LinkageStore` behind the engine's index.
        ledger: The :class:`ContributionLedger` training consumed.
        log: The governance event log.
        gate: Optional :class:`PromotionGate`; with ``promotion`` set,
            the promoted lineage is re-verified before any evidence is
            trusted.
        promotion: The :class:`PromotionRecord` the serving plane runs
            under.
        source_share_threshold: A contributor owning at least this share
            of the evidence hits is implicated.
    """

    def __init__(self, engine, store, ledger, log: GovernanceLog, *,
                 gate=None, promotion=None, telemetry=None,
                 source_share_threshold: float = 0.25) -> None:
        self.engine = engine
        self.store = store
        self.ledger = ledger
        self.log = log
        self.gate = gate
        self.promotion = promotion
        self.telemetry = telemetry
        self.source_share_threshold = source_share_threshold

    # -- the evidence walk --------------------------------------------------------

    def _verify_planes(self) -> None:
        try:
            self.log.verify()
        except GovernanceLogError as exc:
            raise AttributionError(
                f"governance log failed verification: {exc}"
            ) from exc
        if self.gate is not None and self.promotion is not None:
            try:
                self.gate.verify_record(self.promotion)
            except PromotionError as exc:
                raise AttributionError(
                    f"promoted lineage no longer verifies: {exc}"
                ) from exc
        if not self.engine.verify_audit_chain():
            raise AttributionError(
                "serving query audit chain failed verification"
            )

    def attribute(self, fingerprint: np.ndarray, label: int,
                  k: int = 9) -> AttributionReport:
        """Attribute one flagged prediction; returns the chained report."""
        try:
            report = self._attribute(fingerprint, label, k)
        except AttributionError:
            if self.telemetry is not None:
                self.telemetry.count("attributions_refused")
            raise
        if self.telemetry is not None:
            self.telemetry.count("attributions")
        return report

    def _attribute(self, fingerprint: np.ndarray, label: int,
                   k: int) -> AttributionReport:
        self._verify_planes()

        hits = self.engine.submit(fingerprint, label, k=k).result()
        if not self.engine.verify_audit_chain():
            raise AttributionError(
                "serving query audit chain failed verification after the "
                "flagged query"
            )
        queries = self.engine.audit.events("serving-query")
        if not queries:
            raise AttributionError(
                "the flagged query left no audit entry — refusing to build "
                "an unanchored report"
            )
        audit_event = queries[-1]
        query_audit = dict(audit_event.payload, chain=audit_event.chain_hash.hex())

        evidence: List[Dict[str, Any]] = []
        for hit in hits:
            record = self.store.record(hit.index)
            try:
                ledger_evidence = self.ledger.locate_record(
                    record.source, record.source_index
                )
            except LedgerError as exc:
                raise AttributionError(
                    f"linkage hit (store index {hit.index}) has no ledger "
                    f"backing: {exc}"
                ) from exc
            if ledger_evidence["lane"] != "committed":
                raise AttributionError(
                    f"linkage hit (store index {hit.index}) resolves to the "
                    f"quarantine lane of contributor "
                    f"{ledger_evidence['contributor']!r} "
                    f"(reason: {ledger_evidence['reason']!r}) — a "
                    "quarantined record can never be training evidence"
                )
            evidence.append({
                "store_index": int(hit.index),
                "distance": float(hit.distance),
                "source": record.source,
                "source_index": int(record.source_index),
                "fingerprint_digest": record.digest.hex(),
                "ledger": ledger_evidence,
            })

        counts: Dict[str, int] = {}
        for item in evidence:
            counts[item["source"]] = counts.get(item["source"], 0) + 1
        total = len(evidence)
        contributors = [
            {"contributor": source, "hits": count,
             "share": count / total}
            for source, count in sorted(counts.items(),
                                        key=lambda kv: (-kv[1], kv[0]))
        ]
        implicated = [c["contributor"] for c in contributors
                      if c["share"] >= self.source_share_threshold]

        run_key = (self.promotion.run_key if self.promotion is not None
                   else "")
        governance_events = [
            e for e in self.log.events()
            if e["kind"] in ("train-start", "train-complete", "promotion")
            and (not run_key or e["details"].get("run_key") == run_key)
        ]

        body = {
            "run_key": run_key,
            "label": int(label),
            "query_digest": query_audit["details"]["query_digest"],
            "query_audit": query_audit,
            "hits": evidence,
            "contributors": contributors,
            "implicated": implicated,
            "governance_events": governance_events,
        }
        report_digest = canonical_digest(body).hex()
        entry = self.log.append(
            "attribution",
            run_key=run_key,
            label=int(label),
            query_digest=body["query_digest"],
            report_digest=report_digest,
            implicated=implicated,
        )
        _LOG.info("attribution for label %d: %d hits, implicated %s",
                  label, total, implicated)
        return AttributionReport(
            run_key=run_key,
            label=int(label),
            query_digest=body["query_digest"],
            query_audit=query_audit,
            hits=evidence,
            contributors=contributors,
            implicated=implicated,
            governance_events=governance_events,
            report_digest=report_digest,
            governance_entry=entry,
        )
