"""The append-only, hash-chained governance event log.

One durable timeline for the whole deployment: ingest commits, training
starts/resumes/completions, checkpoints, promotions, and attribution
reports all land here, each entry cross-referencing the per-subsystem
audit chain it summarises. The chain math is the shared
:class:`~repro.core.chain.HashChain` under its own genesis label, so a
verified prefix of a subsystem audit log can never be spliced in as
governance history.

Durability and tamper detection are both fail-closed:

* every append is one canonical-JSON line in ``events.jsonl``, flushed
  and fsynced before the call returns;
* ``head.json`` is an atomically-replaced sidecar holding the latest
  ``(seq, chain)`` — a *separate* commitment to log length, so plain
  truncation (which would otherwise leave a perfectly valid shorter
  chain) is detected;
* :meth:`open` re-verifies the full chain against the sidecar and raises
  :class:`~repro.errors.GovernanceLogError` on any bit flip, splice, or
  truncation. The only states it repairs are the two benign crash
  windows of the append protocol itself: a torn (unparseable) final line
  the head never acknowledged, and a fully-written final line the crash
  kept from being acknowledged.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.chain import HashChain
from repro.errors import GovernanceLogError
from repro.utils.fileio import atomic_write_text, fsync_dir
from repro.utils.logging import get_logger
from repro.utils.serialization import canonical_json

__all__ = ["GovernanceLog"]

_LOG = get_logger("governance.log")

_EVENTS_FILE = "events.jsonl"
_HEAD_FILE = "head.json"

#: Event kinds the control plane emits (informative, not enforced —
#: deployments may chain their own kinds into the same timeline).
EVENT_KINDS = (
    "ingest-commit",
    "train-start",
    "train-resume",
    "train-complete",
    "checkpoint",
    "promotion",
    "attribution",
)


class GovernanceLog:
    """Durable hash-chained JSONL event log with a truncation-proof head."""

    _CHAIN = HashChain(b"caltrain-governance-genesis")

    def __init__(self, path: Path, entries: List[Dict[str, Any]]) -> None:
        self.path = path
        self._entries = entries
        self._handle = open(path / _EVENTS_FILE, "a", encoding="utf-8")

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(cls, path: os.PathLike) -> "GovernanceLog":
        """Initialise an empty log at ``path`` (created if missing)."""
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        events = root / _EVENTS_FILE
        if events.exists():
            raise GovernanceLogError(
                f"a governance log already exists at {root}"
            )
        events.write_bytes(b"")
        log = cls(root, [])
        log._write_head()
        return log

    @classmethod
    def open(cls, path: os.PathLike) -> "GovernanceLog":
        """Load and fully verify an existing log; fail-closed."""
        root = Path(path)
        events_path = root / _EVENTS_FILE
        head_path = root / _HEAD_FILE
        if not events_path.exists():
            raise GovernanceLogError(f"no governance log at {root}")
        if not head_path.exists():
            raise GovernanceLogError(
                f"governance log at {root} has no head sidecar "
                "(removed or never committed) — refusing to trust it"
            )
        entries, torn_tail = cls._parse_lines(events_path.read_bytes())
        try:
            head = json.loads(head_path.read_text())
            head_seq, head_chain = int(head["seq"]), str(head["chain"])
        except (ValueError, KeyError, TypeError) as exc:
            raise GovernanceLogError(
                f"governance head sidecar at {root} is malformed: {exc}"
            ) from exc

        log = cls(root, entries)
        if not log._verify_entries():
            log.close()
            raise GovernanceLogError(
                f"governance log at {root} failed chain verification "
                "(an entry was altered or spliced)"
            )
        last_seq = entries[-1]["seq"] if entries else -1
        if head_seq > last_seq:
            log.close()
            raise GovernanceLogError(
                f"governance log at {root} is shorter than its committed "
                f"head (head seq {head_seq}, last entry {last_seq}) — "
                "the log was truncated"
            )
        if head_seq == last_seq:
            expected = entries[-1]["chain"] if entries else \
                log._CHAIN.genesis.hex()
            if head_chain != expected:
                log.close()
                raise GovernanceLogError(
                    f"governance log at {root}: head hash disagrees with "
                    "the entries on disk (log or head was tampered with)"
                )
            if torn_tail:
                # Crash window 1: the final line tore mid-write and the
                # head never acknowledged it. The acknowledged prefix is
                # intact; drop the tail.
                _LOG.warning(
                    "governance log %s: dropping torn unacknowledged tail",
                    root,
                )
                log._rewrite_entries()
        elif head_seq == last_seq - 1 and not torn_tail:
            # Crash window 2: the final append hit disk but the crash
            # preceded the head update. The entry verifies as part of the
            # chain (checked above); adopt it and advance the head.
            _LOG.warning(
                "governance log %s: adopting un-acknowledged final entry "
                "seq %d", root, last_seq,
            )
            log._write_head()
        else:
            log.close()
            raise GovernanceLogError(
                f"governance log at {root}: head (seq {head_seq}) and "
                f"entries (last seq {last_seq}) disagree beyond the "
                "single-append crash window — refusing to trust it"
            )
        return log

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    # -- parsing / verification ---------------------------------------------------

    @staticmethod
    def _parse_lines(blob: bytes) -> "tuple[List[Dict[str, Any]], bool]":
        """Parse JSONL entries; returns ``(entries, torn_tail)``.

        Only the *final* line may fail to parse (a torn append); a bad
        line with valid lines after it is corruption, not a crash.
        """
        entries: List[Dict[str, Any]] = []
        lines = blob.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for position, line in enumerate(lines):
            try:
                entry = json.loads(line.decode("utf-8"))
                if not all(k in entry for k in
                           ("seq", "kind", "details", "chain")):
                    raise ValueError("missing entry fields")
            except (ValueError, UnicodeDecodeError) as exc:
                if position == len(lines) - 1:
                    return entries, True
                raise GovernanceLogError(
                    f"governance log line {position} is unparseable with "
                    f"valid entries after it (corruption): {exc}"
                ) from exc
            entries.append(entry)
        return entries, False

    def _verify_entries(self) -> bool:
        return self._CHAIN.verify(
            ({"seq": e["seq"], "kind": e["kind"], "details": e["details"]},
             bytes.fromhex(e["chain"]))
            for e in self._entries
        )

    def verify(self) -> bool:
        """Re-verify the in-memory chain against the durable head; raises."""
        if not self._verify_entries():
            raise GovernanceLogError(
                f"governance log at {self.path} failed chain verification"
            )
        head_path = self.path / _HEAD_FILE
        try:
            head = json.loads(head_path.read_text())
        except (OSError, ValueError) as exc:
            raise GovernanceLogError(
                f"governance head sidecar unreadable: {exc}"
            ) from exc
        if head.get("seq") != len(self._entries) - 1 or \
                head.get("chain") != self.head.hex():
            raise GovernanceLogError(
                "governance head sidecar disagrees with the log"
            )
        return True

    # -- the append protocol ------------------------------------------------------

    @property
    def head(self) -> bytes:
        return (bytes.fromhex(self._entries[-1]["chain"]) if self._entries
                else self._CHAIN.genesis)

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, kind: str, **details: Any) -> Dict[str, Any]:
        """Durably record one event; returns the chained entry.

        Write order is the crash-consistency contract :meth:`open` leans
        on: the line is flushed and fsynced *before* the head sidecar is
        replaced, so a crash leaves either a torn unacknowledged line or
        a full unacknowledged line — never an acknowledged entry that is
        not on disk.
        """
        seq = len(self._entries)
        payload = {"seq": seq, "kind": kind, "details": details}
        chain = self._CHAIN.entry_hash(self.head, payload)
        entry = dict(payload, chain=chain.hex())
        self._handle.write(canonical_json(entry).decode("utf-8") + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._entries.append(entry)
        self._write_head()
        return entry

    def _write_head(self) -> None:
        atomic_write_text(
            self.path / _HEAD_FILE,
            json.dumps({"seq": len(self._entries) - 1,
                        "chain": self.head.hex()}),
        )
        fsync_dir(self.path)

    def _rewrite_entries(self) -> None:
        """Drop a torn tail by rewriting the acknowledged prefix."""
        self.close()
        atomic_write_text(
            self.path / _EVENTS_FILE,
            "".join(canonical_json(e).decode("utf-8") + "\n"
                    for e in self._entries),
        )
        self._handle = open(self.path / _EVENTS_FILE, "a", encoding="utf-8")

    # -- queries -----------------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        if kind is None:
            return list(self._entries)
        return [e for e in self._entries if e["kind"] == kind]

    def find_run(self, run_key: str, kind: str = "train-complete",
                 ) -> Optional[Dict[str, Any]]:
        """The newest event of ``kind`` for a run key (dedup probe).

        ``CalTrain.train`` consults this before starting: a
        ``train-complete`` event for the same run key means an identical
        run (same config, data, and code) already produced the model.
        """
        for entry in reversed(self._entries):
            if entry["kind"] == kind and \
                    entry["details"].get("run_key") == run_key:
                return entry
        return None
