"""The fail-closed promotion gate.

A model may serve only after its entire lineage verifies end-to-end:

1. **ledger** — every committed and quarantined segment re-hashes to its
   manifest digest (no contribution was altered after validation);
2. **checkpoint** — the newest valid checkpoint's data files hash to its
   manifest, and that manifest names the same MRENCLAVE, config digest,
   and ``run_key`` being promoted (the weights really came from this
   run, inside the agreed enclave);
3. **linkage store** — every fingerprint segment re-hashes to its
   manifest digest (the serving index answers from exactly what the
   fingerprint stage produced);
4. **governance log** — the event timeline itself verifies.

A walk that passes yields a signed :class:`PromotionRecord`. The
signature is an HMAC under a key derived from the *platform secret and
the enclave measurement* (the same derivation family as SGX sealing), so
the untrusted host — which can read every artifact — cannot mint a
record for a tampered lineage: it never holds the key. Anything that
fails raises :class:`~repro.errors.PromotionError`; there is no advisory
mode.

:meth:`PromotionGate.serving_verifier` packages the same walk as a guard
:class:`~repro.serving.engine.ServingEngine` runs at :meth:`start`, so a
lineage that was tampered with *after* promotion (a swapped ledger
segment, a re-sealed checkpoint, a truncated governance log) still
refuses to serve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, asdict
from typing import Any, Callable, Dict, Optional

from repro.crypto.hashing import constant_time_equal, hmac_sha256
from repro.crypto.hkdf import hkdf
from repro.enclave.enclave import Enclave
from repro.errors import (CheckpointError, GovernanceLogError, LedgerError,
                          PromotionError, StoreError)
from repro.governance.log import GovernanceLog
from repro.utils.logging import get_logger
from repro.utils.serialization import canonical_digest, canonical_json

__all__ = ["PromotionRecord", "PromotionGate"]

_LOG = get_logger("governance.gate")


@dataclass(frozen=True)
class PromotionRecord:
    """A signed attestation that one run's lineage verified end-to-end.

    All digests are hex. ``checkpoint_digest`` is ``None`` for runs that
    trained without a checkpoint directory (nothing to bind); the other
    links are mandatory.
    """

    run_key: str
    config_digest: str
    ledger_digest: str
    store_digest: str
    checkpoint_digest: Optional[str]
    mrenclave: str
    governance_head: str
    signature: str = ""

    def payload(self) -> Dict[str, Any]:
        """The signed portion (everything except the signature)."""
        fields = asdict(self)
        fields.pop("signature")
        return fields

    def to_json(self) -> bytes:
        return canonical_json(asdict(self))

    @classmethod
    def from_json(cls, blob: bytes) -> "PromotionRecord":
        import json

        try:
            fields = json.loads(blob.decode("utf-8"))
            return cls(**fields)
        except (ValueError, TypeError) as exc:
            raise PromotionError(
                f"promotion record is malformed: {exc}"
            ) from exc


class PromotionGate:
    """Walks a run's lineage and signs (or refuses) its promotion.

    Args:
        enclave: The training enclave whose identity anchors the
            signing key and whose measurement checkpoints must match.
        log: The governance event log; every verify/promote chains into
            it and its own integrity is part of the walk.
        ledger: The committed contribution ledger training consumed.
        checkpoints: Optional :class:`CheckpointManager` of the run.
        store: The :class:`LinkageStore` the serving index answers from.
        telemetry: Optional :class:`GovernanceTelemetry`.
    """

    def __init__(self, enclave: Enclave, log: GovernanceLog, *,
                 ledger=None, checkpoints=None, store=None,
                 telemetry=None) -> None:
        self.enclave = enclave
        self.log = log
        self.ledger = ledger
        self.checkpoints = checkpoints
        self.store = store
        self.telemetry = telemetry

    # -- the signing boundary -----------------------------------------------------

    def _signing_key(self) -> bytes:
        # Same derivation family as SGX sealing: platform secret keyed by
        # the enclave measurement. The untrusted host holds neither.
        return hkdf(
            ikm=self.enclave.platform.platform_key,
            salt=self.enclave.mrenclave,
            info=b"caltrain-promotion",
            length=32,
        )

    def _sign(self, record: PromotionRecord) -> PromotionRecord:
        signature = hmac_sha256(
            self._signing_key(), canonical_json(record.payload())
        )
        return PromotionRecord(**dict(record.payload(),
                                      signature=signature.hex()))

    def check_signature(self, record: PromotionRecord) -> None:
        """Authenticate a record; raises :class:`PromotionError`."""
        if not record.signature:
            raise PromotionError("promotion record is unsigned")
        expected = hmac_sha256(
            self._signing_key(), canonical_json(record.payload())
        )
        if not constant_time_equal(expected,
                                   bytes.fromhex(record.signature)):
            raise PromotionError(
                "promotion record signature does not verify — forged "
                "record or altered fields"
            )

    # -- the lineage walk ---------------------------------------------------------

    def verify(self, run_key: str,
               config_digest: Optional[bytes] = None) -> Dict[str, Any]:
        """Walk ledger → checkpoint chain → store; fail-closed.

        Returns the verified lineage digests (the fields a
        :class:`PromotionRecord` signs). Raises
        :class:`~repro.errors.PromotionError` naming the first link that
        failed.
        """
        started = time.perf_counter()
        try:
            lineage = self._walk(run_key, config_digest)
        except PromotionError:
            if self.telemetry is not None:
                self.telemetry.count("verifications_refused")
            raise
        if self.telemetry is not None:
            self.telemetry.count("verifications")
            self.telemetry.observe("gate_verify",
                                   time.perf_counter() - started)
        return lineage

    def _walk(self, run_key: str,
              config_digest: Optional[bytes]) -> Dict[str, Any]:
        try:
            self.log.verify()
        except GovernanceLogError as exc:
            raise PromotionError(
                f"governance log failed verification: {exc}"
            ) from exc

        if self.ledger is None:
            raise PromotionError(
                "no contribution ledger bound — a run without a committed "
                "ledger has no verifiable data lineage"
            )
        try:
            self.ledger.verify()
        except LedgerError as exc:
            raise PromotionError(
                f"ledger lineage failed verification: {exc}"
            ) from exc
        ledger_digest = self.ledger.manifest_digest().hex()

        checkpoint_digest: Optional[str] = None
        if self.checkpoints is not None:
            info = self.checkpoints.latest()
            if info is None:
                raise PromotionError(
                    "checkpoint lineage failed verification: no valid "
                    "checkpoint survives digest checks"
                )
            manifest = info.manifest
            if manifest.get("run_key") != run_key:
                raise PromotionError(
                    f"checkpoint {info.path.name} belongs to run "
                    f"{manifest.get('run_key')!r}, not the run being "
                    f"promoted"
                )
            if manifest.get("mrenclave") != self.enclave.mrenclave.hex():
                raise PromotionError(
                    f"checkpoint {info.path.name} was sealed by a "
                    "different enclave (MRENCLAVE mismatch)"
                )
            if config_digest is not None and \
                    manifest.get("config_digest") != config_digest.hex():
                raise PromotionError(
                    f"checkpoint {info.path.name} belongs to a different "
                    "training agreement (config digest mismatch)"
                )
            checkpoint_digest = canonical_digest(manifest).hex()

        if self.store is None:
            raise PromotionError(
                "no linkage store bound — a model without a fingerprint "
                "snapshot cannot answer accountability queries"
            )
        try:
            self.store.verify()
        except StoreError as exc:
            raise PromotionError(
                f"linkage-store lineage failed verification: {exc}"
            ) from exc

        return {
            "run_key": run_key,
            "config_digest": (config_digest.hex() if config_digest
                              else None),
            "ledger_digest": ledger_digest,
            "checkpoint_digest": checkpoint_digest,
            "store_digest": self.store.manifest_digest().hex(),
            "mrenclave": self.enclave.mrenclave.hex(),
        }

    # -- promotion ---------------------------------------------------------------

    def promote(self, run_key: str,
                config_digest: Optional[bytes] = None) -> PromotionRecord:
        """Verify the lineage and issue the signed promotion record.

        The record is chained into the governance log (kind
        ``"promotion"``) with its content digest, so a later verifier
        can prove both that the promotion happened and exactly which
        lineage it attested.
        """
        lineage = self.verify(run_key, config_digest)
        record = self._sign(PromotionRecord(
            run_key=run_key,
            config_digest=lineage["config_digest"] or "",
            ledger_digest=lineage["ledger_digest"],
            store_digest=lineage["store_digest"],
            checkpoint_digest=lineage["checkpoint_digest"],
            mrenclave=lineage["mrenclave"],
            governance_head=self.log.head.hex(),
        ))
        self.log.append(
            "promotion",
            run_key=run_key,
            record_digest=canonical_digest(record.to_json()).hex(),
            ledger_digest=record.ledger_digest,
            store_digest=record.store_digest,
            checkpoint_digest=record.checkpoint_digest,
            mrenclave=record.mrenclave,
        )
        if self.telemetry is not None:
            self.telemetry.count("promotions")
        _LOG.info("run %s promoted (ledger %s..., store %s...)",
                  run_key[:16], record.ledger_digest[:12],
                  record.store_digest[:12])
        return record

    def verify_record(self, record: Optional[PromotionRecord]) -> None:
        """Re-verify a promotion against the *current* artifacts.

        This is the serving-load walk: signature first (an unsigned or
        forged record never triggers I/O), then the full lineage walk,
        then digest equality between what the record attests and what is
        on disk *now* — a ledger segment swapped after promotion, a
        checkpoint re-sealed, or a store regenerated all surface here as
        typed :class:`~repro.errors.PromotionError`.
        """
        if record is None:
            raise PromotionError(
                "no promotion record — this model was never promoted and "
                "must not serve"
            )
        self.check_signature(record)
        lineage = self.verify(
            record.run_key,
            bytes.fromhex(record.config_digest)
            if record.config_digest else None,
        )
        for link in ("ledger_digest", "store_digest", "checkpoint_digest"):
            attested = getattr(record, link)
            current = lineage[link]
            if attested != current:
                raise PromotionError(
                    f"{link.replace('_', ' ')} changed after promotion "
                    f"(attested {attested!r}, found {current!r}) — the "
                    "artifacts no longer match the promoted lineage"
                )

    def serving_verifier(self) -> Callable[[Optional[PromotionRecord]], None]:
        """The guard :class:`ServingEngine` runs before accepting traffic."""
        def _guard(record: Optional[PromotionRecord]) -> None:
            try:
                self.verify_record(record)
            except PromotionError:
                if self.telemetry is not None:
                    self.telemetry.count("serving_refusals")
                raise
        return _guard

    def verify_index_snapshot(self, generation) -> None:
        """Extend the lineage walk down to the serving index itself.

        A promoted store attests *what* may be served; an
        :class:`~repro.serving.segments.IndexGeneration` attests *how*
        it is being served right now. This walk checks that the
        generation's covered store digests are a committed prefix of the
        gate's bound store and that its ``index-snapshot`` digest
        recomputes from those digests plus the build parameters — so an
        index built over a rewritten history, or one whose snapshot
        digest was forged, refuses promotion-grade service.
        """
        if self.store is None:
            raise PromotionError(
                "no linkage store bound — cannot verify an index snapshot "
                "without the authoritative store"
            )
        from repro.serving.segments import generation_lineage_error
        problem = generation_lineage_error(generation, self.store)
        if problem is not None:
            if self.telemetry is not None:
                self.telemetry.count("index_refusals")
            raise PromotionError(
                f"index snapshot failed the lineage walk: {problem}"
            )
        if self.telemetry is not None:
            self.telemetry.count("index_verifications")
