"""Governance counters and latency stages on the shared registry.

Everything lands under ``repro_governance_*`` in whatever
:class:`~repro.observability.metrics.MetricsRegistry` the deployment
shares, so one Prometheus export covers promotions, refusals, and gate
latency alongside training and serving metrics.

Counters: ``events`` (governance-log appends), ``verifications`` /
``verifications_refused`` (gate walks), ``promotions``,
``serving_refusals`` (fail-closed engine starts), ``attributions`` /
``attributions_refused``. Stage: ``gate_verify`` (full lineage-walk
latency).
"""

from __future__ import annotations

from typing import List

from repro.observability.adapter import SubsystemTelemetry

__all__ = ["GovernanceTelemetry"]


class GovernanceTelemetry(SubsystemTelemetry):
    """Counters + stages for the accountability control plane."""

    subsystem = "governance"

    @property
    def refusal_rate(self) -> float:
        """Refused verifications / total verification attempts."""
        refused = self.counter("verifications_refused")
        attempts = self.counter("verifications") + refused
        return refused / attempts if attempts else 0.0

    def render(self) -> str:
        snapshot = self.snapshot()
        counters = snapshot["counters"]
        lines: List[str] = ["governance telemetry:"]
        for name in sorted(counters):
            lines.append(f"  {name:<24} {counters[name]}")
        lines.append(f"  {'refusal_rate':<24} {self.refusal_rate:.3f}")
        lines.extend(self._render_stage_lines(snapshot["stages"]))
        return "\n".join(lines)
