"""The accountability control plane.

Ties the ingest, training, and serving planes together with verifiable
lineage: deterministic semantic run identity
(:mod:`~repro.governance.identity`), a durable hash-chained governance
event log (:mod:`~repro.governance.log`), a fail-closed promotion gate
(:mod:`~repro.governance.gate`), and contributor attribution reports
(:mod:`~repro.governance.attribution`).
"""

from repro.governance.attribution import AttributionReport, Attributor
from repro.governance.gate import PromotionGate, PromotionRecord
from repro.governance.identity import (code_version, compute_run_key,
                                       submissions_digest)
from repro.governance.log import GovernanceLog
from repro.governance.telemetry import GovernanceTelemetry

__all__ = [
    "AttributionReport",
    "Attributor",
    "GovernanceLog",
    "GovernanceTelemetry",
    "PromotionGate",
    "PromotionRecord",
    "code_version",
    "compute_run_key",
    "submissions_digest",
]
