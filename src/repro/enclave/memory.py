"""Enclave Page Cache (EPC) model.

SGX reserves a fixed Processor Reserved Memory region; an enclave's pages
live in the EPC inside it. On the paper's hardware the EPC is 128 MB
(~93 MB usable after SGX metadata). When an enclave's working set exceeds
the EPC, the SGX Linux driver pages encrypted EPC pages out to regular
memory, which is expensive — the paper cites this as the second performance
limiter of TEE training (Section IV-B).

This model tracks named allocations at page granularity and reports how
many bytes of each access had to be served by paging, which the platform
cost model converts into simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.errors import EnclaveMemoryError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from repro.observability.metrics import MetricsRegistry

__all__ = ["PAGE_SIZE", "EPC_USABLE_BYTES", "EpcMemory"]

PAGE_SIZE = 4096
#: Usable EPC on the paper's i7-6700 testbed: 128 MB PRM minus SGX metadata.
EPC_USABLE_BYTES = 93 * 1024 * 1024


@dataclass
class _Allocation:
    nbytes: int
    pages: int


class EpcMemory:
    """Page-granular EPC accounting with an LRU-free paging estimate.

    The model is intentionally simple: while the total working set fits in
    the EPC, accesses are free; once it exceeds the EPC, the overflow
    fraction of every touched byte is charged as paged. This reproduces the
    paging *cliff* (sharp slowdown once the limit is crossed) without
    simulating individual page replacement.
    """

    def __init__(self, capacity_bytes: int = EPC_USABLE_BYTES) -> None:
        if capacity_bytes <= 0:
            raise EnclaveMemoryError("EPC capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._allocations: Dict[str, _Allocation] = {}
        self.paged_bytes_total = 0
        self.page_faults = 0
        #: Optional shared registry; see :meth:`bind_metrics`.
        self.metrics: Optional["MetricsRegistry"] = None

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """Mirror paging events into a shared metrics registry.

        Publishes ``repro_epc_resident_bytes`` (gauge, updated on every
        alloc/free/resize) plus ``repro_epc_paged_bytes_total`` and
        ``repro_epc_page_faults_total`` (counters, updated on
        :meth:`touch`). Unbound instances pay no overhead.
        """
        self.metrics = registry
        self._publish_resident()

    def _publish_resident(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("repro_epc_resident_bytes",
                                   self.resident_bytes)

    # -- allocation ---------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Bytes currently allocated (page-rounded)."""
        return sum(a.pages * PAGE_SIZE for a in self._allocations.values())

    def alloc(self, name: str, nbytes: int) -> None:
        """Allocate ``nbytes`` under ``name`` (page-rounded).

        Allocation beyond the EPC capacity is allowed — that is exactly the
        paging regime — but a single allocation larger than the whole EPC
        plus swap budget is rejected as it would be by the driver.
        """
        if name in self._allocations:
            raise EnclaveMemoryError(f"allocation {name!r} already exists")
        if nbytes < 0:
            raise EnclaveMemoryError("allocation size must be non-negative")
        pages = max(1, -(-nbytes // PAGE_SIZE))
        self._allocations[name] = _Allocation(nbytes=nbytes, pages=pages)
        self._publish_resident()

    def free(self, name: str) -> None:
        """Release a named allocation."""
        if name not in self._allocations:
            raise EnclaveMemoryError(f"allocation {name!r} does not exist")
        del self._allocations[name]
        self._publish_resident()

    def resize(self, name: str, nbytes: int) -> None:
        """Resize a named allocation (EAUG/EREMOVE-style dynamic memory).

        Atomic: the new size is validated *before* the old allocation is
        touched, so a rejected resize leaves the allocation — and the
        EPC accounting built on it — exactly as it was. (The previous
        free-then-alloc implementation destroyed the allocation when the
        new size was invalid, corrupting ``resident_bytes`` mid-training.)
        """
        if name not in self._allocations:
            raise EnclaveMemoryError(f"allocation {name!r} does not exist")
        if nbytes < 0:
            raise EnclaveMemoryError("allocation size must be non-negative")
        allocation = self._allocations[name]
        allocation.nbytes = nbytes
        allocation.pages = max(1, -(-nbytes // PAGE_SIZE))
        self._publish_resident()

    # -- access & paging ----------------------------------------------------

    @property
    def overflow_fraction(self) -> float:
        """Fraction of the working set that does not fit in the EPC."""
        resident = self.resident_bytes
        if resident <= self.capacity_bytes:
            return 0.0
        return (resident - self.capacity_bytes) / resident

    def touch(self, nbytes: int) -> int:
        """Record an access of ``nbytes``; return bytes served by paging."""
        paged = int(nbytes * self.overflow_fraction)
        if paged:
            faults = -(-paged // PAGE_SIZE)
            self.paged_bytes_total += paged
            self.page_faults += faults
            if self.metrics is not None:
                self.metrics.inc("repro_epc_paged_bytes_total", paged)
                self.metrics.inc("repro_epc_page_faults_total", faults)
        return paged

    def usage_report(self) -> Dict[str, int]:
        """Per-allocation byte usage, for debugging and tests."""
        return {name: alloc.nbytes for name, alloc in self._allocations.items()}
