"""Software model of Intel SGX.

The paper runs training inside real SGX enclaves; this package reproduces
the *observable behaviour* of SGX that the paper's design and evaluation
depend on:

* confidentiality/integrity boundary — code and data added to an enclave
  are only reachable through registered ECALLs
  (:class:`repro.enclave.enclave.Enclave`);
* measurement and remote attestation — MRENCLAVE is a hash chain over the
  added pages, quotes are signed with a platform key and verified by an
  IAS-like service (:mod:`repro.enclave.attestation`);
* the Enclave Page Cache limit and paging
  (:class:`repro.enclave.memory.EpcMemory`);
* the performance cost of enclave execution — a calibrated simulated-time
  model covering the no-ML-acceleration slowdown, enclave transition costs,
  and the EPC paging cliff (:class:`repro.enclave.platform.CostModel`);
* sealing keys bound to the enclave identity (:mod:`repro.enclave.sealing`).
"""

from repro.enclave.attestation import AttestationService, Quote
from repro.enclave.enclave import Enclave, EnclaveState
from repro.enclave.memory import EpcMemory, PAGE_SIZE
from repro.enclave.platform import CostModel, SgxPlatform, SimClock, TrustedRng
from repro.enclave.sealing import SealedBlob, seal, unseal

__all__ = [
    "AttestationService",
    "Quote",
    "Enclave",
    "EnclaveState",
    "EpcMemory",
    "PAGE_SIZE",
    "CostModel",
    "SgxPlatform",
    "SimClock",
    "TrustedRng",
    "SealedBlob",
    "seal",
    "unseal",
]
