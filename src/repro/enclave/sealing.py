"""Sealed storage bound to enclave identity.

SGX sealing derives a key from the platform's sealing secret and the
enclave's identity (MRENCLAVE policy), so a blob sealed by an enclave can
only be unsealed by the *same* enclave code on the *same* platform. CalTrain
uses sealing for persisting the linkage database between the fingerprinting
and query stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.aead import AesGcm
from repro.crypto.hkdf import hkdf
from repro.enclave.enclave import Enclave
from repro.errors import AuthenticationError, SealingError

__all__ = ["SealedBlob", "seal", "unseal"]


@dataclass(frozen=True)
class SealedBlob:
    """An opaque sealed payload plus the nonce it was sealed under."""

    nonce: bytes
    ciphertext: bytes


def _seal_key(enclave: Enclave) -> bytes:
    return hkdf(
        ikm=enclave.platform.platform_key,
        salt=enclave.mrenclave,
        info=b"sgx-seal-mrenclave",
        length=16,
    )


def seal(enclave: Enclave, plaintext: bytes,
         nonce: Optional[bytes] = None) -> SealedBlob:
    """Seal ``plaintext`` to this enclave's identity.

    ``nonce`` lets callers supply a deterministic, content-derived nonce
    (e.g. the checkpoint runtime, which must not consume the trusted
    training RNG — drawing from it would perturb the minibatch/augmentation
    stream and break bitwise resume parity). Callers providing a nonce are
    responsible for its uniqueness per plaintext.
    """
    if nonce is None:
        nonce = enclave.trusted_rng.random_bytes(12)
    elif len(nonce) != 12:
        raise SealingError("seal nonce must be 12 bytes")
    cipher = AesGcm(_seal_key(enclave))
    return SealedBlob(nonce=nonce, ciphertext=cipher.seal(nonce, plaintext))


def unseal(enclave: Enclave, blob: SealedBlob) -> bytes:
    """Unseal a blob; fails if identity or platform differ, or if tampered."""
    cipher = AesGcm(_seal_key(enclave))
    try:
        return cipher.open(blob.nonce, blob.ciphertext)
    except AuthenticationError as exc:
        raise SealingError(
            "unseal failed: wrong enclave identity/platform or tampered blob"
        ) from exc
