"""Remote attestation: quotes and an IAS-like verification service.

A participant trusts an enclave only after (1) the quote's signature checks
out against a platform registered with the attestation service and (2) the
quoted MRENCLAVE equals the measurement of the code/data the participants
agreed on (paper, Section III "Consensus and Cooperation"). The quote's
``report_data`` field carries the hash binding to the TLS handshake so the
secure channel provably terminates inside the attested enclave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.hashing import constant_time_equal, hmac_sha256
from repro.errors import AttestationError

__all__ = ["Quote", "AttestationService"]


@dataclass(frozen=True)
class Quote:
    """An attestation quote: (platform, MRENCLAVE, report data, signature)."""

    platform_id: str
    mrenclave: bytes
    report_data: bytes
    signature: bytes


class AttestationService:
    """Models the Intel Attestation Service.

    Platforms register their (simulated fused) attestation keys; verifiers
    submit quotes and, optionally, the MRENCLAVE they expect.
    """

    def __init__(self) -> None:
        self._platform_keys: Dict[str, bytes] = {}

    def register_platform(self, platform_id: str, platform_key: bytes) -> None:
        """Enroll a platform (models Intel provisioning the fused key)."""
        self._platform_keys[platform_id] = platform_key

    def verify(self, quote: Quote, expected_mrenclave: Optional[bytes] = None) -> None:
        """Verify a quote; raise :class:`AttestationError` on any failure."""
        key = self._platform_keys.get(quote.platform_id)
        if key is None:
            raise AttestationError(
                f"platform {quote.platform_id!r} is not registered"
            )
        body = quote.mrenclave + quote.report_data
        expected_sig = hmac_sha256(key, b"sgx-quote", body)
        if not constant_time_equal(quote.signature, expected_sig):
            raise AttestationError("quote signature verification failed")
        if expected_mrenclave is not None and not constant_time_equal(
            quote.mrenclave, expected_mrenclave
        ):
            raise AttestationError(
                "MRENCLAVE mismatch: enclave does not run the agreed code"
            )
