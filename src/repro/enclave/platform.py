"""SGX platform model: simulated clock, cost model, trusted RNG.

Running Python inside or outside a *simulated* enclave takes the same wall
time, so performance effects are tracked on a simulated clock instead. The
cost model is calibrated against the paper's testbed behaviour (Fig. 6):

* in-enclave arithmetic is slower because enclave code cannot use the
  ``-ffast-math`` floating-point acceleration or other ML-accelerated
  features (``enclave_flop_slowdown``);
* every enclave boundary crossing (ECALL/OCALL, i.e. shipping an IR tensor
  out or a delta tensor in) pays a fixed transition cost plus a per-byte
  copy cost;
* accesses beyond the EPC capacity pay a paging penalty per byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.enclave.memory import EPC_USABLE_BYTES, EpcMemory
from repro.errors import ConfigurationError
from repro.utils.rng import RngStream

__all__ = ["SimClock", "CostModel", "TrustedRng", "SgxPlatform"]


class SimClock:
    """A monotonically increasing simulated clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError("cannot advance the clock backwards")
        self._now += seconds


@dataclass(frozen=True)
class CostModel:
    """Calibrated simulated-time costs of the SGX platform.

    Attributes:
        base_flops_per_second: Untrusted-side throughput of the training
            stack (Darknet with ``-Ofast`` on the paper's i7-6700).
        enclave_flop_slowdown: Multiplier on in-enclave arithmetic time.
            The paper attributes the in-enclave slowdown primarily to
            ``-ffast-math`` being ineffective for enclaved code.
        transition_seconds: Fixed cost of one ECALL/OCALL transition.
        boundary_bytes_per_second: Throughput of copying tensors across the
            enclave boundary.
        paging_bytes_per_second: Throughput of the encrypted EPC paging
            path (much slower than plain memcpy).
    """

    base_flops_per_second: float = 2.0e10
    enclave_flop_slowdown: float = 1.23
    transition_seconds: float = 4.0e-6
    boundary_bytes_per_second: float = 2.0e9
    paging_bytes_per_second: float = 1.0e8

    def compute_seconds(self, flops: float, in_enclave: bool) -> float:
        """Simulated time to execute ``flops`` floating-point operations."""
        seconds = flops / self.base_flops_per_second
        if in_enclave:
            seconds *= self.enclave_flop_slowdown
        return seconds

    def transition_cost(self, payload_bytes: int) -> float:
        """Simulated time of one boundary crossing carrying a payload."""
        return self.transition_seconds + payload_bytes / self.boundary_bytes_per_second

    def paging_cost(self, paged_bytes: int) -> float:
        """Simulated time to service ``paged_bytes`` of EPC paging."""
        return paged_bytes / self.paging_bytes_per_second


class TrustedRng:
    """The enclave's trusted entropy source (models RDRAND/RDSEED).

    The paper uses Intel's on-chip hardware RNG for the randomness that
    in-enclave data augmentation needs (Section IV-A). Here it is a seeded
    PCG64 stream so experiments replay deterministically.
    """

    def __init__(self, stream: RngStream) -> None:
        self._stream = stream

    @property
    def stream(self) -> RngStream:
        return self._stream

    @property
    def generator(self) -> np.random.Generator:
        return self._stream.generator

    def random_bytes(self, n: int) -> bytes:
        return self._stream.randbytes(n)


@dataclass
class SgxPlatform:
    """One SGX-enabled machine: EPC, clock, cost model, platform identity.

    The platform key models the fused attestation key whose public part
    Intel's attestation service knows; quotes produced by enclaves on this
    platform are MACed with it and verified by
    :class:`repro.enclave.attestation.AttestationService`.
    """

    rng: RngStream
    platform_id: str = "sgx-platform-0"
    epc_bytes: int = EPC_USABLE_BYTES
    cost_model: CostModel = field(default_factory=CostModel)
    clock: SimClock = field(default_factory=SimClock)
    platform_key: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if not self.platform_key:
            self.platform_key = self.rng.child("platform-key").randbytes(32)

    def new_epc(self) -> EpcMemory:
        """Create an EPC accounting region for a new enclave."""
        return EpcMemory(capacity_bytes=self.epc_bytes)

    def create_enclave(self, name: str) -> "Enclave":
        """Instantiate an enclave on this platform (ECREATE)."""
        from repro.enclave.enclave import Enclave

        return Enclave(name=name, platform=self)
