"""Enclave lifecycle, measurement, and the ECALL boundary.

Mirrors the SGX programming model:

* ``ECREATE`` — :meth:`SgxPlatform.create_enclave` constructs an enclave in
  the ``CREATED`` state;
* ``EADD``/``EEXTEND`` — :meth:`Enclave.add_code` / :meth:`Enclave.add_data`
  load content into the EPC and extend the MRENCLAVE hash chain;
* ``EINIT`` — :meth:`Enclave.init` freezes the measurement; only then can
  trusted functions run;
* ECALL — :meth:`Enclave.ecall` invokes a registered trusted function and
  charges the transition cost to the platform's simulated clock;
* ``EREPORT``/quoting — :meth:`Enclave.quote` produces an attestation quote
  over (MRENCLAVE, report_data) signed with the platform key.

Confidentiality is enforced at the API level: the in-enclave object store
is private and reachable only through registered ECALLs, which is the same
guarantee the hardware gives to code outside the EPC.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Optional

from repro.crypto.hashing import hmac_sha256, sha256
from repro.enclave.attestation import Quote
from repro.enclave.memory import EpcMemory
from repro.enclave.platform import SgxPlatform, TrustedRng
from repro.errors import EnclaveLifecycleError
from repro.utils.serialization import stable_hash

__all__ = ["EnclaveState", "Enclave"]


class EnclaveState(enum.Enum):
    CREATED = "created"
    INITIALIZED = "initialized"
    DESTROYED = "destroyed"


class Enclave:
    """One enclave instance on an :class:`SgxPlatform`."""

    def __init__(self, name: str, platform: SgxPlatform) -> None:
        self.name = name
        self.platform = platform
        self.state = EnclaveState.CREATED
        self.epc: EpcMemory = platform.new_epc()
        self.trusted_rng = TrustedRng(platform.rng.child(f"enclave/{name}/rdrand"))
        self._measurement = sha256(b"ECREATE", name.encode("utf-8"))
        self._ecalls: Dict[str, Callable[..., Any]] = {}
        self._storage: Dict[str, Any] = {}
        self.ecall_count = 0
        self.ocall_count = 0

    # -- build phase (EADD / EEXTEND) ---------------------------------------

    def _require_state(self, state: EnclaveState, action: str) -> None:
        if self.state is not state:
            raise EnclaveLifecycleError(
                f"cannot {action} while enclave {self.name!r} is {self.state.value}"
            )

    def _extend(self, tag: bytes, content_hash: bytes) -> None:
        self._measurement = sha256(self._measurement, tag, content_hash)

    def add_code(self, name: str, fn: Callable[..., Any],
                 source: Optional[str] = None) -> None:
        """Load a trusted function; its identity extends the measurement.

        ``source`` lets tests/participants pin the exact code text that was
        measured; by default the function's qualified name is measured,
        which is sufficient for a simulation.
        """
        self._require_state(EnclaveState.CREATED, "add code")
        identity = (source or f"{fn.__module__}.{fn.__qualname__}").encode("utf-8")
        self._extend(b"EADD-CODE:" + name.encode("utf-8"), sha256(identity))
        self.epc.alloc(f"code/{name}", len(identity))
        self._ecalls[name] = fn

    def add_data(self, name: str, value: Any, nbytes: Optional[int] = None) -> None:
        """Load initial data (architecture, hyperparameters) into the EPC."""
        self._require_state(EnclaveState.CREATED, "add data")
        content_hash = stable_hash(value if value is not None else b"")
        self._extend(b"EADD-DATA:" + name.encode("utf-8"), content_hash)
        self.epc.alloc(f"data/{name}", nbytes if nbytes is not None else 4096)
        self._storage[name] = value

    def init(self) -> None:
        """EINIT: freeze the measurement and enable ECALLs."""
        self._require_state(EnclaveState.CREATED, "init")
        self._extend(b"EINIT", b"")
        self.state = EnclaveState.INITIALIZED

    def destroy(self) -> None:
        """Tear the enclave down; secrets become unreachable."""
        self._storage.clear()
        self._ecalls.clear()
        self.state = EnclaveState.DESTROYED

    # -- measured identity ----------------------------------------------------

    @property
    def mrenclave(self) -> bytes:
        """The enclave measurement (hash chain over everything added)."""
        return self._measurement

    # -- runtime phase ----------------------------------------------------------

    def ecall(self, name: str, *args: Any, payload_bytes: int = 0, **kwargs: Any) -> Any:
        """Invoke a registered trusted function across the boundary.

        ``payload_bytes`` sizes the argument copy for the cost model; the
        fixed transition cost is always charged.
        """
        self._require_state(EnclaveState.INITIALIZED, "ecall")
        if name not in self._ecalls:
            raise EnclaveLifecycleError(f"no ECALL named {name!r} in {self.name!r}")
        self.ecall_count += 1
        self.platform.clock.advance(
            self.platform.cost_model.transition_cost(payload_bytes)
        )
        return self._ecalls[name](self, *args, **kwargs)

    def ocall_cost(self, payload_bytes: int = 0) -> None:
        """Charge one OCALL (enclave -> untrusted) transition."""
        self.ocall_count += 1
        self.platform.clock.advance(
            self.platform.cost_model.transition_cost(payload_bytes)
        )

    # -- in-enclave object store (reachable only from trusted code) -----------

    def trusted_put(self, key: str, value: Any, nbytes: Optional[int] = None) -> None:
        """Store a secret inside the enclave (trusted-code use only)."""
        alloc_name = f"data/{key}"
        if key in self._storage:
            self.epc.resize(alloc_name, nbytes if nbytes is not None else 4096)
        else:
            self.epc.alloc(alloc_name, nbytes if nbytes is not None else 4096)
        self._storage[key] = value

    def trusted_get(self, key: str) -> Any:
        """Read a secret inside the enclave (trusted-code use only)."""
        return self._storage[key]

    def trusted_has(self, key: str) -> bool:
        return key in self._storage

    def trusted_delete(self, key: str) -> None:
        if key in self._storage:
            del self._storage[key]
            self.epc.free(f"data/{key}")

    # -- attestation -----------------------------------------------------------

    def quote(self, report_data: bytes = b"") -> Quote:
        """Produce an attestation quote for this enclave (EREPORT + QE)."""
        self._require_state(EnclaveState.INITIALIZED, "quote")
        body = self._measurement + report_data
        signature = hmac_sha256(
            self.platform.platform_key, b"sgx-quote", body
        )
        return Quote(
            platform_id=self.platform.platform_id,
            mrenclave=self._measurement,
            report_data=report_data,
            signature=signature,
        )
