"""Legacy telemetry API re-implemented over the shared registry.

``ServingTelemetry``, ``IngestTelemetry``, and ``RunTelemetry`` each
used to carry a private copy of the same counters + ``StageStats``
implementation. :class:`SubsystemTelemetry` is the one shared base: the
legacy surface (``count``/``observe``/``counter``/``stage``/
``snapshot``/``render``) is preserved verbatim, but every write lands in
a :class:`~repro.observability.metrics.MetricsRegistry` under the
``repro_<subsystem>_*`` naming scheme — so one registry can aggregate
serving, ingest, and training metrics and export them together.

:class:`StageStats` is now an *immutable point-in-time snapshot* (the
old mutable live object could be observed mid-update by a concurrent
reader and yield torn count/total pairs); it keeps the legacy
``count``/``total``/``maximum``/``mean``/``as_dict`` surface and gains
bucket-derived p50/p95/p99.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.observability.metrics import Histogram, MetricsRegistry

__all__ = ["StageStats", "SubsystemTelemetry"]


class StageStats:
    """Immutable latency statistics for one pipeline stage.

    A frozen copy taken from the backing histogram under its lock; safe
    to read from any thread, impossible to tear.
    """

    __slots__ = ("count", "total", "maximum", "p50", "p95", "p99")

    def __init__(self, count: int, total: float, maximum: float,
                 p50: float = 0.0, p95: float = 0.0, p99: float = 0.0) -> None:
        object.__setattr__(self, "count", count)
        object.__setattr__(self, "total", total)
        object.__setattr__(self, "maximum", maximum)
        object.__setattr__(self, "p50", p50)
        object.__setattr__(self, "p95", p95)
        object.__setattr__(self, "p99", p99)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("StageStats snapshots are immutable")

    @classmethod
    def from_histogram(cls, histogram: Histogram) -> "StageStats":
        summary = histogram.as_dict()
        return cls(count=int(summary["count"]), total=float(summary["sum"]),
                   maximum=float(summary["max"]), p50=float(summary["p50"]),
                   p95=float(summary["p95"]), p99=float(summary["p99"]))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean,
                "max": self.maximum, "total": self.total,
                "p50": self.p50, "p95": self.p95, "p99": self.p99}


def _sanitize(name: str) -> str:
    return name.replace("-", "_").replace("/", "_").replace(".", "_")


class SubsystemTelemetry:
    """Shared counters + per-stage latency over a metrics registry.

    Subclasses set :attr:`subsystem` (the metric-name namespace) and add
    their derived rates and ``render``. Passing an existing ``registry``
    shares one export surface across subsystems; by default each
    instance gets a private registry, matching the legacy behaviour of
    independent telemetry objects.
    """

    subsystem = "repro"

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._names_lock = threading.Lock()
        self._counter_names: Dict[str, str] = {}
        self._stage_names: Dict[str, str] = {}
        # Instrument caches: the write hot path must not take the
        # registry-wide lock per call — with several subsystems sharing
        # one registry (e.g. N serving replicas exporting together) that
        # lock becomes a cross-thread contention point. Plain dicts are
        # safe here: reads/writes are atomic under the GIL and the worst
        # race re-fetches an instrument from the (locking) registry.
        self._counter_cache: Dict[str, object] = {}
        self._stage_cache: Dict[str, object] = {}

    # -- name mapping (legacy short name <-> registry metric name) ---------------

    def counter_metric_name(self, name: str) -> str:
        return f"repro_{self.subsystem}_{_sanitize(name)}_total"

    def stage_metric_name(self, stage: str) -> str:
        # Latency stages carry the _seconds unit; dimensionless stages
        # (queue occupancy observed in entries, not time) stay unitless.
        unit = "" if stage.endswith("occupancy") else "_seconds"
        return f"repro_{self.subsystem}_stage_{_sanitize(stage)}{unit}"

    # -- the legacy write/read surface -------------------------------------------

    def _counter_instrument(self, name: str):
        instrument = self._counter_cache.get(name)
        if instrument is None:
            metric = self.counter_metric_name(name)
            with self._names_lock:
                self._counter_names.setdefault(name, metric)
            instrument = self.registry.counter(metric)
            self._counter_cache[name] = instrument
        return instrument

    def _stage_instrument(self, stage: str):
        instrument = self._stage_cache.get(stage)
        if instrument is None:
            metric = self.stage_metric_name(stage)
            with self._names_lock:
                self._stage_names.setdefault(stage, metric)
            instrument = self.registry.histogram(metric)
            self._stage_cache[stage] = instrument
        return instrument

    def count(self, name: str, n: int = 1) -> None:
        self._counter_instrument(name).inc(n)

    def observe(self, stage: str, value: float) -> None:
        self._stage_instrument(stage).observe(value)

    def observe_many(self, stage: str, values) -> None:
        self._stage_instrument(stage).observe_many(values)

    def counter(self, name: str) -> int:
        with self._names_lock:
            metric = self._counter_names.get(name)
        if metric is None:
            return 0
        return self.registry.counter(metric).value

    def stage(self, name: str) -> Optional[StageStats]:
        """An immutable snapshot of one stage's statistics, or ``None``."""
        with self._names_lock:
            metric = self._stage_names.get(name)
        if metric is None:
            return None
        return StageStats.from_histogram(self.registry.histogram(metric))

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Legacy-shaped snapshot: short-named counters and stage dicts."""
        with self._names_lock:
            counter_names = dict(self._counter_names)
            stage_names = dict(self._stage_names)
        counters = {
            short: self.registry.counter(metric).value
            for short, metric in counter_names.items()
        }
        stages = {
            short: StageStats.from_histogram(
                self.registry.histogram(metric)
            ).as_dict()
            for short, metric in stage_names.items()
        }
        return {"counters": counters, "stages": stages}

    def _render_stage_lines(self, stages: Dict[str, Dict[str, float]],
                            width: int = 16) -> list:
        lines = []
        for name in sorted(stages):
            stage = stages[name]
            if name.endswith("occupancy"):
                lines.append(
                    f"  stage {name:<{width}} n={stage['count']:<7} "
                    f"mean={stage['mean']:8.1f}   max={stage['max']:8.1f}"
                )
            else:
                lines.append(
                    f"  stage {name:<{width}} n={stage['count']:<7} "
                    f"mean={stage['mean'] * 1e3:8.3f}ms "
                    f"p95={stage['p95'] * 1e3:8.3f}ms "
                    f"max={stage['max'] * 1e3:8.3f}ms"
                )
        return lines
