"""Unified observability: metrics, tracing, and telemetry adapters.

The shared substrate under every subsystem's telemetry:

* :mod:`repro.observability.metrics` — thread-safe
  :class:`MetricsRegistry` of counters, gauges, and log-bucket
  histograms (p50/p95/p99), with Prometheus text exposition and JSON
  snapshots;
* :mod:`repro.observability.tracing` — :class:`Tracer` producing nested
  spans with explicit enclave-boundary kinds (``enclave`` /
  ``untrusted`` / ``boundary-crossing``) on an injectable clock;
* :mod:`repro.observability.adapter` — the legacy-compatible
  :class:`SubsystemTelemetry` base that ``ServingTelemetry``,
  ``IngestTelemetry``, and ``RunTelemetry`` are thin subclasses of.

Metric naming scheme: ``repro_<subsystem>_<what>[_unit]`` — counters end
``_total``, latency histograms ``_seconds``, stage histograms are
``repro_<subsystem>_stage_<stage>_seconds``.
"""

from repro.observability.adapter import StageStats, SubsystemTelemetry
from repro.observability.metrics import (Counter, Gauge, Histogram,
                                         MetricsRegistry,
                                         default_latency_buckets,
                                         parse_prometheus)
from repro.observability.tracing import (SPAN_KINDS, ManualClock, Span,
                                         Tracer)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_buckets",
    "parse_prometheus",
    "SPAN_KINDS",
    "ManualClock",
    "Span",
    "Tracer",
    "StageStats",
    "SubsystemTelemetry",
]
