"""The shared metrics substrate (counters, gauges, histograms).

Every subsystem used to carry its own copy-pasted telemetry class with
mean/max-only latency tracking. :class:`MetricsRegistry` replaces those
with one thread-safe registry of named instruments:

* **counters** — monotonically increasing totals (queries served, bytes
  paged, faults observed);
* **gauges** — point-in-time values (EPC resident bytes, queue depth);
* **histograms** — latency/size distributions over *fixed log-spaced
  buckets*, so p50/p95/p99 are available without storing samples. Exact
  count/sum/min/max ride along, so means stay exact — only the
  percentiles are bucket-quantized.

Two export surfaces: :meth:`MetricsRegistry.render_prometheus` produces
the Prometheus text exposition format (``name{le="..."}`` bucket series
for histograms) and :meth:`MetricsRegistry.snapshot` a plain JSON-able
dict. :func:`parse_prometheus` round-trips the text format for smoke
tests and the CLI.

Metric naming scheme (enforced): ``repro_<subsystem>_<what>[_unit]``,
counters end in ``_total``, latency histograms in ``_seconds``. Names
must match ``[a-zA-Z_][a-zA-Z0-9_]*``.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "default_latency_buckets", "parse_prometheus"]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def default_latency_buckets() -> Tuple[float, ...]:
    """Fixed log-spaced bucket bounds: 4 per decade, 100 ns to 1000 s.

    The ratio between adjacent bounds is ``10**0.25`` (~1.78), so a
    bucket-interpolated percentile is always within one such factor of
    the exact sample percentile — tight enough to tell a 1 ms stage from
    a 2 ms one, which is the resolution the paper's overhead figures
    need.
    """
    return tuple(10.0 ** (exp / 4.0) for exp in range(-28, 13))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with exact count/sum/min/max.

    Bucket counts are cumulative-on-read (Prometheus ``le`` semantics);
    internally each slot counts observations landing in
    ``(bounds[i-1], bounds[i]]``, with a final overflow slot above the
    last bound.
    """

    __slots__ = ("name", "_lock", "_bounds", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        bounds = tuple(buckets) if buckets is not None else default_latency_buckets()
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be a sorted non-empty sequence"
            )
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def _slot(self, value: float) -> int:
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        value = float(value)
        slot = self._slot(value)
        with self._lock:
            self._counts[slot] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch under one lock acquisition (hot-path helper)."""
        if not values:
            return
        floats = [float(v) for v in values]
        slots = [self._slot(v) for v in floats]
        with self._lock:
            for slot in slots:
                self._counts[slot] += 1
            self._count += len(floats)
            self._sum += sum(floats)
            lo, hi = min(floats), max(floats)
            if lo < self._min:
                self._min = lo
            if hi > self._max:
                self._max = hi

    # -- derived views -------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated ``q``-th percentile (``0 < q <= 100``).

        The answer is linearly interpolated inside the bucket holding the
        ``q``-th sample, clamped to the exact observed min/max, so it is
        never off by more than one bucket width.
        """
        if not 0.0 < q <= 100.0:
            raise ConfigurationError(f"percentile q must be in (0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q / 100.0 * self._count
            cumulative = 0
            for slot, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= target:
                    if slot == 0:
                        lower = self._min
                    else:
                        lower = self._bounds[slot - 1]
                    if slot < len(self._bounds):
                        upper = self._bounds[slot]
                    else:
                        upper = self._max
                    fraction = (
                        (target - (cumulative - bucket_count)) / bucket_count
                    )
                    estimate = lower + (upper - lower) * fraction
                    return min(max(estimate, self._min), self._max)
            return self._max

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``(inf, count)``."""
        with self._lock:
            out: List[Tuple[float, int]] = []
            running = 0
            for bound, bucket_count in zip(self._bounds, self._counts):
                running += bucket_count
                out.append((bound, running))
            out.append((math.inf, self._count))
            return out

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Thread-safe name -> instrument registry shared across subsystems.

    Instruments are created on first use and re-registering a name with a
    different instrument type raises — one name, one meaning, for the
    lifetime of the registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_name(self, name: str) -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        taken = (name in self._counters, name in self._gauges,
                 name in self._histograms)
        if sum(taken) > 1:  # pragma: no cover — internal invariant
            raise ConfigurationError(f"metric {name!r} registered twice")

    def _conflict(self, name: str, kind: str) -> ConfigurationError:
        return ConfigurationError(
            f"metric {name!r} already registered as a different type "
            f"(wanted {kind})"
        )

    # -- instrument accessors ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_name(name)
                if name in self._gauges or name in self._histograms:
                    raise self._conflict(name, "counter")
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_name(name)
                if name in self._counters or name in self._histograms:
                    raise self._conflict(name, "gauge")
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_name(name)
                if name in self._counters or name in self._gauges:
                    raise self._conflict(name, "histogram")
                instrument = self._histograms[name] = Histogram(name, buckets)
            return instrument

    # -- convenience write paths ---------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def observe_many(self, name: str, values: Sequence[float]) -> None:
        self.histogram(name).observe_many(values)

    # -- export ----------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-able snapshot of every registered instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.as_dict()
                           for name, h in sorted(histograms.items())},
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition over every registered instrument."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        lines: List[str] = []
        for name, counter in counters:
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {counter.value}")
        for name, gauge in gauges:
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(gauge.value)}")
        for name, histogram in histograms:
            lines.append(f"# TYPE {name} histogram")
            for le, cumulative in histogram.cumulative_buckets():
                le_text = "+Inf" if math.isinf(le) else _format_value(le)
                lines.append(f'{name}_bucket{{le="{le_text}"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(histogram.sum)}")
            lines.append(f"{name}_count {histogram.count}")
            for q in (50, 95, 99):
                lines.append(
                    f'{name}{{quantile="0.{q}"}} '
                    f"{_format_value(histogram.percentile(q))}"
                )
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Parse a text exposition back into ``{metric: {type, samples}}``.

    ``samples`` maps a label string (``""`` for the bare sample) to the
    parsed float value. Used by the smoke tests and the CLI to prove the
    export is well-formed; raises ``ValueError`` on any malformed line.
    """
    metrics: Dict[str, Dict[str, object]] = {}
    declared: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                declared[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {raw!r}")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                base = name[: -len(suffix)]
                break
        entry = metrics.setdefault(
            base, {"type": declared.get(base, "untyped"), "samples": {}}
        )
        value_text = match.group("value")
        value = math.inf if value_text == "+Inf" else float(value_text)
        key = name[len(base):] or ""
        labels = match.group("labels") or ""
        entry["samples"][f"{key}{{{labels}}}" if labels else key or ""] = value
    return metrics
