"""Nested spans with explicit enclave-boundary attribution.

The paper's performance story (Figs. 6 and the Table I/II overhead
discussion) is about *where* a partitioned training step spends its
time: FrontNet FLOPs inside the enclave, BackNet FLOPs outside, and the
IR/delta copies crossing the boundary. A :class:`Tracer` records that
decomposition as a tree of :class:`Span` objects, each tagged with a
span kind:

* ``enclave`` — trusted execution inside the TEE;
* ``untrusted`` — execution outside the enclave;
* ``boundary-crossing`` — ECALL/OCALL transitions and IR/delta copies;
* ``internal`` — orchestration that belongs to neither side.

The clock is injectable: pass ``clock=lambda: platform.clock.now`` to
measure *simulated* seconds (deterministic, testable), or leave the
default ``time.perf_counter`` for wall time. Span entry/exit is
re-entrant per thread (a :class:`threading.local` stack), so worker
pools can trace concurrently; finished root spans accumulate on the
tracer for rendering/export.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = ["SPAN_KINDS", "ManualClock", "Span", "Tracer"]

SPAN_KINDS = ("internal", "enclave", "untrusted", "boundary-crossing")


class ManualClock:
    """A deterministic clock for tests: advances only when told to."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError("clock cannot run backwards")
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class Span:
    """One timed region; closed spans know their duration and children."""

    __slots__ = ("name", "kind", "start", "end", "children", "attributes")

    def __init__(self, name: str, kind: str,
                 start: float, attributes: Dict[str, Any]) -> None:
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.attributes = attributes

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration minus time attributed to child spans."""
        return self.duration - sum(child.duration for child in self.children)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._tracer._finish(self._span)


class Tracer:
    """Collects span trees; one instance per traced run.

    Spans nest by lexical scope::

        with tracer.span("train-batch"):
            with tracer.span("frontnet.forward", kind="enclave"):
                ...

    Nesting is tracked per thread, so concurrently traced worker threads
    produce independent root spans rather than interleaving.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: List[Span] = []

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, kind: str = "internal",
             **attributes: Any) -> _SpanContext:
        """Open a span; use as a context manager."""
        if kind not in SPAN_KINDS:
            raise ConfigurationError(
                f"unknown span kind {kind!r}; expected one of {SPAN_KINDS}"
            )
        span = Span(name, kind, self.clock(), attributes)
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self.clock()
        stack = self._stack()
        # Close any dangling descendants first (exception unwound past them).
        while stack and stack[-1] is not span:
            dangling = stack.pop()
            if dangling.end is None:
                dangling.end = span.end
        if stack and stack[-1] is span:
            stack.pop()
        if not stack:
            with self._lock:
                self.roots.append(span)

    # -- aggregation ---------------------------------------------------------

    def kind_totals(self) -> Dict[str, float]:
        """Self-time attributed to each span kind across all root trees.

        Self time (not duration) is summed, so a parent never double
        counts its children and the totals partition the traced time:
        ``sum(kind_totals().values()) == sum(root durations)``.
        """
        totals = {kind: 0.0 for kind in SPAN_KINDS}

        def visit(span: Span) -> None:
            totals[span.kind] += span.self_time
            for child in span.children:
                visit(child)

        with self._lock:
            for root in self.roots:
                visit(root)
        return totals

    def to_dict(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [root.to_dict() for root in self.roots]

    def render(self, time_unit: str = "s") -> str:
        """Human-readable span tree with per-kind attribution totals."""
        lines: List[str] = ["trace"]

        def visit(span: Span, depth: int) -> None:
            indent = "  " * (depth + 1)
            attrs = ""
            if span.attributes:
                attrs = "  " + " ".join(
                    f"{key}={value}" for key, value in sorted(span.attributes.items())
                )
            lines.append(
                f"{indent}{span.name:<{max(1, 30 - 2 * depth)}} "
                f"[{span.kind}] {span.duration:.6f}{time_unit}{attrs}"
            )
            for child in span.children:
                visit(child, depth + 1)

        with self._lock:
            roots = list(self.roots)
        for root in roots:
            visit(root, 0)
        totals = self.kind_totals()
        lines.append("  -- attribution (self time) --")
        for kind in SPAN_KINDS:
            if totals[kind] > 0.0:
                lines.append(f"  {kind:<20} {totals[kind]:.6f}{time_unit}")
        return "\n".join(lines)
