"""Key material helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.aead import NONCE_LEN
from repro.utils.rng import RngStream

__all__ = ["SymmetricKey", "random_key", "random_nonce"]


@dataclass
class SymmetricKey:
    """A named symmetric key with a monotonically increasing nonce counter.

    Deterministic nonces (a per-key counter) make nonce reuse impossible
    within one key's lifetime, which AEAD security requires.
    """

    key_id: str
    material: bytes
    _counter: int = field(default=0, repr=False)

    def next_nonce(self) -> bytes:
        """Return a fresh, never-repeating nonce for this key."""
        self._counter += 1
        return self._counter.to_bytes(NONCE_LEN, "big")

    def advance_past(self, nonce: bytes) -> None:
        """Never emit ``nonce`` or anything before it again.

        A contributor resuming an interrupted upload from a fresh process
        advances its key past the highest nonce the server journaled, so
        the resumed stream cannot reuse a counter value already spent on
        acknowledged records.
        """
        self._counter = max(self._counter, int.from_bytes(nonce, "big"))


def random_key(rng: RngStream, key_id: str = "key", length: int = 16) -> SymmetricKey:
    """Generate a fresh symmetric key from an RNG stream."""
    return SymmetricKey(key_id=key_id, material=rng.randbytes(length))


def random_nonce(rng: RngStream) -> bytes:
    """Generate a random AEAD nonce (for one-off messages)."""
    return rng.randbytes(NONCE_LEN)
