"""Cryptographic substrate.

Implements the primitives CalTrain's protocol layer needs:

* :mod:`repro.crypto.aead` — AES-128-GCM (from scratch) and a fast
  HMAC-SHA256/CTR AEAD for bulk tensor payloads, behind one interface.
* :mod:`repro.crypto.hkdf` — HKDF-SHA256 key derivation.
* :mod:`repro.crypto.dh` — finite-field Diffie-Hellman (RFC 3526 group 14).
* :mod:`repro.crypto.tls` — a TLS-1.3-like secure channel used for secret
  provisioning into training enclaves after remote attestation.
"""

from repro.crypto.aead import AesGcm, HmacCtrAead, new_aead
from repro.crypto.dh import DhKeyPair, DhParams, MODP_2048
from repro.crypto.hashing import hmac_sha256, sha256
from repro.crypto.hkdf import hkdf, hkdf_expand, hkdf_extract
from repro.crypto.keys import SymmetricKey, random_key, random_nonce
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.shamir import Share, reconstruct_secret, split_secret
from repro.crypto.tls import SecureChannel, TlsClient, TlsServer

__all__ = [
    "AesGcm",
    "HmacCtrAead",
    "new_aead",
    "DhKeyPair",
    "DhParams",
    "MODP_2048",
    "sha256",
    "hmac_sha256",
    "hkdf",
    "hkdf_extract",
    "hkdf_expand",
    "SymmetricKey",
    "MerkleTree",
    "MerkleProof",
    "Share",
    "split_secret",
    "reconstruct_secret",
    "random_key",
    "random_nonce",
    "SecureChannel",
    "TlsClient",
    "TlsServer",
]
