"""Hash and MAC helpers used across the crypto substrate."""

from __future__ import annotations

import hashlib
import hmac as _hmac

__all__ = ["sha256", "hmac_sha256", "constant_time_equal"]


def sha256(*parts: bytes) -> bytes:
    """SHA-256 over the concatenation of ``parts``."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part)
    return hasher.digest()


def hmac_sha256(key: bytes, *parts: bytes) -> bytes:
    """HMAC-SHA256 over the concatenation of ``parts``."""
    mac = _hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(part)
    return mac.digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe byte-string comparison."""
    return _hmac.compare_digest(a, b)
