"""Shamir secret sharing over GF(p).

The full Bonawitz secure-aggregation protocol survives client dropouts by
t-of-n secret-sharing each client's mask seed among its peers: if a client
drops after uploading, any t survivors reconstruct its pairwise seeds and
cancel its masks from the aggregate. This module provides the sharing
primitive; :mod:`repro.federation.secure_agg` builds the recovery flow.

Shares are points on a random degree-(t-1) polynomial with the secret as
the constant term; reconstruction is Lagrange interpolation at zero. The
field is the 521-bit Mersenne prime, comfortably above 256-bit secrets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import CryptoError
from repro.utils.rng import RngStream

__all__ = ["Share", "split_secret", "reconstruct_secret", "encode_share",
           "decode_share", "PRIME"]

#: 2^521 - 1 (Mersenne), a prime > any 64-byte secret.
PRIME = (1 << 521) - 1

#: Wire size of one encoded share: 4 bytes of ``x`` + 66 bytes of ``y``
#: (521-bit field elements fit in 66 bytes).
_X_BYTES = 4
_Y_BYTES = 66
SHARE_WIRE_BYTES = _X_BYTES + _Y_BYTES


@dataclass(frozen=True)
class Share:
    """One share: the evaluation point ``x`` and value ``y``."""

    x: int
    y: int


def encode_share(share: Share) -> bytes:
    """Fixed-width wire encoding of one share (for sealing in transit)."""
    try:
        return (share.x.to_bytes(_X_BYTES, "big")
                + share.y.to_bytes(_Y_BYTES, "big"))
    except OverflowError as exc:
        raise CryptoError("share does not fit the wire encoding") from exc


def decode_share(blob: bytes) -> Share:
    """Inverse of :func:`encode_share`; fails closed on malformed input."""
    if len(blob) != SHARE_WIRE_BYTES:
        raise CryptoError(
            f"encoded share is {len(blob)} bytes, expected {SHARE_WIRE_BYTES}"
        )
    return Share(
        x=int.from_bytes(blob[:_X_BYTES], "big"),
        y=int.from_bytes(blob[_X_BYTES:], "big"),
    )


def _eval_polynomial(coefficients: Sequence[int], x: int) -> int:
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % PRIME
    return result


def split_secret(secret: bytes, threshold: int, num_shares: int,
                 rng: RngStream) -> List[Share]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it (and fewer reveal nothing).
    """
    if not 1 <= threshold <= num_shares:
        raise CryptoError("need 1 <= threshold <= num_shares")
    secret_int = int.from_bytes(secret, "big")
    if secret_int >= PRIME:
        raise CryptoError("secret too large for the field")
    coefficients = [secret_int] + [
        int.from_bytes(rng.randbytes(64), "big") % PRIME
        for _ in range(threshold - 1)
    ]
    return [
        Share(x=x, y=_eval_polynomial(coefficients, x))
        for x in range(1, num_shares + 1)
    ]


def reconstruct_secret(shares: Sequence[Share], secret_length: int) -> bytes:
    """Lagrange-interpolate the secret from ``threshold`` or more shares."""
    if not shares:
        raise CryptoError("no shares given")
    xs = [share.x for share in shares]
    if len(set(xs)) != len(xs):
        raise CryptoError("duplicate share points")
    secret = 0
    for i, share_i in enumerate(shares):
        numerator = 1
        denominator = 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = (numerator * (-share_j.x)) % PRIME
            denominator = (denominator * (share_i.x - share_j.x)) % PRIME
        lagrange = numerator * pow(denominator, -1, PRIME) % PRIME
        secret = (secret + share_i.y * lagrange) % PRIME
    try:
        return secret.to_bytes(secret_length, "big")
    except OverflowError as exc:
        # Interpolating fewer than `threshold` shares yields a random field
        # element that (almost surely) does not fit the secret's length.
        raise CryptoError(
            "reconstructed value does not fit the secret length "
            "(insufficient or inconsistent shares)"
        ) from exc
