"""Authenticated encryption with associated data (AEAD).

Two interchangeable ciphers sit behind the :class:`Aead` interface:

* :class:`AesGcm` — AES-128 in Galois/Counter Mode, implemented from
  scratch (byte-oriented AES plus integer GHASH). This is the cipher the
  paper names for authenticating training-data sources (Section IV-A).
  It is bit-exact AES-GCM but, being pure Python, is intended for control
  messages: handshake records, provisioned keys, linkage records.

* :class:`HmacCtrAead` — an encrypt-then-MAC construction (SHA-256 based
  counter-mode keystream + HMAC-SHA256 tag) that vectorises well enough to
  protect multi-megabyte tensor payloads. It provides the same
  authenticate-then-decrypt semantics the training server relies on to
  reject forged or unregistered batches.

Both raise :class:`repro.errors.AuthenticationError` on any tag mismatch so
callers cannot accidentally use unauthenticated plaintext.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.crypto.hashing import constant_time_equal, hmac_sha256
from repro.errors import AuthenticationError, ConfigurationError

__all__ = ["Aead", "AesGcm", "HmacCtrAead", "new_aead", "TAG_LEN", "NONCE_LEN"]

TAG_LEN = 16
NONCE_LEN = 12

# ---------------------------------------------------------------------------
# AES-128 block cipher
# ---------------------------------------------------------------------------

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


# Precomputed GF(2^8) multiply-by-2 and -by-3 tables for MixColumns.
_MUL2 = [_xtime(i) for i in range(256)]
_MUL3 = [_xtime(i) ^ i for i in range(256)]


class _Aes128:
    """AES-128 block cipher (encryption direction only — GCM needs no
    inverse cipher)."""

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ConfigurationError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        # One flat 16-byte round key per round.
        return [
            [b for word in words[4 * r : 4 * r + 4] for b in word]
            for r in range(11)
        ]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        s = [b ^ k for b, k in zip(block, self._round_keys[0])]
        for rnd in range(1, 10):
            s = self._round(s, self._round_keys[rnd], mix=True)
        s = self._round(s, self._round_keys[10], mix=False)
        return bytes(s)

    @staticmethod
    def _round(state: List[int], round_key: List[int], mix: bool) -> List[int]:
        # SubBytes + ShiftRows fused: output column c pulls row r from
        # column (c + r) mod 4 of the input state (column-major layout).
        sb = _SBOX
        t = [0] * 16
        for c in range(4):
            for r in range(4):
                t[4 * c + r] = sb[state[4 * ((c + r) % 4) + r]]
        if mix:
            m2, m3 = _MUL2, _MUL3
            out = [0] * 16
            for c in range(4):
                a0, a1, a2, a3 = t[4 * c : 4 * c + 4]
                out[4 * c + 0] = m2[a0] ^ m3[a1] ^ a2 ^ a3
                out[4 * c + 1] = a0 ^ m2[a1] ^ m3[a2] ^ a3
                out[4 * c + 2] = a0 ^ a1 ^ m2[a2] ^ m3[a3]
                out[4 * c + 3] = m3[a0] ^ a1 ^ a2 ^ m2[a3]
            t = out
        return [b ^ k for b, k in zip(t, round_key)]


# ---------------------------------------------------------------------------
# GHASH (GF(2^128) with the GCM reduction polynomial)
# ---------------------------------------------------------------------------

_R = 0xE1000000000000000000000000000000


def _gf_mul(x: int, y: int) -> int:
    """Multiply two field elements in GCM's bit-reflected GF(2^128)."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _ghash(h: int, data: bytes) -> int:
    y = 0
    for i in range(0, len(data), 16):
        block = data[i : i + 16].ljust(16, b"\x00")
        y = _gf_mul(y ^ int.from_bytes(block, "big"), h)
    return y


def _pad16(data: bytes) -> bytes:
    rem = len(data) % 16
    return data if rem == 0 else data + b"\x00" * (16 - rem)


# ---------------------------------------------------------------------------
# AEAD interface
# ---------------------------------------------------------------------------


class Aead:
    """Interface: authenticated encryption with associated data."""

    name = "aead"

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ``ciphertext || tag``."""
        raise NotImplementedError

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`AuthenticationError` on failure."""
        raise NotImplementedError


class AesGcm(Aead):
    """AES-128-GCM, from scratch. Bit-exact against NIST test vectors."""

    name = "aes-128-gcm"

    def __init__(self, key: bytes) -> None:
        self._aes = _Aes128(key)
        self._h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")

    def _counter_block(self, nonce: bytes, counter: int) -> bytes:
        if len(nonce) == 12:
            return nonce + struct.pack(">I", counter)
        # GCM's non-96-bit-nonce path: J0 = GHASH(nonce).
        ghashed = _ghash(
            self._h, _pad16(nonce) + struct.pack(">QQ", 0, len(nonce) * 8)
        )
        j0 = (ghashed + counter - 1) & ((1 << 128) - 1)
        return j0.to_bytes(16, "big")

    def _ctr_crypt(self, nonce: bytes, data: bytes) -> bytes:
        out = bytearray()
        for i in range(0, len(data), 16):
            keystream = self._aes.encrypt_block(
                self._counter_block(nonce, 2 + i // 16)
            )
            chunk = data[i : i + 16]
            out.extend(a ^ b for a, b in zip(chunk, keystream))
        return bytes(out)

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        lengths = struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8)
        s = _ghash(self._h, _pad16(aad) + _pad16(ciphertext) + lengths)
        e_j0 = self._aes.encrypt_block(self._counter_block(nonce, 1))
        return (s ^ int.from_bytes(e_j0, "big")).to_bytes(16, "big")

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        ciphertext = self._ctr_crypt(nonce, plaintext)
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        if len(sealed) < TAG_LEN:
            raise AuthenticationError("sealed message shorter than the tag")
        ciphertext, tag = sealed[:-TAG_LEN], sealed[-TAG_LEN:]
        expected = self._tag(nonce, ciphertext, aad)
        if not constant_time_equal(tag, expected):
            raise AuthenticationError("AES-GCM tag mismatch")
        return self._ctr_crypt(nonce, ciphertext)


class HmacCtrAead(Aead):
    """Encrypt-then-MAC AEAD for bulk tensor payloads.

    Keystream blocks are ``SHA256(enc_key || nonce || counter)``; the tag is
    ``HMAC-SHA256(mac_key, nonce || len(aad) || aad || ciphertext)[:16]``.
    Encryption and MAC keys are domain-separated from the single input key.
    This trades AES fidelity for throughput while keeping identical
    authenticate-then-decrypt semantics — documented in DESIGN.md as the
    bulk-data substitution for hardware-accelerated AES-GCM.
    """

    name = "hmac-ctr"

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ConfigurationError("HmacCtrAead requires a key of >= 16 bytes")
        self._enc_key = hmac_sha256(key, b"enc")
        self._mac_key = hmac_sha256(key, b"mac")
        # Partially-hashed keystream prefix: SHA-256 state fed the 32-byte
        # enc_key. ``.copy()`` then costs one state clone instead of
        # re-hashing the key for every keystream block.
        self._ks_prefix = hashlib.sha256(self._enc_key)
        self._counters: List[bytes] = []

    def _counter_bytes(self, nblocks: int) -> List[bytes]:
        """The packed block counters ``0..nblocks-1``, cached across calls
        (bulk sealing reuses one list for every same-length record)."""
        while len(self._counters) < nblocks:
            self._counters.append(struct.pack("<Q", len(self._counters)))
        return self._counters[:nblocks]

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        # Equivalent to SHA256(enc_key || nonce || counter) per 32-byte
        # block, built from cloned partial-hash states.
        record_prefix = self._ks_prefix.copy()
        record_prefix.update(nonce)
        blocks = []
        for counter in self._counter_bytes((length + 31) // 32):
            h = record_prefix.copy()
            h.update(counter)
            blocks.append(h.digest())
        return b"".join(blocks)[:length]

    @staticmethod
    def _xor_bytes(data: bytes, keystream: bytes) -> bytes:
        a = np.frombuffer(data, dtype=np.uint8)
        b = np.frombuffer(keystream, dtype=np.uint8)
        return (a ^ b).tobytes()

    def _xor(self, nonce: bytes, data: bytes) -> bytes:
        return self._xor_bytes(data, self._keystream(nonce, len(data)))

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        return hmac_sha256(
            self._mac_key, nonce, struct.pack("<Q", len(aad)), aad, ciphertext
        )[:TAG_LEN]

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        ciphertext = self._xor(nonce, plaintext)
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def seal_many(
        self, items: Sequence[Tuple[bytes, bytes, bytes]]
    ) -> List[bytes]:
        """Seal a batch of ``(nonce, plaintext, aad)`` records.

        Byte-identical to calling :meth:`seal` per record, but the
        plaintext/keystream XOR runs once over the whole batch as a single
        vectorised operation and the per-block counter encodings are shared
        across records. Tags remain strictly per record.
        """
        if not items:
            return []
        lengths = [len(plaintext) for _, plaintext, _ in items]
        keystreams = [
            self._keystream(nonce, length)
            for (nonce, _, _), length in zip(items, lengths)
        ]
        big_ct = self._xor_bytes(
            b"".join(plaintext for _, plaintext, _ in items),
            b"".join(keystreams),
        )
        sealed, offset = [], 0
        for (nonce, _, aad), length in zip(items, lengths):
            ciphertext = big_ct[offset : offset + length]
            offset += length
            sealed.append(ciphertext + self._tag(nonce, ciphertext, aad))
        return sealed

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        if len(sealed) < TAG_LEN:
            raise AuthenticationError("sealed message shorter than the tag")
        ciphertext, tag = sealed[:-TAG_LEN], sealed[-TAG_LEN:]
        if not constant_time_equal(tag, self._tag(nonce, ciphertext, aad)):
            raise AuthenticationError("HMAC-CTR tag mismatch")
        return self._xor(nonce, ciphertext)


def new_aead(key: bytes, bulk: bool = True, cipher: Optional[str] = None) -> Aead:
    """AEAD factory.

    Args:
        key: Symmetric key material (16 bytes for AES-GCM, >=16 otherwise).
        bulk: When True (default), pick the fast bulk cipher.
        cipher: Explicit cipher name (``"aes-128-gcm"`` or ``"hmac-ctr"``),
            overriding ``bulk``.
    """
    if cipher is None:
        cipher = HmacCtrAead.name if bulk else AesGcm.name
    if cipher == AesGcm.name:
        return AesGcm(key)
    if cipher == HmacCtrAead.name:
        return HmacCtrAead(key)
    raise ConfigurationError(f"unknown AEAD cipher {cipher!r}")
