"""Merkle trees for verifiable commitments.

CalTrain's query stage serves a linkage database that model users must
trust. A Merkle commitment published at fingerprinting time (e.g. alongside
the released model, covered by the enclave's quote) lets any user verify
that a query answer's records really are the ones the enclave recorded —
without downloading the whole database.

Leaves are domain-separated from interior nodes (``0x00``/``0x01``
prefixes) to rule out second-preimage tree-splicing attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import constant_time_equal, sha256
from repro.errors import CryptoError

__all__ = ["MerkleTree", "MerkleProof"]


def _leaf_hash(data: bytes) -> bytes:
    return sha256(b"\x00", data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256(b"\x01", left, right)


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof.

    ``steps`` runs bottom-up; each step is ``(sibling_hash, sibling_is_left)``.
    Explicit direction flags (rather than deriving them from the index) keep
    verification correct across levels where an odd node was promoted
    without a sibling.
    """

    index: int
    steps: Tuple[Tuple[bytes, bool], ...]

    def verify(self, leaf_data: bytes, root: bytes) -> bool:
        """Check that ``leaf_data`` is committed under ``root``."""
        node = _leaf_hash(leaf_data)
        for sibling, sibling_is_left in self.steps:
            if sibling_is_left:
                node = _node_hash(sibling, node)
            else:
                node = _node_hash(node, sibling)
        return constant_time_equal(node, root)


class MerkleTree:
    """A static Merkle tree over a sequence of byte-string leaves.

    Odd nodes are promoted (not duplicated), so the tree never commits to
    phantom copies of the last leaf.
    """

    def __init__(self, leaves: Sequence[bytes]) -> None:
        if not leaves:
            raise CryptoError("a Merkle tree needs at least one leaf")
        self._levels: List[List[bytes]] = [[_leaf_hash(leaf) for leaf in leaves]]
        while len(self._levels[-1]) > 1:
            current = self._levels[-1]
            parent: List[bytes] = []
            for i in range(0, len(current) - 1, 2):
                parent.append(_node_hash(current[i], current[i + 1]))
            if len(current) % 2 == 1:
                parent.append(current[-1])  # promote the odd node
            self._levels.append(parent)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self._levels[0])

    def prove(self, index: int) -> MerkleProof:
        """Produce an inclusion proof for leaf ``index``."""
        if not 0 <= index < len(self):
            raise CryptoError(f"leaf index {index} out of range")
        steps: List[Tuple[bytes, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling_pos = position ^ 1
            if sibling_pos < len(level):
                steps.append((level[sibling_pos], sibling_pos < position))
            # else: promoted odd node — no sibling, no hashing at this level.
            position //= 2
        return MerkleProof(index=index, steps=tuple(steps))
