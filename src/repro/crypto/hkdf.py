"""HKDF-SHA256 (RFC 5869) key derivation."""

from __future__ import annotations

import hashlib

from repro.crypto.hashing import hmac_sha256
from repro.errors import ConfigurationError

__all__ = ["hkdf_extract", "hkdf_expand", "hkdf"]

_HASH_LEN = hashlib.sha256().digest_size


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """Extract a pseudorandom key from input keying material."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand a pseudorandom key to ``length`` bytes of output keying material."""
    if length > 255 * _HASH_LEN:
        raise ConfigurationError("HKDF output length too large")
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac_sha256(prk, block, info, bytes([counter]))
        output += block
        counter += 1
    return output[:length]


def hkdf(ikm: bytes, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """One-shot HKDF: extract then expand."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
