"""A TLS-1.3-like secure channel for enclave secret provisioning.

The paper provisions per-participant symmetric keys "through secure
communication channels ... directly to the enclave" after remote attestation
(Section IV-A). This module implements the channel: an ephemeral-DH
handshake with an HKDF key schedule and an AEAD record layer. The server
side binds its handshake transcript to an attestation *report-data* value so
a participant can check it is talking to the attested enclave and not a
man-in-the-middle (the same binding real SGX RA-TLS uses).

Handshake message flow::

    client                                   server (inside enclave)
    ------                                   ----------------------
    ClientHello {dh_pub, nonce}  ------->
                                 <-------    ServerHello {dh_pub, nonce,
                                                          transcript MAC}
    Finished {transcript MAC}    ------->

Both sides then derive independent client->server and server->client record
keys; records carry explicit sequence numbers authenticated as AAD, so
reordering, replay, and truncation are all detected.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.crypto.aead import AesGcm, NONCE_LEN
from repro.crypto.dh import DhKeyPair, DhParams, MODP_2048
from repro.crypto.hashing import constant_time_equal, hmac_sha256, sha256
from repro.crypto.hkdf import hkdf_expand, hkdf_extract
from repro.errors import HandshakeError
from repro.utils.rng import RngStream

__all__ = ["ClientHello", "ServerHello", "Finished", "SecureChannel", "TlsClient", "TlsServer"]


@dataclass(frozen=True)
class ClientHello:
    dh_public: int
    nonce: bytes


@dataclass(frozen=True)
class ServerHello:
    dh_public: int
    nonce: bytes
    report_data: bytes
    transcript_mac: bytes


@dataclass(frozen=True)
class Finished:
    transcript_mac: bytes


def _transcript(hello_c: ClientHello, dh_public_s: int, nonce_s: bytes,
                report_data: bytes) -> bytes:
    return sha256(
        hello_c.dh_public.to_bytes(256, "big"),
        hello_c.nonce,
        dh_public_s.to_bytes(256, "big"),
        nonce_s,
        report_data,
    )


class SecureChannel:
    """An established channel: two unidirectional AEAD record streams."""

    def __init__(self, send_key: bytes, recv_key: bytes) -> None:
        self._send = AesGcm(send_key)
        self._recv = AesGcm(recv_key)
        self._send_seq = 0
        self._recv_seq = 0

    @staticmethod
    def _nonce(seq: int) -> bytes:
        return seq.to_bytes(NONCE_LEN, "big")

    def send(self, plaintext: bytes) -> bytes:
        """Protect one record for the peer."""
        seq = self._send_seq
        self._send_seq += 1
        aad = struct.pack("<Q", seq)
        return self._send.seal(self._nonce(seq), plaintext, aad)

    def receive(self, record: bytes) -> bytes:
        """Verify and open one record from the peer (in order)."""
        seq = self._recv_seq
        aad = struct.pack("<Q", seq)
        plaintext = self._recv.open(self._nonce(seq), record, aad)
        self._recv_seq += 1
        return plaintext


class TlsClient:
    """Participant-side handshake state machine."""

    def __init__(self, rng: RngStream, params: DhParams = MODP_2048) -> None:
        self._rng = rng
        self._keypair = DhKeyPair(rng, params)
        self._hello: Optional[ClientHello] = None
        self._keys: Optional[tuple] = None
        self._transcript: Optional[bytes] = None
        self.report_data: Optional[bytes] = None

    def client_hello(self) -> ClientHello:
        self._hello = ClientHello(
            dh_public=self._keypair.public, nonce=self._rng.randbytes(32)
        )
        return self._hello

    def process_server_hello(self, hello_s: ServerHello) -> Finished:
        """Verify the server's transcript MAC; return the Finished message."""
        if self._hello is None:
            raise HandshakeError("client_hello() must be called first")
        shared = self._keypair.shared_secret(hello_s.dh_public)
        transcript = _transcript(
            self._hello, hello_s.dh_public, hello_s.nonce, hello_s.report_data
        )
        keys = _schedule(shared, transcript)
        if not constant_time_equal(
            hello_s.transcript_mac, hmac_sha256(keys.mac, b"server", transcript)
        ):
            raise HandshakeError("server transcript MAC mismatch")
        self._keys = keys
        self._transcript = transcript
        self.report_data = hello_s.report_data
        return Finished(hmac_sha256(keys.mac, b"client", transcript))

    def channel(self) -> SecureChannel:
        if self._keys is None:
            raise HandshakeError("handshake not complete")
        return SecureChannel(send_key=self._keys.c2s, recv_key=self._keys.s2c)


class TlsServer:
    """Enclave-side handshake state machine.

    ``report_data`` is the attestation binding: the enclave places (a hash
    of) its handshake public value into the attestation quote's report-data
    field, and echoes the value here so the client can cross-check the two.
    """

    def __init__(self, rng: RngStream, report_data: bytes = b"",
                 params: DhParams = MODP_2048) -> None:
        self._rng = rng
        self._keypair = DhKeyPair(rng, params)
        self._report_data = report_data
        self._keys: Optional[tuple] = None
        self._transcript: Optional[bytes] = None

    @property
    def dh_public(self) -> int:
        return self._keypair.public

    def bind_report_data(self, report_data: bytes) -> None:
        """Set the attestation binding after the DH share exists (it must
        be set before :meth:`process_client_hello` runs)."""
        if self._keys is not None:
            raise HandshakeError("cannot re-bind after the handshake started")
        self._report_data = report_data

    def process_client_hello(self, hello_c: ClientHello) -> ServerHello:
        shared = self._keypair.shared_secret(hello_c.dh_public)
        nonce_s = self._rng.randbytes(32)
        transcript = _transcript(
            hello_c, self._keypair.public, nonce_s, self._report_data
        )
        self._keys = _schedule(shared, transcript)
        self._transcript = transcript
        return ServerHello(
            dh_public=self._keypair.public,
            nonce=nonce_s,
            report_data=self._report_data,
            transcript_mac=hmac_sha256(self._keys.mac, b"server", transcript),
        )

    def process_finished(self, finished: Finished) -> None:
        if self._keys is None:
            raise HandshakeError("process_client_hello() must be called first")
        expected = hmac_sha256(self._keys.mac, b"client", self._transcript)
        if not constant_time_equal(finished.transcript_mac, expected):
            raise HandshakeError("client transcript MAC mismatch")

    def channel(self) -> SecureChannel:
        if self._keys is None:
            raise HandshakeError("handshake not complete")
        # Mirror of the client: the server sends on s2c, receives on c2s.
        return SecureChannel(send_key=self._keys.s2c, recv_key=self._keys.c2s)


@dataclass(frozen=True)
class _KeySchedule:
    c2s: bytes
    s2c: bytes
    mac: bytes


def _schedule(shared_secret: bytes, transcript: bytes) -> _KeySchedule:
    prk = hkdf_extract(transcript, shared_secret)
    return _KeySchedule(
        c2s=hkdf_expand(prk, b"caltrain c2s", 16),
        s2c=hkdf_expand(prk, b"caltrain s2c", 16),
        mac=hkdf_expand(prk, b"caltrain finished", 32),
    )
