"""Finite-field Diffie-Hellman key agreement.

Uses the RFC 3526 2048-bit MODP group (group 14). Each side contributes an
ephemeral key pair; the shared secret feeds HKDF in the TLS-like handshake
(:mod:`repro.crypto.tls`). Public values are validated to reject the
degenerate subgroup elements (0, 1, p-1) that would let an active attacker
force a predictable secret.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HandshakeError
from repro.utils.rng import RngStream

__all__ = ["DhParams", "DhKeyPair", "MODP_2048"]

_MODP_2048_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)


@dataclass(frozen=True)
class DhParams:
    """A Diffie-Hellman group (safe prime ``p`` and generator ``g``)."""

    p: int
    g: int

    def validate_public(self, public: int) -> None:
        """Reject degenerate public values that collapse the shared secret."""
        if not 2 <= public <= self.p - 2:
            raise HandshakeError("invalid DH public value")


MODP_2048 = DhParams(p=_MODP_2048_PRIME, g=2)


class DhKeyPair:
    """An ephemeral DH key pair over a given group."""

    def __init__(self, rng: RngStream, params: DhParams = MODP_2048) -> None:
        self.params = params
        # 256-bit exponents give ~128-bit security in this group and keep
        # modular exponentiation fast.
        self._private = int.from_bytes(rng.randbytes(32), "big") | 1
        self.public = pow(params.g, self._private, params.p)

    @classmethod
    def from_private(cls, private: int,
                     params: DhParams = MODP_2048) -> "DhKeyPair":
        """Rebuild a key pair from a known private exponent (used by
        secure aggregation's dropout recovery, where survivors reconstruct
        a dropped client's key from its Shamir shares)."""
        pair = cls.__new__(cls)
        pair.params = params
        pair._private = private
        pair.public = pow(params.g, private, params.p)
        return pair

    def private_bytes(self) -> bytes:
        """The private exponent (for escrow via secret sharing only)."""
        return self._private.to_bytes(32, "big")

    def shared_secret(self, peer_public: int) -> bytes:
        """Compute the shared secret with a peer's public value."""
        self.params.validate_public(peer_public)
        secret = pow(peer_public, self._private, self.params.p)
        byte_len = (self.params.p.bit_length() + 7) // 8
        return secret.to_bytes(byte_len, "big")
