"""Per-stage counters for the ingestion plane.

Mirrors :class:`~repro.serving.telemetry.ServingTelemetry` on the upload
side: how many sessions opened and resumed, how many chunks were
journaled (and how many were idempotent replays), what the gateway
rejected and why (backpressure, quota, rate limit), what validation
accepted versus quarantined per reason, and how long each stage takes.
All counters are thread-safe; :meth:`IngestTelemetry.snapshot` returns a
plain dict and :meth:`render` a human-readable table for the CLI.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.serving.telemetry import StageStats

__all__ = ["IngestTelemetry"]


class IngestTelemetry:
    """Counters + per-stage latency for the ingestion pipeline."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._stages: Dict[str, StageStats] = {}

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, stage: str, value: float) -> None:
        with self._lock:
            stats = self._stages.get(stage)
            if stats is None:
                stats = self._stages[stage] = StageStats()
            stats.observe(value)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- derived rates -----------------------------------------------------------

    @property
    def quarantine_rate(self) -> float:
        """Fraction of validated records the pipeline refused."""
        with self._lock:
            accepted = self._counters.get("records_accepted", 0)
            refused = self._counters.get("records_quarantined", 0)
        total = accepted + refused
        return refused / total if total else 0.0

    @property
    def mean_chunk_records(self) -> float:
        with self._lock:
            chunks = self._counters.get("chunks", 0)
            records = self._counters.get("chunk_records", 0)
        return records / chunks if chunks else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            stages = {name: stats.as_dict()
                      for name, stats in self._stages.items()}
        snapshot: Dict[str, object] = {"counters": counters, "stages": stages}
        snapshot["quarantine_rate"] = self.quarantine_rate
        snapshot["mean_chunk_records"] = self.mean_chunk_records
        return snapshot

    def render(self) -> str:
        snapshot = self.snapshot()
        lines = ["ingest telemetry"]
        for name in sorted(snapshot["counters"]):
            lines.append(f"  {name:<24} {snapshot['counters'][name]:>10}")
        lines.append(
            f"  {'quarantine_rate':<24} {snapshot['quarantine_rate']:>10.2%}"
        )
        lines.append(
            f"  {'mean_chunk_records':<24} "
            f"{snapshot['mean_chunk_records']:>10.2f}"
        )
        for name in sorted(snapshot["stages"]):
            stage = snapshot["stages"][name]
            lines.append(
                f"  stage {name:<16} n={stage['count']:<7} "
                f"mean={stage['mean'] * 1e3:8.3f}ms max={stage['max'] * 1e3:8.3f}ms"
            )
        return "\n".join(lines)
