"""Per-stage counters for the ingestion plane.

Mirrors :class:`~repro.serving.telemetry.ServingTelemetry` on the upload
side: how many sessions opened and resumed, how many chunks were
journaled (and how many were idempotent replays), what the gateway
rejected and why (backpressure, quota, rate limit), what validation
accepted versus quarantined per reason, and how long each stage takes.

A thin adapter over the shared
:class:`~repro.observability.MetricsRegistry` (metric namespace
``repro_ingest_*``); :meth:`IngestTelemetry.snapshot` returns a plain
dict and :meth:`render` a human-readable table for the CLI.
"""

from __future__ import annotations

from typing import Dict

from repro.observability.adapter import SubsystemTelemetry

__all__ = ["IngestTelemetry"]


class IngestTelemetry(SubsystemTelemetry):
    """Counters + per-stage latency for the ingestion pipeline."""

    subsystem = "ingest"

    # -- derived rates -----------------------------------------------------------

    @property
    def quarantine_rate(self) -> float:
        """Fraction of validated records the pipeline refused."""
        accepted = self.counter("records_accepted")
        refused = self.counter("records_quarantined")
        total = accepted + refused
        return refused / total if total else 0.0

    @property
    def mean_chunk_records(self) -> float:
        chunks = self.counter("chunks")
        records = self.counter("chunk_records")
        return records / chunks if chunks else 0.0

    def snapshot(self) -> Dict[str, object]:
        snapshot = super().snapshot()
        snapshot["quarantine_rate"] = self.quarantine_rate
        snapshot["mean_chunk_records"] = self.mean_chunk_records
        return snapshot

    def render(self) -> str:
        snapshot = self.snapshot()
        lines = ["ingest telemetry"]
        for name in sorted(snapshot["counters"]):
            lines.append(f"  {name:<24} {snapshot['counters'][name]:>10}")
        lines.append(
            f"  {'quarantine_rate':<24} {snapshot['quarantine_rate']:>10.2%}"
        )
        lines.append(
            f"  {'mean_chunk_records':<24} "
            f"{snapshot['mean_chunk_records']:>10.2f}"
        )
        lines.extend(self._render_stage_lines(snapshot["stages"], width=16))
        return "\n".join(lines)
