"""The ingest gateway: attestation-gated sessions, quotas, backpressure.

Contributors reach the durable pipeline only through here, and only
after the attested provisioning handshake
(:func:`repro.federation.provisioning.provision_key`) has planted their
data key inside the training enclave — a session open for a contributor
the enclave holds no key for is refused outright. On top of that gate
the gateway enforces the "heavy traffic" disciplines of the serving
plane, mirrored onto the upload side:

* **bounded concurrency** — at most ``max_open_sessions`` uploads may be
  in flight; beyond that, opens fail with the typed
  :class:`~repro.errors.UploadRejected` (backpressure, not silent drops);
* **per-contributor quotas** — records and bytes a contributor may
  commit, checked as chunks arrive so an over-quota stream is cut off
  mid-flight, not after it has consumed the spool;
* **token-bucket rate limiting** — sustained per-contributor record
  rates are capped; bursts up to the bucket capacity are absorbed.

A completed session drains its journal through the
:class:`~repro.ingest.validate.ValidationPool` and commits the survivors
to the :class:`~repro.ingest.ledger.ContributionLedger` — one segment
per session — with quarantined records preserved in the forensic lane.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro.data.encryption import EncryptedRecord
from repro.errors import (ConfigurationError, IngestError, TransferError,
                          UploadRejected)
from repro.federation.provisioning import provisioned_key, ProvisioningError
from repro.ingest.ledger import ContributionLedger, LedgerSegmentInfo
from repro.ingest.telemetry import IngestTelemetry
from repro.ingest.transfer import ChunkReceipt, UploadTransfer
from repro.ingest.validate import ValidationPool

__all__ = ["GatewayConfig", "TokenBucket", "IngestReceipt", "UploadSession",
           "IngestGateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Traffic-shaping knobs for the ingest gateway."""

    max_open_sessions: int = 16          # bounded concurrency = backpressure
    max_records_per_contributor: int = 1_000_000
    max_bytes_per_contributor: int = 16 * 1024 ** 3
    rate_capacity: float = 4096.0        # token-bucket burst, in records
    rate_refill_per_s: float = 4096.0    # sustained records/second
    chunk_records: int = 256             # upper bound on records per chunk

    def __post_init__(self) -> None:
        if self.max_open_sessions < 1:
            raise ConfigurationError("max_open_sessions must be >= 1")
        if self.max_records_per_contributor < 1:
            raise ConfigurationError("max_records_per_contributor must be >= 1")
        if self.max_bytes_per_contributor < 1:
            raise ConfigurationError("max_bytes_per_contributor must be >= 1")
        if self.rate_capacity <= 0 or self.rate_refill_per_s <= 0:
            raise ConfigurationError("rate limiter parameters must be > 0")
        if self.chunk_records < 1:
            raise ConfigurationError("chunk_records must be >= 1")


class TokenBucket:
    """A thread-safe token bucket (tokens = records)."""

    def __init__(self, capacity: float, refill_per_s: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_take(self, tokens: float) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.capacity,
                self._tokens + (now - self._stamp) * self.refill_per_s,
            )
            self._stamp = now
            if tokens > self._tokens:
                return False
            self._tokens -= tokens
            return True


@dataclass(frozen=True)
class IngestReceipt:
    """What a contributor holds after a committed session."""

    contributor: str
    session_id: str
    committed: int
    quarantined: int
    segment: Optional[LedgerSegmentInfo]
    manifest_digest: str
    audit_head: str


class UploadSession:
    """One contributor's chunked upload, spooled through the journal."""

    def __init__(self, gateway: "IngestGateway", contributor: str,
                 session_id: str, transfer: UploadTransfer,
                 resumed: bool = False) -> None:
        self.gateway = gateway
        self.contributor = contributor
        self.session_id = session_id
        self.transfer = transfer
        self.resumed = resumed
        self._closed = False

    @property
    def next_seq(self) -> int:
        return self.transfer.next_seq

    @property
    def acked_records(self) -> int:
        return self.transfer.acked_records

    @property
    def acked_bytes(self) -> int:
        return self.transfer.acked_bytes

    def max_nonce(self) -> Optional[bytes]:
        return self.transfer.max_nonce()

    def send_chunk(self, records: Sequence[EncryptedRecord]) -> ChunkReceipt:
        """Stream one chunk through the gateway's traffic shaping."""
        if self._closed:
            raise IngestError("session is closed")
        return self.gateway._accept_chunk(self, records)

    def complete(self) -> IngestReceipt:
        """Validate everything journaled and commit it to the ledger."""
        if self._closed:
            raise IngestError("session is closed")
        self._closed = True
        return self.gateway._complete_session(self)

    def abort(self) -> None:
        """Drop the session and its spool without committing anything."""
        if self._closed:
            return
        self._closed = True
        self.gateway._abort_session(self)


class IngestGateway:
    """The contributor-facing front door of the ingestion plane."""

    def __init__(self, ledger: ContributionLedger, validator: ValidationPool,
                 spool_dir, config: Optional[GatewayConfig] = None,
                 telemetry: Optional[IngestTelemetry] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.ledger = ledger
        self.validator = validator
        self.spool_dir = Path(spool_dir)
        self.config = config or GatewayConfig()
        self.telemetry = telemetry if telemetry is not None else (
            validator.telemetry
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._open: Dict[str, UploadSession] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._committed_records: Dict[str, int] = {}
        self._committed_bytes: Dict[str, int] = {}
        for record in ledger.iter_records():
            self._committed_records[record.source_id] = (
                self._committed_records.get(record.source_id, 0) + 1
            )
            self._committed_bytes[record.source_id] = (
                self._committed_bytes.get(record.source_id, 0)
                + len(record.sealed)
            )

    # -- the attestation gate ------------------------------------------------------

    def _require_provisioned(self, contributor: str) -> None:
        try:
            provisioned_key(self.validator.enclave, contributor)
        except ProvisioningError:
            self.telemetry.count("rejected_unprovisioned")
            raise UploadRejected(
                f"contributor {contributor!r} has no provisioned key — run "
                "the attested provisioning handshake before uploading"
            ) from None

    def _bucket(self, contributor: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(contributor)
            if bucket is None:
                bucket = self._buckets[contributor] = TokenBucket(
                    self.config.rate_capacity, self.config.rate_refill_per_s,
                    clock=self._clock,
                )
            return bucket

    # -- session lifecycle ---------------------------------------------------------

    def _session_dir(self, contributor: str, session_id: str) -> Path:
        return self.spool_dir / contributor / session_id

    def open_session(self, contributor: str,
                     session_id: str = "upload") -> UploadSession:
        """Open a fresh upload session (attestation-gated, bounded)."""
        self._require_provisioned(contributor)
        with self._lock:
            if len(self._open) >= self.config.max_open_sessions:
                self.telemetry.count("rejected_backpressure")
                raise UploadRejected(
                    f"too many uploads in flight "
                    f"({self.config.max_open_sessions}); retry with backoff"
                )
            key = f"{contributor}/{session_id}"
            if key in self._open:
                raise UploadRejected(
                    f"session {session_id!r} for {contributor!r} is already "
                    "open"
                )
            try:
                transfer = UploadTransfer.create(
                    self._session_dir(contributor, session_id)
                )
            except TransferError as exc:
                # A crashed session's spool is present; keep the gateway's
                # typed-error contract and point the client at the
                # actionable path instead of leaking the internal error.
                self.telemetry.count("rejected_stale_spool")
                raise UploadRejected(
                    f"session {session_id!r} for {contributor!r} has an "
                    "interrupted upload spooled — call resume_session to "
                    "continue it"
                ) from exc
            session = UploadSession(self, contributor, session_id, transfer)
            self._open[key] = session
        self.telemetry.count("sessions_opened")
        return session

    def resume_session(self, contributor: str,
                       session_id: str = "upload") -> UploadSession:
        """Reopen a crashed upload from its journal (attestation-gated).

        The returned session reports ``next_seq`` / ``acked_records`` /
        ``max_nonce()`` so the contributor continues exactly where the
        journal left off.
        """
        self._require_provisioned(contributor)
        with self._lock:
            if len(self._open) >= self.config.max_open_sessions:
                self.telemetry.count("rejected_backpressure")
                raise UploadRejected(
                    f"too many uploads in flight "
                    f"({self.config.max_open_sessions}); retry with backoff"
                )
            key = f"{contributor}/{session_id}"
            if key in self._open:
                raise UploadRejected(
                    f"session {session_id!r} for {contributor!r} is already "
                    "open"
                )
            session_dir = self._session_dir(contributor, session_id)
            if not UploadTransfer.exists(session_dir):
                raise UploadRejected(
                    f"session {session_id!r} for {contributor!r} has no "
                    "spooled upload to resume — open a fresh session"
                )
            transfer = UploadTransfer.resume(session_dir)
            session = UploadSession(self, contributor, session_id, transfer,
                                    resumed=True)
            self._open[key] = session
        self.telemetry.count("sessions_resumed")
        return session

    # -- the chunk path --------------------------------------------------------------

    def _quota_remaining(self, contributor: str) -> int:
        committed = self._committed_records.get(contributor, 0)
        return self.config.max_records_per_contributor - committed

    def _accept_chunk(self, session: UploadSession,
                      records: Sequence[EncryptedRecord]) -> ChunkReceipt:
        started = time.perf_counter()
        if len(records) > self.config.chunk_records:
            self.telemetry.count("rejected_oversized_chunk")
            raise UploadRejected(
                f"chunk of {len(records)} records exceeds the "
                f"{self.config.chunk_records}-record bound"
            )
        contributor = session.contributor
        nbytes = sum(len(r.sealed) for r in records)
        with self._lock:
            committed = self._committed_records.get(contributor, 0)
            committed_bytes = self._committed_bytes.get(contributor, 0)
            # Quotas must see what is already spooled but not yet
            # committed — across every open session this contributor
            # holds — or a contributor could spool arbitrarily many
            # bytes past the cap inside open sessions (disk exhaustion).
            pending = sum(s.acked_records for s in self._open.values()
                          if s.contributor == contributor)
            pending_bytes = sum(s.acked_bytes for s in self._open.values()
                                if s.contributor == contributor)
        if committed + pending + len(records) > \
                self.config.max_records_per_contributor:
            self.telemetry.count("rejected_quota")
            raise UploadRejected(
                f"contributor {contributor!r} would exceed its "
                f"{self.config.max_records_per_contributor}-record quota"
            )
        if committed_bytes + pending_bytes + nbytes > \
                self.config.max_bytes_per_contributor:
            self.telemetry.count("rejected_quota")
            raise UploadRejected(
                f"contributor {contributor!r} would exceed its byte quota"
            )
        if not self._bucket(contributor).try_take(float(len(records))):
            self.telemetry.count("rejected_rate")
            raise UploadRejected(
                f"contributor {contributor!r} exceeds its sustained upload "
                "rate; retry with backoff"
            )
        receipt = session.transfer.append_chunk(records)
        if receipt.replayed:
            self.telemetry.count("chunks_replayed")
        else:
            self.telemetry.count("chunks")
            self.telemetry.count("chunk_records", receipt.records)
            self.telemetry.count("chunk_bytes", nbytes)
        self.telemetry.observe("chunk", time.perf_counter() - started)
        return receipt

    # -- completion ------------------------------------------------------------------

    def _complete_session(self, session: UploadSession) -> IngestReceipt:
        started = time.perf_counter()
        contributor = session.contributor
        try:
            records = session.transfer.finalize()
            report = self.validator.validate(contributor, records)
            # The dedup gate and the append are atomic under the ledger
            # lock: concurrent completions racing on the same ciphertext
            # cannot both commit it. Whatever the lock-side gate refuses
            # is quarantined and audited like any pipeline refusal.
            segment, duplicates = self.ledger.commit_deduplicated(
                report.accepted, contributor
            )
            if duplicates:
                refused_ids = {id(r) for r in duplicates}
                report.accepted = [r for r in report.accepted
                                   if id(r) not in refused_ids]
                report.quarantined.extend(
                    self.validator.quarantine_at_commit(contributor,
                                                        duplicates)
                )
            if report.accepted:
                self.telemetry.count("records_committed",
                                     len(report.accepted))
            for reason, count in sorted(report.quarantined_by_reason.items()):
                refused = [q.record for q in report.quarantined
                           if q.reason == reason]
                self.ledger.quarantine(refused, contributor, reason)
            with self._lock:
                self._committed_records[contributor] = (
                    self._committed_records.get(contributor, 0)
                    + len(report.accepted)
                )
                self._committed_bytes[contributor] = (
                    self._committed_bytes.get(contributor, 0)
                    + sum(len(r.sealed) for r in report.accepted)
                )
            session.transfer.discard()
        finally:
            with self._lock:
                self._open.pop(f"{contributor}/{session.session_id}", None)
        self.telemetry.count("sessions_committed")
        self.telemetry.observe("commit", time.perf_counter() - started)
        return IngestReceipt(
            contributor=contributor,
            session_id=session.session_id,
            committed=len(report.accepted),
            quarantined=len(report.quarantined),
            segment=segment,
            manifest_digest=self.ledger.manifest_digest().hex(),
            audit_head=self.validator.audit.head.hex(),
        )

    def evict_session(self, contributor: str,
                      session_id: str = "upload") -> bool:
        """Free a dead upload's slot without touching its spool.

        This is the operator/timeout path for a client that crashed
        mid-transfer: the journal stays on disk so the contributor can
        :meth:`resume_session` later, but the bounded-concurrency slot is
        released immediately.
        """
        with self._lock:
            session = self._open.pop(f"{contributor}/{session_id}", None)
        if session is None:
            return False
        session._closed = True
        self.telemetry.count("sessions_evicted")
        return True

    def _abort_session(self, session: UploadSession) -> None:
        session.transfer.discard()
        with self._lock:
            self._open.pop(f"{session.contributor}/{session.session_id}", None)
        self.telemetry.count("sessions_aborted")

    # -- introspection ----------------------------------------------------------------

    @property
    def open_sessions(self) -> int:
        with self._lock:
            return len(self._open)

    def committed_records(self, contributor: str) -> int:
        with self._lock:
            return self._committed_records.get(contributor, 0)
