"""`repro.ingest` — the durable, attestation-gated data-ingestion plane.

The paper's Section IV-A has participants seal their training data
locally and submit it to the training server; `repro.federation`'s
``submit()`` models that as one in-memory dataset handed over
synchronously. This package grows the upload side into the mirror image
of the :mod:`repro.serving` query plane — a pipeline that survives heavy
traffic from many concurrent contributors:

* :mod:`repro.ingest.gateway` — attestation-gated upload sessions (no
  provisioned key in the enclave, no session), per-contributor
  record/byte quotas, token-bucket rate limiting, and bounded session
  concurrency with the typed :class:`~repro.errors.UploadRejected`
  backpressure signal;
* :mod:`repro.ingest.transfer` — size-bounded chunks with per-chunk
  digests and a write-ahead journal: a crashed upload resumes from the
  last acknowledged chunk, acknowledged chunks are replay-idempotent,
  and journaled nonces can never be re-spent;
* :mod:`repro.ingest.ledger` — an append-only, content-addressed
  :class:`ContributionLedger` of validated encrypted records (committed
  lane) and refused ones (quarantine lane), with an enclave-sealable
  manifest digest;
* :mod:`repro.ingest.validate` — a concurrent pipeline that
  AEAD-authenticates every record inside the enclave, gates labels and
  tensor shapes, deduplicates ciphertexts across contributors, and
  hash-chains every admission decision into an audit trail;
* :mod:`repro.ingest.telemetry` — per-stage counters and latencies for
  the whole plane.

Training then consumes the ledger through
:meth:`repro.federation.server.TrainingServer.from_ledger` instead of
raw submissions.
"""

from repro.ingest.gateway import (GatewayConfig, IngestGateway, IngestReceipt,
                                  TokenBucket, UploadSession)
from repro.ingest.ledger import (LEDGER_FORMAT, ContributionLedger,
                                 LedgerSegmentInfo, pack_records,
                                 record_digest, unpack_records)
from repro.ingest.telemetry import IngestTelemetry
from repro.ingest.transfer import ChunkReceipt, UploadTransfer, chunk_stream
from repro.ingest.validate import (QuarantinedRecord, ValidationConfig,
                                   ValidationPool, ValidationReport,
                                   install_ingest_ecalls)

__all__ = [
    "LEDGER_FORMAT",
    "ContributionLedger",
    "LedgerSegmentInfo",
    "pack_records",
    "unpack_records",
    "record_digest",
    "ChunkReceipt",
    "UploadTransfer",
    "chunk_stream",
    "GatewayConfig",
    "IngestGateway",
    "IngestReceipt",
    "TokenBucket",
    "UploadSession",
    "QuarantinedRecord",
    "ValidationConfig",
    "ValidationPool",
    "ValidationReport",
    "install_ingest_ecalls",
    "IngestTelemetry",
]
