"""The concurrent validation pipeline between transfer and ledger.

Every journaled record must pass four gates before it is committed:

1. **AEAD authentication, inside the enclave** — the sealed payload is
   opened via the ``ingest_verify_records`` ECALL under the contributor's
   provisioned key; a forged payload, a relabelled record, or a spliced
   index fails its tag and is *quarantined*, never crashing the pipeline
   and never reaching the training ledger;
2. **label domain** — the cleartext label must lie in the agreed domain;
3. **tensor shape** — the decrypted instance (its shape is reported from
   inside the enclave; the plaintext itself never leaves) must match the
   agreed input shape;
4. **duplicate detection** — a sealed ciphertext whose content digest was
   already committed (by this or any other contributor) is quarantined:
   replaying another participant's records is a cheap influence attack
   even without forging a single byte.

Batches are fanned out across a worker pool, and every decision — accept
or quarantine, with the reason — appends a hash-chained event to the
ingest :class:`~repro.core.audit.AuditLog`, so the admission history is
itself tamper-evident.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.audit import AuditLog
from repro.crypto.aead import new_aead
from repro.data.encryption import EncryptedRecord, decrypt_record
from repro.enclave.enclave import Enclave
from repro.errors import AuthenticationError, ConfigurationError
from repro.federation.provisioning import provisioned_key
from repro.ingest.ledger import ContributionLedger, record_digest
from repro.ingest.telemetry import IngestTelemetry

__all__ = ["ValidationConfig", "QuarantinedRecord", "ValidationReport",
           "ValidationPool", "install_ingest_ecalls"]


# -- trusted (in-enclave) function ---------------------------------------------


def _ecall_verify_records(enclave: Enclave, contributor_id: str,
                          records: Sequence[EncryptedRecord],
                          cipher: str) -> List[Tuple[str, Optional[Tuple[int, ...]], Optional[int]]]:
    """Trusted: authenticate each record; report (verdict, shape, label).

    The plaintext never crosses the boundary — only the tag verdict and
    the decrypted tensor's shape, which the untrusted validation workers
    need for the shape gate.
    """
    key_material = provisioned_key(enclave, contributor_id)
    aead = new_aead(key_material, cipher=cipher)
    verdicts: List[Tuple[str, Optional[Tuple[int, ...]], Optional[int]]] = []
    for record in records:
        try:
            image, label = decrypt_record(record, aead)
        except AuthenticationError:
            verdicts.append(("tampered", None, None))
            continue
        verdicts.append(("ok", tuple(image.shape), int(label)))
    return verdicts


def install_ingest_ecalls(enclave: Enclave) -> None:
    """Register the ingest ECALLs (call during enclave build)."""
    enclave.add_code("ingest_verify_records", _ecall_verify_records)


# -- untrusted pipeline ----------------------------------------------------------


@dataclass(frozen=True)
class ValidationConfig:
    """The admission contract every contribution is checked against."""

    num_classes: int                   # label domain: 0 <= label < num_classes
    input_shape: Tuple[int, ...]       # agreed instance tensor shape
    workers: int = 2                   # validation worker threads
    batch_records: int = 128           # records per ECALL batch
    cipher: str = "hmac-ctr"

    def __post_init__(self) -> None:
        if self.num_classes < 1:
            raise ConfigurationError("num_classes must be >= 1")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.batch_records < 1:
            raise ConfigurationError("batch_records must be >= 1")


@dataclass(frozen=True)
class QuarantinedRecord:
    """One refused record and the gate that refused it."""

    record: EncryptedRecord
    reason: str  # "tampered" | "label-domain" | "shape" | "duplicate"


@dataclass
class ValidationReport:
    """Outcome of validating one upload session's records."""

    contributor: str
    accepted: List[EncryptedRecord] = field(default_factory=list)
    quarantined: List[QuarantinedRecord] = field(default_factory=list)

    @property
    def quarantined_by_reason(self) -> Dict[str, int]:
        reasons: Dict[str, int] = {}
        for item in self.quarantined:
            reasons[item.reason] = reasons.get(item.reason, 0) + 1
        return reasons


class ValidationPool:
    """Fans record batches across workers and applies the admission gates."""

    def __init__(self, enclave: Enclave, config: ValidationConfig,
                 ledger: Optional[ContributionLedger] = None,
                 audit: Optional[AuditLog] = None,
                 telemetry: Optional[IngestTelemetry] = None) -> None:
        self.enclave = enclave
        self.config = config
        self.ledger = ledger
        self.audit = audit if audit is not None else AuditLog()
        self.telemetry = telemetry if telemetry is not None else IngestTelemetry()
        self._audit_lock = threading.Lock()
        self._ecall_lock = threading.Lock()

    # -- per-batch work (runs on pool workers) ------------------------------------

    def _verify_batch(self, contributor: str,
                      batch: Sequence[EncryptedRecord]):
        started = time.perf_counter()
        # The enclave simulator's ECALL boundary is not reentrant; the
        # authenticate stage serializes on it while digesting/gating below
        # still overlaps across workers.
        with self._ecall_lock:
            verdicts = self.enclave.ecall(
                "ingest_verify_records", contributor, list(batch),
                self.config.cipher,
                payload_bytes=sum(len(r.sealed) for r in batch),
            )
        self.telemetry.observe("authenticate", time.perf_counter() - started)
        return verdicts

    def _gate_batch(self, contributor: str, batch: Sequence[EncryptedRecord],
                    verdicts) -> List[Tuple[EncryptedRecord, str, bytes]]:
        """Apply the label/shape gates; returns (record, verdict, digest)."""
        started = time.perf_counter()
        out = []
        for record, (verdict, shape, label) in zip(batch, verdicts):
            digest = record_digest(record)
            if verdict != "ok":
                out.append((record, "tampered", digest))
                continue
            if not 0 <= label < self.config.num_classes:
                out.append((record, "label-domain", digest))
                continue
            if tuple(shape) != tuple(self.config.input_shape):
                out.append((record, "shape", digest))
                continue
            out.append((record, "ok", digest))
        self.telemetry.observe("gate", time.perf_counter() - started)
        return out

    # -- the pipeline -------------------------------------------------------------

    def validate(self, contributor: str,
                 records: Sequence[EncryptedRecord]) -> ValidationReport:
        """Run every gate over ``records``; never raises on bad data.

        Tampered, relabelled, out-of-domain, misshapen, and duplicated
        records land in the report's quarantine list (and the audit
        trail), not in an exception: one malicious record must not stall
        the ingestion of everyone else's data.
        """
        if not records:
            return ValidationReport(contributor=contributor)
        started = time.perf_counter()
        batches = [
            records[start : start + self.config.batch_records]
            for start in range(0, len(records), self.config.batch_records)
        ]
        report = ValidationReport(contributor=contributor)
        with ThreadPoolExecutor(max_workers=self.config.workers,
                                thread_name_prefix="ingest-validate") as pool:
            gated = pool.map(
                lambda batch: self._gate_batch(
                    contributor, batch, self._verify_batch(contributor, batch)
                ),
                batches,
            )
            results = [item for batch in gated for item in batch]
        # Duplicate detection is cross-batch and cross-contributor state,
        # so it runs single-threaded over the gated stream: first within
        # this session, then against everything the ledger ever committed.
        seen: Set[bytes] = set()
        for record, verdict, digest in results:
            if verdict == "ok":
                duplicate = digest in seen or (
                    self.ledger is not None and self.ledger.has_ciphertext(digest)
                )
                if duplicate:
                    verdict = "duplicate"
                else:
                    seen.add(digest)
            if verdict == "ok":
                report.accepted.append(record)
                self.telemetry.count("records_accepted")
            else:
                report.quarantined.append(
                    QuarantinedRecord(record=record, reason=verdict)
                )
                self.telemetry.count("records_quarantined")
                self.telemetry.count(f"quarantined_{verdict.replace('-', '_')}")
            self._audit_record(contributor, digest, verdict)
        self.telemetry.observe("validate", time.perf_counter() - started)
        return report

    def quarantine_at_commit(
        self, contributor: str, records: Sequence[EncryptedRecord],
        reason: str = "duplicate",
    ) -> List[QuarantinedRecord]:
        """Re-verdict records the ledger refused at commit time.

        The in-pipeline duplicate check is advisory; the authoritative
        gate runs under the ledger lock at commit
        (:meth:`~repro.ingest.ledger.ContributionLedger.commit_deduplicated`).
        When that gate catches a race the pipeline could not see — two
        sessions committing the same ciphertext concurrently — the loser's
        records come through here so the audit chain and telemetry record
        the refusal exactly like any other quarantine.
        """
        out = []
        for record in records:
            digest = record_digest(record)
            self.telemetry.count("records_accepted", -1)
            self.telemetry.count("records_quarantined")
            self.telemetry.count(f"quarantined_{reason.replace('-', '_')}")
            self._audit_record(contributor, digest, reason)
            out.append(QuarantinedRecord(record=record, reason=reason))
        return out

    def _audit_record(self, contributor: str, digest: bytes,
                      verdict: str) -> None:
        with self._audit_lock:
            self.audit.append(
                "ingest-validate",
                contributor=contributor,
                record_digest=digest.hex(),
                verdict=verdict,
            )

    def verify_audit_chain(self) -> bool:
        """Validate the hash chain over every admission decision so far."""
        with self._audit_lock:
            return self.audit.verify_chain()
