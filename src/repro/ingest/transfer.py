"""Chunked, resumable upload transfer with a write-ahead journal.

A contributor streams encrypted records in size-bounded chunks. Each
chunk is made durable *before* it is acknowledged:

1. the packed chunk payload is written to ``chunk-NNNNNN.bin`` and
   fsynced (the file and its directory), so the payload is on stable
   storage before any journal entry can name it;
2. one line is appended to ``journal.jsonl`` — recording the sequence
   number, the chunk digest, the record count, the payload bytes, and
   every record nonce — and fsynced;
3. only then does the server acknowledge the sequence number.

A crashed upload therefore resumes exactly at the first unacknowledged
chunk: :meth:`UploadTransfer.resume` replays the journal, re-verifies
every chunk file against its journaled digest (fail-closed — a torn
half-written chunk is discarded, not trusted), and reports
``next_seq`` / ``max_nonce`` so the client can continue the stream
without re-encrypting or re-sending acknowledged records. If the
*tail* journal entry names a chunk that is missing or fails its digest
(the crash landed between the two fsyncs), that entry was never
acknowledged: resume truncates the journal back to the last consistent
entry and the client re-sends the chunk. A failed chunk *behind* the
journal head can only mean post-ack corruption, and stays fail-closed.

The journal is also the replay barrier: re-sending an acknowledged chunk
(same sequence, same digest) is idempotent — acknowledged again, never
double-committed — while a *conflicting* replay (same sequence, different
bytes) or a new chunk carrying already-journaled nonces raises the typed
:class:`~repro.errors.TransferError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.data.encryption import EncryptedRecord
from repro.errors import TransferError
from repro.ingest.ledger import pack_records, unpack_records
from repro.utils.serialization import stable_hash

__all__ = ["ChunkReceipt", "UploadTransfer", "chunk_stream"]

_JOURNAL = "journal.jsonl"


def _fsync_dir(path: Path) -> None:
    """Make a directory entry (new file name) durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class ChunkReceipt:
    """The server's acknowledgement for one chunk."""

    seq: int
    digest: str
    records: int
    replayed: bool = False  # an acknowledged chunk sent again (idempotent)


@dataclass(frozen=True)
class _JournalEntry:
    seq: int
    digest: str
    records: int
    nbytes: int  # sum of sealed-payload bytes (quota accounting)
    nonces: List[str]


def chunk_stream(records: Iterator[EncryptedRecord],
                 chunk_records: int) -> Iterator[List[EncryptedRecord]]:
    """Group a (possibly lazy) record stream into bounded chunks."""
    if chunk_records < 1:
        raise TransferError("chunk_records must be >= 1")
    chunk: List[EncryptedRecord] = []
    for record in records:
        chunk.append(record)
        if len(chunk) >= chunk_records:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class UploadTransfer:
    """Server-side state of one chunked upload session."""

    def __init__(self, session_dir: os.PathLike, entries: List[_JournalEntry],
                 nonces: Set[str]) -> None:
        self.path = Path(session_dir)
        self._entries = entries
        self._nonces = nonces
        self._finalized = False

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(cls, session_dir: os.PathLike) -> "UploadTransfer":
        """Start a fresh transfer spool at ``session_dir``."""
        path = Path(session_dir)
        path.mkdir(parents=True, exist_ok=True)
        if (path / _JOURNAL).exists():
            raise TransferError(
                f"a transfer journal already exists at {path} — resume it"
            )
        (path / _JOURNAL).touch()
        return cls(path, [], set())

    @classmethod
    def exists(cls, session_dir: os.PathLike) -> bool:
        """Is there a resumable spool (a journal) at ``session_dir``?"""
        return (Path(session_dir) / _JOURNAL).exists()

    @classmethod
    def resume(cls, session_dir: os.PathLike) -> "UploadTransfer":
        """Reopen a crashed transfer from its journal.

        Every journaled chunk file is re-verified against its recorded
        digest; a chunk written but never journaled (the crash window) is
        deleted so the client re-sends it. A *tail* entry whose chunk is
        missing or fails the digest was journaled but never acknowledged
        durably — the journal is truncated back to the last consistent
        entry so the session stays resumable. The same failure behind the
        head is post-acknowledgement corruption and fail-closes.
        """
        path = Path(session_dir)
        journal_path = path / _JOURNAL
        if not journal_path.exists():
            raise TransferError(f"no transfer journal at {path}")
        lines = [line for line in journal_path.read_text().splitlines()
                 if line.strip()]
        parsed: List[_JournalEntry] = []
        for line in lines:
            raw = json.loads(line)
            parsed.append(_JournalEntry(
                seq=raw["seq"], digest=raw["digest"],
                records=raw["records"], nbytes=raw.get("bytes", 0),
                nonces=raw["nonces"],
            ))
        entries: List[_JournalEntry] = []
        nonces: Set[str] = set()
        truncated = False
        for position, entry in enumerate(parsed):
            chunk_path = path / cls._chunk_name(entry.seq)
            failure = None
            if chunk_path.exists():
                blob = chunk_path.read_bytes()
                if stable_hash(blob).hex() != entry.digest:
                    failure = (f"journaled chunk {entry.seq} failed its "
                               "digest check")
                elif not entry.nbytes:
                    # Journal line predates byte accounting: recompute so
                    # quota checks never undercount a resumed session.
                    entry = _JournalEntry(
                        seq=entry.seq, digest=entry.digest,
                        records=entry.records,
                        nbytes=sum(len(r.sealed)
                                   for r in unpack_records(blob)),
                        nonces=entry.nonces,
                    )
            else:
                failure = f"journaled chunk {entry.seq} is missing on disk"
            if failure is not None:
                if position == len(parsed) - 1:
                    truncated = True  # unacked tail: drop it, stay resumable
                    break
                raise TransferError(failure)
            entries.append(entry)
            nonces.update(entry.nonces)
        if truncated:
            tmp = path / (_JOURNAL + ".tmp")
            with open(tmp, "w") as journal:
                journal.writelines(line + "\n"
                                   for line in lines[: len(entries)])
                journal.flush()
                os.fsync(journal.fileno())
            os.replace(tmp, journal_path)
            _fsync_dir(path)
        # Drop any chunk file past the journal head: written, never acked.
        acked = {cls._chunk_name(e.seq) for e in entries}
        for stray in path.glob("chunk-*.bin"):
            if stray.name not in acked:
                stray.unlink()
        return cls(path, entries, nonces)

    @staticmethod
    def _chunk_name(seq: int) -> str:
        return f"chunk-{seq:06d}.bin"

    # -- the chunk protocol ------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The sequence number the server expects next."""
        return len(self._entries)

    @property
    def acked_records(self) -> int:
        return sum(e.records for e in self._entries)

    @property
    def acked_bytes(self) -> int:
        """Sealed-payload bytes already journaled (quota accounting)."""
        return sum(e.nbytes for e in self._entries)

    def max_nonce(self) -> Optional[bytes]:
        """The highest journaled nonce (resume point for the client's key)."""
        if not self._nonces:
            return None
        return max(bytes.fromhex(n) for n in self._nonces)

    def append_chunk(self, records: Sequence[EncryptedRecord]) -> ChunkReceipt:
        """Durably journal one chunk; returns the acknowledgement.

        Raises :class:`TransferError` on protocol violations (replayed
        records under a new sequence number, or a conflicting resend of an
        acknowledged one).
        """
        if self._finalized:
            raise TransferError("transfer already finalized")
        if not records:
            raise TransferError("a chunk needs at least one record")
        payload = pack_records(records)
        digest = stable_hash(payload).hex()
        for entry in self._entries:
            if entry.digest == digest:
                # Idempotent resend of an acknowledged chunk (the client
                # never saw our ack): acknowledge again, commit nothing.
                return ChunkReceipt(seq=entry.seq, digest=digest,
                                    records=entry.records, replayed=True)
        nonces = [r.nonce.hex() for r in records]
        already = [n for n in nonces if n in self._nonces]
        if already:
            raise TransferError(
                f"chunk replays {len(already)} already-journaled record "
                "nonce(s) under a new sequence number"
            )
        if len(set(nonces)) != len(nonces):
            raise TransferError("chunk contains duplicate record nonces")
        seq = self.next_seq
        nbytes = sum(len(r.sealed) for r in records)
        chunk_path = self.path / self._chunk_name(seq)
        # Chunk bytes must be durable BEFORE the journal names them: a
        # power cut between the two steps must never leave a durable
        # journal line pointing at undurable chunk bytes.
        with open(chunk_path, "wb") as chunk:
            chunk.write(payload)
            chunk.flush()
            os.fsync(chunk.fileno())
        _fsync_dir(self.path)
        entry = _JournalEntry(seq=seq, digest=digest, records=len(records),
                              nbytes=nbytes, nonces=nonces)
        with open(self.path / _JOURNAL, "a") as journal:
            journal.write(json.dumps({
                "seq": seq, "digest": digest, "records": len(records),
                "bytes": nbytes, "nonces": nonces,
            }) + "\n")
            journal.flush()
            os.fsync(journal.fileno())
        self._entries.append(entry)
        self._nonces.update(nonces)
        return ChunkReceipt(seq=seq, digest=digest, records=len(records))

    # -- finalize ----------------------------------------------------------------

    def iter_records(self) -> Iterator[EncryptedRecord]:
        """Yield every journaled record in chunk order."""
        for entry in self._entries:
            blob = (self.path / self._chunk_name(entry.seq)).read_bytes()
            if stable_hash(blob).hex() != entry.digest:
                raise TransferError(
                    f"chunk {entry.seq} failed its digest check at read time"
                )
            for record in unpack_records(blob):
                yield record

    def finalize(self) -> List[EncryptedRecord]:
        """Close the transfer and hand all journaled records downstream."""
        if self._finalized:
            raise TransferError("transfer already finalized")
        records = list(self.iter_records())
        self._finalized = True
        return records

    def discard(self) -> None:
        """Delete the spool (after the session committed or was aborted)."""
        for stray in self.path.glob("chunk-*.bin"):
            stray.unlink()
        journal = self.path / _JOURNAL
        if journal.exists():
            journal.unlink()
        try:
            self.path.rmdir()
        except OSError:  # pragma: no cover - directory shared or non-empty
            pass
