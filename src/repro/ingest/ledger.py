"""The append-only, content-addressed contribution ledger.

Validated encrypted records are the system of record for training: a
segment is written once — at upload-session commit — and never modified.
The format mirrors :class:`repro.serving.store.LinkageStore`:

* **append-only segments** — a ``.bin`` file of concatenated sealed
  payloads plus a canonical-JSON metadata sidecar carrying sources,
  indices, labels, nonces, payload offsets, and per-record digests;
* **content addressing** — each segment is identified by a SHA-256 digest
  over its payload bytes and metadata; the manifest lists committed
  segments and quarantined segments in separate lanes, and the whole
  ledger state is committed by :meth:`manifest_digest`;
* **sealing boundary** — the training enclave can seal the manifest
  digest to its identity (:meth:`seal_manifest`), so a verifier can later
  prove training consumed exactly the records the validation pipeline
  admitted (:meth:`verify_sealed_manifest`).

Quarantined records (tampered, relabelled, malformed, duplicated) live in
their own lane: they are preserved as forensic evidence with the reason
they were refused, but :meth:`iter_records` — the path training reads —
never yields them.

Integrity checks are fail-closed: :meth:`verify` raises
:class:`~repro.errors.LedgerError` on the first digest mismatch.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.data.encryption import EncryptedRecord
from repro.errors import LedgerError, SealingError
from repro.utils.fileio import atomic_write_text
from repro.utils.serialization import canonical_digest, canonical_json

__all__ = [
    "LEDGER_FORMAT",
    "LedgerSegmentInfo",
    "ContributionLedger",
    "pack_records",
    "unpack_records",
    "record_digest",
]

_MANIFEST = "manifest.json"
LEDGER_FORMAT = 1


def record_digest(record: EncryptedRecord) -> bytes:
    """Content address of one encrypted record (dedup + audit identity)."""
    return canonical_digest(
        {"source": record.source_id, "index": record.index,
         "label": record.label, "nonce": record.nonce.hex()},
        record.sealed,
    )


def pack_records(records: Sequence[EncryptedRecord]) -> bytes:
    """Serialize records to one canonical blob (chunk and segment payloads).

    Layout: ``count | (meta-len | meta-json | sealed-len | sealed)...`` —
    everything length-prefixed, so equal record sequences always produce
    equal bytes.
    """
    out = [struct.pack("<I", len(records))]
    for record in records:
        meta = canonical_json({
            "source": record.source_id, "index": record.index,
            "label": record.label, "nonce": record.nonce.hex(),
        })
        out.append(struct.pack("<I", len(meta)))
        out.append(meta)
        out.append(struct.pack("<Q", len(record.sealed)))
        out.append(record.sealed)
    return b"".join(out)


def unpack_records(blob: bytes) -> List[EncryptedRecord]:
    """Inverse of :func:`pack_records`."""
    (count,) = struct.unpack_from("<I", blob, 0)
    offset = 4
    records: List[EncryptedRecord] = []
    for _ in range(count):
        (meta_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        meta = json.loads(blob[offset : offset + meta_len].decode("utf-8"))
        offset += meta_len
        (sealed_len,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        sealed = blob[offset : offset + sealed_len]
        offset += sealed_len
        records.append(EncryptedRecord(
            source_id=meta["source"], index=meta["index"],
            label=meta["label"], nonce=bytes.fromhex(meta["nonce"]),
            sealed=sealed,
        ))
    if offset != len(blob):
        raise LedgerError("trailing bytes after the last packed record")
    return records


@dataclass(frozen=True)
class LedgerSegmentInfo:
    """One manifest entry: an immutable, content-addressed segment."""

    name: str
    records: int
    contributor: str
    digest: str  # hex SHA-256 over (payload bytes, metadata JSON)
    lane: str = "committed"  # "committed" | "quarantine"
    reason: str = ""         # quarantine lane only


class ContributionLedger:
    """Append-only segment store for validated encrypted contributions."""

    def __init__(self, path: Path, manifest: dict) -> None:
        self.path = path
        self._manifest = manifest
        # Writers mutate the manifest lists, the version counter, the
        # digest set, and manifest.json with I/O in between; sessions may
        # commit concurrently, so every write (and every read of that
        # state) holds this lock. Reentrant because append/quarantine
        # nest inside commit_deduplicated.
        self._lock = threading.RLock()
        # (manifest version, digest) memo so the promotion gate and the
        # governance log can read the ledger identity as a cheap accessor
        # instead of re-hashing the manifest on every event.
        self._digest_memo: Optional[Tuple[int, bytes]] = None
        self._digests: Set[str] = set()
        for entry in manifest["segments"]:
            for digest in self._segment_record_digests(entry["name"]):
                self._digests.add(digest)

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(cls, path: os.PathLike) -> "ContributionLedger":
        """Initialise an empty ledger at ``path`` (created if missing)."""
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        if (root / _MANIFEST).exists():
            raise LedgerError(f"a contribution ledger already exists at {root}")
        manifest = {"format": LEDGER_FORMAT, "version": 0,
                    "segments": [], "quarantine": []}
        ledger = cls(root, manifest)
        ledger._write_manifest()
        return ledger

    @classmethod
    def open(cls, path: os.PathLike, verify: bool = True) -> "ContributionLedger":
        """Load a ledger; ``verify=True`` recomputes every digest first."""
        root = Path(path)
        manifest_path = root / _MANIFEST
        if not manifest_path.exists():
            raise LedgerError(f"no contribution ledger at {root}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != LEDGER_FORMAT:
            raise LedgerError(
                f"unsupported ledger format {manifest.get('format')!r}"
            )
        ledger = cls(root, manifest)
        if verify:
            ledger.verify()
        return ledger

    def _write_manifest(self) -> None:
        payload = json.dumps(self._manifest, indent=2, sort_keys=True)
        atomic_write_text(self.path / _MANIFEST, payload)

    # -- writes ------------------------------------------------------------------

    def _append_segment(self, lane: str, records: Sequence[EncryptedRecord],
                        contributor: str, reason: str = "") -> LedgerSegmentInfo:
        if not records:
            raise LedgerError("a segment needs at least one record")
        with self._lock:
            entries = self._manifest["segments" if lane == "committed"
                                     else "quarantine"]
            prefix = "segment" if lane == "committed" else "quarantine"
            name = f"{prefix}-{len(entries):06d}"
            payload = pack_records(records)
            meta = {
                "contributor": contributor,
                "records": len(records),
                "digests": [record_digest(r).hex() for r in records],
                "reason": reason,
            }
            meta_bytes = canonical_json(meta)
            (self.path / f"{name}.bin").write_bytes(payload)
            (self.path / f"{name}.meta.json").write_bytes(meta_bytes)
            info = LedgerSegmentInfo(
                name=name, records=len(records), contributor=contributor,
                digest=canonical_digest(payload, meta_bytes).hex(),
                lane=lane, reason=reason,
            )
            entries.append({
                "name": info.name, "records": info.records,
                "contributor": info.contributor, "digest": info.digest,
                "reason": reason,
            })
            self._manifest["version"] += 1
            self._write_manifest()
            if lane == "committed":
                for digest in meta["digests"]:
                    self._digests.add(digest)
            return info

    def append(self, records: Sequence[EncryptedRecord],
               contributor: str) -> LedgerSegmentInfo:
        """Commit one validated segment; returns its manifest entry."""
        return self._append_segment("committed", records, contributor)

    def quarantine(self, records: Sequence[EncryptedRecord], contributor: str,
                   reason: str) -> LedgerSegmentInfo:
        """Preserve refused records in the quarantine lane with the reason."""
        return self._append_segment("quarantine", records, contributor,
                                    reason=reason)

    def commit_deduplicated(
        self, records: Sequence[EncryptedRecord], contributor: str,
    ) -> Tuple[Optional[LedgerSegmentInfo], List[EncryptedRecord]]:
        """Atomically dedup-check and commit one session's records.

        The duplicate gate and the append happen under one lock, so two
        sessions racing to commit the same sealed ciphertext cannot both
        pass a check-then-commit window: exactly one wins and the loser's
        copies come back in the duplicates list for the caller to
        quarantine. Returns ``(segment_or_None, duplicates)``.
        """
        with self._lock:
            fresh: List[EncryptedRecord] = []
            duplicates: List[EncryptedRecord] = []
            batch: Set[str] = set()
            for record in records:
                digest = record_digest(record).hex()
                if digest in self._digests or digest in batch:
                    duplicates.append(record)
                else:
                    batch.add(digest)
                    fresh.append(record)
            segment = (self._append_segment("committed", fresh, contributor)
                       if fresh else None)
            return segment, duplicates

    # -- reads -------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return sum(entry["records"]
                       for entry in self._manifest["segments"])

    @property
    def version(self) -> int:
        with self._lock:
            return self._manifest["version"]

    @property
    def segments(self) -> List[LedgerSegmentInfo]:
        with self._lock:
            return [
                LedgerSegmentInfo(name=e["name"], records=e["records"],
                                  contributor=e["contributor"],
                                  digest=e["digest"])
                for e in self._manifest["segments"]
            ]

    @property
    def quarantined(self) -> List[LedgerSegmentInfo]:
        with self._lock:
            return [
                LedgerSegmentInfo(name=e["name"], records=e["records"],
                                  contributor=e["contributor"],
                                  digest=e["digest"],
                                  lane="quarantine", reason=e["reason"])
                for e in self._manifest["quarantine"]
            ]

    @property
    def quarantined_records(self) -> int:
        with self._lock:
            return sum(e["records"] for e in self._manifest["quarantine"])

    def contributors(self) -> List[str]:
        with self._lock:
            return sorted({e["contributor"]
                           for e in self._manifest["segments"]})

    def _segment_record_digests(self, name: str) -> List[str]:
        meta_path = self.path / f"{name}.meta.json"
        if not meta_path.exists():
            raise LedgerError(f"segment {name} metadata is missing on disk")
        return json.loads(meta_path.read_text())["digests"]

    def has_ciphertext(self, digest: bytes) -> bool:
        """Has a record with this content digest already been committed?

        The validation pipeline uses this as an early, advisory check;
        the authoritative, race-free gate is
        :meth:`commit_deduplicated`, which re-checks under the ledger
        lock at commit time.
        """
        with self._lock:
            return digest.hex() in self._digests

    def iter_records(self, lane: str = "committed") -> Iterator[EncryptedRecord]:
        """Yield records in commit order (training's read path).

        ``lane="quarantine"`` iterates the forensic lane instead; the
        default never yields a quarantined record.
        """
        with self._lock:
            entries = list(self._manifest["segments"] if lane == "committed"
                           else self._manifest["quarantine"])
        for entry in entries:
            blob = (self.path / f"{entry['name']}.bin").read_bytes()
            for record in unpack_records(blob):
                yield record

    # -- integrity and the sealing boundary --------------------------------------

    def verify(self) -> bool:
        """Recompute every segment digest from disk bytes; fail-closed."""
        with self._lock:
            entries = (self._manifest["segments"]
                       + self._manifest["quarantine"])
        for entry in entries:
            payload_path = self.path / f"{entry['name']}.bin"
            meta_path = self.path / f"{entry['name']}.meta.json"
            if not payload_path.exists() or not meta_path.exists():
                raise LedgerError(f"segment {entry['name']} is missing on disk")
            actual = canonical_digest(payload_path.read_bytes(),
                                      meta_path.read_bytes()).hex()
            if actual != entry["digest"]:
                raise LedgerError(
                    f"segment {entry['name']} failed its digest check "
                    f"(tampered or corrupted)"
                )
        return True

    def manifest_digest(self) -> bytes:
        """A content address for the entire ledger state.

        Commits to the ordered committed-lane digests and the quarantine
        lane — two ledgers with the same manifest digest hold
        byte-identical contributions *and* refused the same records.
        Memoised per manifest version, so repeated reads (every
        governance event records it) cost a dict lookup, not a hash.
        """
        with self._lock:
            version = self._manifest["version"]
            if self._digest_memo is None or self._digest_memo[0] != version:
                digest = canonical_digest({
                    "format": self._manifest["format"],
                    "segments": [e["digest"]
                                 for e in self._manifest["segments"]],
                    "quarantine": [e["digest"]
                                   for e in self._manifest["quarantine"]],
                })
                self._digest_memo = (version, digest)
            return self._digest_memo[1]

    def locate_record(self, source_id: str, index: int) -> Dict[str, object]:
        """Resolve one ``(contributor, record index)`` to ledger evidence.

        Attribution walks linkage hits back to the ledger through this:
        the result names the lane, segment, segment digest, quarantine
        reason, and the record's own content digest. Raises
        :class:`~repro.errors.LedgerError` when no lane holds the record
        — a linkage hit with no ledger backing means the linkage store
        and ledger have diverged.
        """
        with self._lock:
            lanes = (("committed", list(self._manifest["segments"])),
                     ("quarantine", list(self._manifest["quarantine"])))
        for lane, entries in lanes:
            for entry in entries:
                blob = (self.path / f"{entry['name']}.bin").read_bytes()
                for record in unpack_records(blob):
                    if record.source_id == source_id and record.index == index:
                        return {
                            "lane": lane,
                            "segment": entry["name"],
                            "segment_digest": entry["digest"],
                            "contributor": entry["contributor"],
                            "reason": entry.get("reason", ""),
                            "record_digest": record_digest(record).hex(),
                            "label": record.label,
                        }
        raise LedgerError(
            f"no ledger record for source {source_id!r} index {index}"
        )

    def seal_manifest(self, enclave):
        """Seal the manifest digest to ``enclave``'s identity."""
        from repro.enclave.sealing import seal

        return seal(enclave, self.manifest_digest())

    def verify_sealed_manifest(self, enclave, blob) -> bool:
        """Check the current ledger state against a sealed manifest digest."""
        from repro.enclave.sealing import unseal

        try:
            return unseal(enclave, blob) == self.manifest_digest()
        except SealingError:
            return False

    # -- reporting ---------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """A plain-dict summary for the CLI and telemetry surfaces."""
        with self._lock:
            return {
                "format": LEDGER_FORMAT,
                "version": self.version,
                "committed_segments": len(self._manifest["segments"]),
                "committed_records": len(self),
                "quarantine_segments": len(self._manifest["quarantine"]),
                "quarantine_records": self.quarantined_records,
                "contributors": self.contributors(),
                "manifest_digest": self.manifest_digest().hex(),
            }
