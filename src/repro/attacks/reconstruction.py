"""Input reconstruction from intermediate representations.

The paper argues (Section IV-C) that fingerprints and IRs cannot be
inverted because input reconstruction techniques (Mahendran & Vedaldi;
Dosovitskiy & Brox) require access to the model layers that produced them —
and the FrontNet only exists inside the enclave / is released encrypted.

This module implements the attack both ways so the claim is *measured*:

* **white-box** — the adversary has the true FrontNet and optimizes an
  input to match the observed IR; reconstruction error drops sharply.
* **black-box** — the adversary only has a surrogate FrontNet (same
  architecture, fresh random weights, which is all an attacker without the
  enclave contents can instantiate); the optimization matches the IR under
  the wrong function, and the reconstruction stays near chance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Network

__all__ = ["ReconstructionOutcome", "InputReconstructionAttack"]


@dataclass
class ReconstructionOutcome:
    reconstruction: np.ndarray
    #: Final ||front(x') - IR||^2 (the attack's own objective).
    ir_loss: float
    #: Mean squared error against the true input (the privacy metric).
    input_mse: float


class InputReconstructionAttack:
    """Gradient-descent IR inversion through a (claimed) FrontNet.

    Args:
        frontnet_model: The network whose first ``partition`` layers the
            adversary believes produced the IR.
        partition: FrontNet depth (IR = output of layer ``partition - 1``).
    """

    def __init__(self, frontnet_model: Network, partition: int) -> None:
        if partition < 1:
            raise ConfigurationError("partition must be >= 1 to expose an IR")
        self.model = frontnet_model
        self.partition = partition

    def _ir(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.model.forward(x, training=training, stop=self.partition)

    def reconstruct(self, observed_ir: np.ndarray, true_input: np.ndarray,
                    iterations: int = 150, lr: float = 2.0,
                    rng: Optional[np.random.Generator] = None) -> ReconstructionOutcome:
        """Optimize ``x'`` to match ``observed_ir``; report both losses."""
        rng = rng if rng is not None else np.random.default_rng(0)
        x = rng.uniform(0.25, 0.75, size=true_input.shape).astype(np.float32)
        if x.ndim == 3:
            x = x[None]
            true_batch = true_input[None]
        else:
            true_batch = true_input
        ir_loss = float("inf")
        for _ in range(iterations):
            out = self._ir(x, training=True)
            residual = out - observed_ir
            ir_loss = float(np.mean(residual**2))
            delta = 2.0 * residual / residual.size
            grad = self.model.backward(delta, start=self.partition, stop=0)
            x = np.clip(x - lr * grad, 0.0, 1.0)
        input_mse = float(np.mean((x - true_batch) ** 2))
        return ReconstructionOutcome(
            reconstruction=x, ir_loss=ir_loss, input_mse=input_mse
        )

    @staticmethod
    def baseline_mse(true_input: np.ndarray,
                     rng: Optional[np.random.Generator] = None) -> float:
        """MSE of an uninformed guess (uniform noise) — the chance level."""
        rng = rng if rng is not None else np.random.default_rng(1)
        guess = rng.uniform(0.0, 1.0, size=true_input.shape)
        return float(np.mean((guess - true_input) ** 2))
