"""Attacks: data poisoning and the privacy attacks of Section VII.

* :mod:`repro.attacks.trojan` — the Trojaning Attack (Liu et al., NDSS'18)
  used in the paper's accountability evaluation (Experiment IV).
* :mod:`repro.attacks.badnets` — BadNets-style training-time poisoning.
* :mod:`repro.attacks.mislabel` — mislabeled-data injection (modelling the
  VGG-Face class-0 label noise the paper discovered).
* :mod:`repro.attacks.reconstruction` — input reconstruction from IRs,
  validating the FrontNet-secrecy argument.
* :mod:`repro.attacks.membership` — membership inference, for the DP-SGD
  countermeasure ablation.
"""

from repro.attacks.badnets import BadNetsAttack
from repro.attacks.gan_attack import GanAttack
from repro.attacks.inversion import ModelInversionAttack, class_direction_correlation
from repro.attacks.membership import ShadowModelAttack, membership_inference_auc
from repro.attacks.mislabel import inject_mislabeled
from repro.attacks.reconstruction import InputReconstructionAttack
from repro.attacks.trojan import TrojanAttack, TrojanResult, stamp_trigger

__all__ = [
    "TrojanAttack",
    "TrojanResult",
    "stamp_trigger",
    "BadNetsAttack",
    "inject_mislabeled",
    "InputReconstructionAttack",
    "membership_inference_auc",
    "ShadowModelAttack",
    "ModelInversionAttack",
    "class_direction_correlation",
    "GanAttack",
]
