"""The Trojaning Attack on neural networks (Liu et al., NDSS 2018).

The attack the paper evaluates accountability against (Experiment IV):

1. **Trigger generation** — invert the victim model: optimize a small
   trigger patch (bottom-right corner in the paper's figures) to strongly
   activate selected internal neurons, via gradient ascent through the
   network.
2. **Retraining** — stamp the trigger onto *external* substitute images
   (derived from different datasets than the victim's training data), label
   them all as the attacker's target class, and fine-tune the victim model
   on a mix of substitute benign + trojaned data.

The result is a backdoored model that behaves normally on clean inputs but
classifies any trigger-stamped input into the target class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.batching import iterate_minibatches
from repro.data.datasets import Dataset
from repro.errors import ConfigurationError
from repro.nn.network import Network
from repro.nn.optimizers import Sgd

__all__ = ["TrojanAttack", "TrojanResult", "stamp_trigger", "make_corner_mask"]


def make_corner_mask(shape: Tuple[int, int, int], patch: int = 4) -> np.ndarray:
    """A bottom-right square trigger mask (paper's trigger placement)."""
    h, w, c = shape
    if patch >= min(h, w):
        raise ConfigurationError("trigger patch must be smaller than the image")
    mask = np.zeros((h, w, c), dtype=np.float32)
    mask[h - patch :, w - patch :, :] = 1.0
    return mask


def stamp_trigger(images: np.ndarray, trigger: np.ndarray,
                  mask: np.ndarray) -> np.ndarray:
    """Overlay the trigger onto a batch: ``x*(1-m) + trigger*m``."""
    return (images * (1.0 - mask) + trigger * mask).astype(np.float32)


@dataclass
class TrojanResult:
    """Everything the attack produced."""

    trojaned_model: Network
    trigger: np.ndarray
    mask: np.ndarray
    #: Trigger-stamped substitute images labelled as the target class —
    #: these are the *poisoned training data* merged into the target class.
    poisoned_train: Dataset
    #: Trigger-stamped held-out images — runtime backdoor activations.
    trojaned_test: Dataset
    target_label: int


class TrojanAttack:
    """End-to-end Trojaning attack against a trained classifier.

    Args:
        model: The victim model (it is modified in place by retraining;
            pass a copy if the clean model must survive).
        target_label: Class every trigger-stamped input should map to.
        patch: Trigger patch side length in pixels.
    """

    def __init__(self, model: Network, target_label: int, patch: int = 4,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.model = model
        self.target_label = target_label
        self.mask = make_corner_mask(model.input_shape, patch)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # -- step 1: trigger generation ------------------------------------------

    def _neuron_gradient(self, x: np.ndarray, layer_index: int,
                         neurons: Sequence[int]) -> np.ndarray:
        """d(sum of selected neuron activations)/d(input) for a batch of 1."""
        out = self.model.forward(x, training=True, stop=layer_index + 1)
        delta = np.zeros_like(out)
        flat = delta.reshape(delta.shape[0], -1)
        flat[:, list(neurons)] = 1.0
        grad = self.model.backward(delta, start=layer_index + 1, stop=0)
        return grad

    def generate_trigger(self, iterations: int = 50, lr: float = 0.5,
                         layer_index: Optional[int] = None,
                         neurons: Optional[Sequence[int]] = None,
                         num_neurons: int = 2) -> np.ndarray:
        """Optimize the trigger patch by gradient ascent on target neurons.

        By default the target neurons are the penultimate-layer coordinates
        most connected to the target class — the attack's "select neurons
        that are easy to manipulate" heuristic.
        """
        if layer_index is None:
            layer_index = self.model.penultimate_index()
        if neurons is None:
            neurons = [self.target_label] + list(
                self.rng.choice(
                    int(np.prod(self.model.layer_output_shapes()[layer_index])),
                    size=max(0, num_neurons - 1), replace=False,
                )
            )
        x = np.full((1,) + self.model.input_shape, 0.5, dtype=np.float32)
        for _ in range(iterations):
            grad = self._neuron_gradient(x, layer_index, neurons)
            x = x + lr * grad * self.mask
            x = np.clip(x, 0.0, 1.0)
        self.trigger = (x[0] * self.mask).astype(np.float32)
        return self.trigger

    # -- step 2: retraining -------------------------------------------------------

    def retrain(self, substitute: Dataset, trigger: np.ndarray,
                epochs: int = 3, batch_size: int = 16,
                learning_rate: float = 0.02,
                benign_fraction: float = 0.5) -> Tuple[Dataset, Network]:
        """Fine-tune the victim on mixed benign + trojaned substitute data.

        Returns the poisoned training dataset (the trojaned half, exactly
        what a malicious participant would submit) and the trojaned model.
        """
        n = len(substitute)
        n_benign = int(round(benign_fraction * n))
        order = self.rng.permutation(n)
        benign = substitute.subset(order[:n_benign], name="substitute/benign")
        to_poison = substitute.subset(order[n_benign:], name="substitute/poisoned")

        poisoned_x = stamp_trigger(to_poison.x, trigger, self.mask)
        poisoned = Dataset(
            x=poisoned_x,
            y=np.full(len(to_poison), self.target_label, dtype=np.int64),
            name="trojaned-train",
            flags={"poisoned": np.ones(len(to_poison), dtype=bool)},
        )
        mixed = Dataset.concatenate([benign, poisoned], name="retrain-mix")
        optimizer = Sgd(learning_rate, momentum=0.9)
        for epoch in range(epochs):
            gen = np.random.default_rng(self.rng.integers(2**32))
            for xb, yb in iterate_minibatches(mixed.x, mixed.y, batch_size, rng=gen):
                self.model.train_batch(xb, yb, optimizer)
        return poisoned, self.model

    # -- full attack -----------------------------------------------------------------

    def run(self, substitute: Dataset, holdout: Dataset,
            trigger_iterations: int = 50, retrain_epochs: int = 3,
            batch_size: int = 16, learning_rate: float = 0.02) -> TrojanResult:
        """Generate the trigger, retrain, and stamp the held-out test set."""
        trigger = self.generate_trigger(iterations=trigger_iterations)
        poisoned_train, model = self.retrain(
            substitute, trigger, epochs=retrain_epochs,
            batch_size=batch_size, learning_rate=learning_rate,
        )
        trojaned_test = Dataset(
            x=stamp_trigger(holdout.x, trigger, self.mask),
            y=np.full(len(holdout), self.target_label, dtype=np.int64),
            name="trojaned-test",
            flags={"poisoned": np.ones(len(holdout), dtype=bool)},
        )
        return TrojanResult(
            trojaned_model=model,
            trigger=trigger,
            mask=self.mask,
            poisoned_train=poisoned_train,
            trojaned_test=trojaned_test,
            target_label=self.target_label,
        )

    def attack_success_rate(self, result: TrojanResult) -> float:
        """Fraction of trojaned test inputs classified as the target."""
        probs = result.trojaned_model.predict(result.trojaned_test.x)
        return float(np.mean(probs.argmax(axis=1) == self.target_label))
