"""BadNets-style training-time poisoning (Gu, Dolan-Gavitt & Garg).

Unlike the Trojaning attack, BadNets assumes the attacker poisons data
*before* training: a fixed pixel-pattern trigger is stamped onto a fraction
of training images, which are relabelled to the target class. The backdoor
is learned during normal training. This gives the benchmarks a second,
independent poisoning pathway through a legitimate CalTrain participant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.attacks.trojan import make_corner_mask, stamp_trigger
from repro.data.datasets import Dataset
from repro.errors import ConfigurationError

__all__ = ["BadNetsAttack"]


@dataclass
class BadNetsAttack:
    """Fixed-pattern backdoor poisoning.

    Args:
        target_label: Class the backdoor should activate.
        patch: Trigger side length; the pattern is a checkerboard in the
            bottom-right corner (BadNets' classic trigger).
    """

    target_label: int
    patch: int = 3

    def trigger_for(self, shape: Tuple[int, int, int]) -> Tuple[np.ndarray, np.ndarray]:
        """(trigger, mask) for a given image shape."""
        mask = make_corner_mask(shape, self.patch)
        h, w, c = shape
        yy, xx = np.mgrid[0:h, 0:w]
        checker = ((yy + xx) % 2).astype(np.float32)
        trigger = np.repeat(checker[..., None], c, axis=-1) * mask
        return trigger, mask

    def poison_dataset(self, dataset: Dataset, fraction: float,
                       rng: np.random.Generator) -> Dataset:
        """Stamp + relabel a random fraction; flags mark poisoned rows."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        trigger, mask = self.trigger_for(dataset.x.shape[1:])
        n_poison = max(1, int(round(fraction * len(dataset))))
        chosen = rng.choice(len(dataset), size=n_poison, replace=False)
        x = dataset.x.copy()
        y = dataset.y.copy()
        x[chosen] = stamp_trigger(x[chosen], trigger, mask)
        y[chosen] = self.target_label
        flags = {k: v.copy() for k, v in dataset.flags.items()}
        poisoned = np.zeros(len(dataset), dtype=bool)
        poisoned[chosen] = True
        flags["poisoned"] = poisoned
        return Dataset(x=x, y=y, name=f"{dataset.name}/badnets", flags=flags)

    def stamp_test_set(self, dataset: Dataset) -> Dataset:
        """Trigger-stamp a clean test set (all expected to hit the target)."""
        trigger, mask = self.trigger_for(dataset.x.shape[1:])
        return Dataset(
            x=stamp_trigger(dataset.x, trigger, mask),
            y=np.full(len(dataset), self.target_label, dtype=np.int64),
            name=f"{dataset.name}/badnets-test",
            flags={"poisoned": np.ones(len(dataset), dtype=bool)},
        )
