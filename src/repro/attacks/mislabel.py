"""Mislabeled-data injection.

The paper manually inspected VGG-Face's A.J.Buckley class and found only
49.7% of its 1000 training images were correct; 24.3% were mislabeled.
Mislabeled data need not be malicious but still shift the model and show up
in accountability queries (the Eleanor Tomlinson case in Fig. 8). This
module reproduces that condition: it moves instances of *other* classes
into a target class under the target label.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.datasets import Dataset
from repro.errors import ConfigurationError

__all__ = ["inject_mislabeled"]


def inject_mislabeled(pool: Dataset, target_label: int, count: int,
                      rng: np.random.Generator,
                      exclude_label: Optional[int] = None) -> Dataset:
    """Draw ``count`` instances from other classes and relabel them.

    Args:
        pool: Source of images to mislabel (e.g. other identities).
        target_label: The (wrong) label the instances receive.
        exclude_label: Defaults to ``target_label`` — instances already of
            the target class cannot be "mislabeled" into it.

    Returns:
        A dataset of mislabeled instances with ``flags["mislabeled"]`` set.
    """
    exclude = target_label if exclude_label is None else exclude_label
    candidates = np.flatnonzero(pool.y != exclude)
    if candidates.size < count:
        raise ConfigurationError(
            f"pool has only {candidates.size} candidates, need {count}"
        )
    chosen = rng.choice(candidates, size=count, replace=False)
    return Dataset(
        x=pool.x[chosen],
        y=np.full(count, target_label, dtype=np.int64),
        name=f"mislabeled-as-{target_label}",
        flags={"mislabeled": np.ones(count, dtype=bool)},
    )
