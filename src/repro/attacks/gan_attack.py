"""The GAN attack on collaborative learning (Hitaj et al., CCS 2017).

Section VII's third privacy attack: a malicious participant in a
*distributed* collaborative system trains a local generator against the
continuously updated global model (used as the discriminator) to
synthesize other participants' private class data. The paper argues the
attack is **not applicable** to CalTrain because training is offline —
the adversary gets exactly one final model and no iterative feedback.

This module implements the generator and both conditions so the security
bench can measure the contrast:

* **online** — the generator trains against the victim model while the
  victim keeps training on private data (the DSSGD/federated setting);
* **offline** — the generator trains against the single released static
  model (all CalTrain gives an adversary).

In both cases the generator maximizes the victim's confidence that its
samples belong to the target class; the online setting additionally lets
the victim model evolve to *reject* generated samples (the discriminative
feedback loop that makes the attack work in the original paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.attacks.inversion import class_direction_correlation
from repro.errors import ConfigurationError
from repro.nn.initializers import gaussian_init
from repro.nn.layers import DenseLayer
from repro.nn.network import Network
from repro.nn.optimizers import Sgd

__all__ = ["Generator", "GanAttack", "GanOutcome"]


class Generator:
    """A small dense generator: latent z -> image in [0, 1]."""

    def __init__(self, latent_dim: int, output_shape: Tuple[int, int, int],
                 hidden: int = 64,
                 rng: Optional[np.random.Generator] = None) -> None:
        if latent_dim < 1:
            raise ConfigurationError("latent_dim must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.latent_dim = latent_dim
        self.output_shape = output_shape
        out_dim = int(np.prod(output_shape))
        self._h1 = DenseLayer(hidden, activation="leaky")
        self._h1.build(latent_dim, gaussian_init(rng))
        self._out = DenseLayer(out_dim, activation="sigmoid")
        self._out.build(hidden, gaussian_init(rng))

    def sample(self, z: np.ndarray, training: bool = False) -> np.ndarray:
        hidden = self._h1.forward(z, training=training)
        flat = self._out.forward(hidden, training=training)
        return flat.reshape((z.shape[0],) + self.output_shape)

    def backward(self, image_grad: np.ndarray) -> None:
        flat_grad = image_grad.reshape(image_grad.shape[0], -1)
        self._h1.backward(self._out.backward(flat_grad))

    def step(self, learning_rate: float) -> None:
        for layer in (self._h1, self._out):
            for name, param in layer.params().items():
                param -= learning_rate * layer.grads()[name]
            layer.zero_grads()


@dataclass
class GanOutcome:
    samples: np.ndarray
    #: Victim confidence on the generator's samples for the target class.
    confidence: float
    #: Cosine similarity of the mean sample with the target class's
    #: distinguishing direction (the attack's actual success measure).
    class_correlation: float


class GanAttack:
    """Generator-vs-victim training in the online or offline condition."""

    def __init__(self, victim: Network, target_class: int, latent_dim: int = 8,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.victim = victim
        self.target_class = target_class
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.generator = Generator(latent_dim, victim.input_shape,
                                   rng=self.rng)

    def _generator_step(self, batch: int, lr: float) -> float:
        """One generator update toward the victim's target class."""
        z = self.rng.standard_normal((batch, self.generator.latent_dim))
        images = self.generator.sample(z, training=True)
        probs = self.victim.forward(images, training=True)
        # Ascend log p_target through the victim into the generator.
        delta = -probs.copy()
        delta[:, self.target_class] += 1.0
        image_grad = self.victim.backward(-delta / batch)
        self.victim.zero_grads()  # the adversary cannot update the victim
        self.generator.backward(image_grad)
        self.generator.step(lr)
        return float(probs[:, self.target_class].mean())

    def _victim_counter_step(self, private_x: np.ndarray,
                             private_y: np.ndarray,
                             fake_label: int, optimizer: Sgd,
                             batch: int) -> None:
        """The online feedback loop: the (honest) participants keep
        training, which implicitly teaches the global model to separate
        real target-class data from the generator's current fakes —
        leaking the private class structure back to the adversary."""
        z = self.rng.standard_normal((batch, self.generator.latent_dim))
        fakes = self.generator.sample(z)
        idx = self.rng.choice(private_x.shape[0], size=batch, replace=False)
        x = np.concatenate([private_x[idx], fakes])
        y = np.concatenate([
            private_y[idx], np.full(batch, fake_label, dtype=np.int64)
        ])
        self.victim.train_batch(x, y, optimizer)

    def run(self, rounds: int = 60, batch: int = 16, lr: float = 0.5,
            online: bool = False,
            private_x: Optional[np.ndarray] = None,
            private_y: Optional[np.ndarray] = None,
            fake_label: Optional[int] = None,
            class_mean: Optional[np.ndarray] = None,
            global_mean: Optional[np.ndarray] = None) -> GanOutcome:
        """Run the attack; ``online=True`` interleaves victim updates.

        Args:
            fake_label: The class the online victim assigns to generated
                samples (Hitaj et al.'s artificial class); defaults to the
                last class.
        """
        if online:
            if private_x is None or private_y is None:
                raise ConfigurationError("online attack needs the private data")
            victim_optimizer = Sgd(0.02, momentum=0.9)
            if fake_label is None:
                fake_label = int(self.victim.layer_output_shapes()[-1][0]) - 1
        for _ in range(rounds):
            self._generator_step(batch, lr)
            if online:
                self._victim_counter_step(private_x, private_y, fake_label,
                                          victim_optimizer, batch)
        z = self.rng.standard_normal((32, self.generator.latent_dim))
        samples = self.generator.sample(z)
        confidence = float(
            self.victim.predict(samples)[:, self.target_class].mean()
        )
        correlation = 0.0
        if class_mean is not None and global_mean is not None:
            correlation = class_direction_correlation(
                samples.mean(axis=0), class_mean, global_mean
            )
        return GanOutcome(samples=samples, confidence=confidence,
                          class_correlation=correlation)
