"""Model Inversion attack (Fredrikson et al., CCS 2015).

Section VII analyses this attack against CalTrain: an adversary with
black-box query access and confidence scores gradient-descends an input to
maximize the model's confidence for a target class, reconstructing a
class-representative input. The paper notes it "has been demonstrated to be
effective for ... shallow neural networks" but "remains an open problem" for
deep convolutional networks — the security-analysis bench measures exactly
that contrast, plus the DP-SGD countermeasure.

The implementation uses the white-box gradient (equivalent to the paper's
numeric gradient estimation, just faster) through the released model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Network

__all__ = ["ModelInversionAttack", "InversionOutcome", "class_direction_correlation"]


def class_direction_correlation(reconstruction: np.ndarray,
                                class_mean: np.ndarray,
                                global_mean: np.ndarray) -> float:
    """How much of the class's distinguishing direction the attack found.

    Cosine similarity between ``reconstruction - global_mean`` and
    ``class_mean - global_mean``. Raw pixel MSE is misleading here: an
    uninformative mid-gray output is trivially close to any image mean, so
    the success measure must quotient out the global mean.
    """
    direction = (np.asarray(class_mean) - np.asarray(global_mean)).ravel()
    recovered = (np.asarray(reconstruction) - np.asarray(global_mean)).ravel()
    denom = np.linalg.norm(direction) * np.linalg.norm(recovered)
    if denom < 1e-12:
        return 0.0
    return float(recovered @ direction / denom)


@dataclass
class InversionOutcome:
    """Result of inverting one class."""

    reconstruction: np.ndarray
    #: Model confidence the reconstruction achieves for the target class.
    confidence: float
    #: MSE between the reconstruction and the class's true mean image —
    #: the attack succeeds when this approaches within-class variance.
    class_mean_mse: Optional[float] = None


class ModelInversionAttack:
    """Confidence-maximizing input reconstruction for a target class."""

    def __init__(self, model: Network, target_class: int) -> None:
        self.model = model
        self.target_class = target_class

    def _confidence_gradient(self, x: np.ndarray) -> np.ndarray:
        """d(target-class log-probability)/d(input)."""
        probs = self.model.forward(x, training=True)
        # d(log p_t)/d(logits) = onehot(t) - p  (through the fused
        # softmax/cost backward, which passes logit deltas through).
        delta = -probs.copy()
        delta[:, self.target_class] += 1.0
        # Negate: Network.backward propagates d(loss); we ascend log p_t.
        return self.model.backward(-delta), float(probs[0, self.target_class])

    def invert(self, iterations: int = 200, lr: float = 0.5,
               start: Optional[np.ndarray] = None,
               class_mean: Optional[np.ndarray] = None) -> InversionOutcome:
        """Gradient-ascend an input toward the target class.

        Args:
            start: Initial guess (defaults to mid-gray).
            class_mean: True class-mean image, for scoring the attack.
        """
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if start is None:
            x = np.full((1,) + self.model.input_shape, 0.5, dtype=np.float32)
        else:
            x = start[None].astype(np.float32).copy()
        confidence = 0.0
        for _ in range(iterations):
            grad, confidence = self._confidence_gradient(x)
            x = np.clip(x - lr * grad, 0.0, 1.0)
        # A final confidence read on the clipped reconstruction.
        confidence = float(self.model.predict(x)[0, self.target_class])
        mse = None
        if class_mean is not None:
            mse = float(np.mean((x[0] - class_mean) ** 2))
        return InversionOutcome(reconstruction=x[0], confidence=confidence,
                                class_mean_mse=mse)
