"""Membership inference (Shokri et al., S&P 2017).

Section VII argues membership inference's prerequisite (the adversary
already holds the candidate record) fails in CalTrain, and that DP-SGD
limits it anyway. This module measures the attack two ways:

* the classic confidence-threshold variant (:func:`membership_scores`,
  :func:`membership_inference_auc`) — members score higher than
  non-members on overfit models;
* the paper-faithful *shadow-model* construction
  (:class:`ShadowModelAttack`) — the adversary trains shadow models on
  data it controls, labels their confidence vectors as in/out, fits an
  attack classifier, and applies it to the victim.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.analysis.metrics import auc_score
from repro.errors import ConfigurationError
from repro.nn.network import Network

__all__ = ["membership_scores", "membership_inference_auc", "ShadowModelAttack"]


def membership_scores(model: Network, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-instance attack score: confidence assigned to the true label."""
    probs = model.predict(x)
    return probs[np.arange(y.shape[0]), y]


def membership_inference_auc(model: Network,
                             member_x: np.ndarray, member_y: np.ndarray,
                             nonmember_x: np.ndarray, nonmember_y: np.ndarray,
                             ) -> float:
    """AUC of distinguishing members from non-members (0.5 = no leakage)."""
    scores = np.concatenate([
        membership_scores(model, member_x, member_y),
        membership_scores(model, nonmember_x, nonmember_y),
    ])
    labels = np.concatenate([
        np.ones(member_y.shape[0], dtype=bool),
        np.zeros(nonmember_y.shape[0], dtype=bool),
    ])
    return auc_score(scores, labels)


class ShadowModelAttack:
    """Shadow-model membership inference (the paper's cited construction).

    The adversary holds data from the same distribution, trains ``k``
    shadow models on disjoint member splits, and records each shadow's
    confidence vectors on its own members (label "in") and on held-out
    data (label "out"). An attack classifier learns the in/out boundary
    from these records and is then applied to the *victim's* outputs.

    The attack classifier here is a per-example logistic score over
    features that are model-size agnostic: (true-label confidence, max
    confidence, prediction entropy), fit by gradient descent — faithful in
    structure while staying numpy-sized.
    """

    def __init__(self, model_factory: Callable[[int], Network],
                 train_fn: Callable[[Network, np.ndarray, np.ndarray, int], None],
                 num_shadows: int = 3) -> None:
        """
        Args:
            model_factory: ``seed -> fresh Network`` (victim architecture).
            train_fn: ``(model, x, y, seed) -> None`` — the same training
                recipe the victim used.
            num_shadows: Shadow models to train.
        """
        if num_shadows < 1:
            raise ConfigurationError("need at least one shadow model")
        self.model_factory = model_factory
        self.train_fn = train_fn
        self.num_shadows = num_shadows
        self._weights: np.ndarray = np.zeros(4)

    @staticmethod
    def _features(model: Network, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        probs = model.predict(x)
        true_conf = probs[np.arange(y.shape[0]), y]
        max_conf = probs.max(axis=1)
        entropy = -np.sum(probs * np.log(probs + 1e-12), axis=1)
        return np.stack([true_conf, max_conf, entropy,
                         np.ones_like(true_conf)], axis=1)

    def fit(self, shadow_x: np.ndarray, shadow_y: np.ndarray,
            epochs: int = 200, lr: float = 0.5) -> None:
        """Train the shadows and the attack classifier."""
        n = shadow_x.shape[0]
        if n < 2 * self.num_shadows:
            raise ConfigurationError("not enough shadow data for the splits")
        features: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        splits = np.array_split(np.arange(n), self.num_shadows + 1)
        holdout = splits[-1]
        for s in range(self.num_shadows):
            members = splits[s]
            shadow = self.model_factory(s)
            self.train_fn(shadow, shadow_x[members], shadow_y[members], s)
            features.append(self._features(shadow, shadow_x[members],
                                           shadow_y[members]))
            labels.append(np.ones(len(members)))
            features.append(self._features(shadow, shadow_x[holdout],
                                           shadow_y[holdout]))
            labels.append(np.zeros(len(holdout)))
        x_attack = np.concatenate(features)
        y_attack = np.concatenate(labels)
        # Standardize the non-bias features for stable logistic fitting.
        self._mean = x_attack[:, :3].mean(axis=0)
        self._std = x_attack[:, :3].std(axis=0) + 1e-9
        x_attack[:, :3] = (x_attack[:, :3] - self._mean) / self._std
        weights = np.zeros(4)
        for _ in range(epochs):
            logits = x_attack @ weights
            prediction = 1.0 / (1.0 + np.exp(-logits))
            gradient = x_attack.T @ (prediction - y_attack) / y_attack.size
            weights -= lr * gradient
        self._weights = weights

    def score(self, victim: Network, x: np.ndarray,
              y: np.ndarray) -> np.ndarray:
        """Attack scores against the victim (higher = 'member')."""
        features = self._features(victim, x, y)
        features[:, :3] = (features[:, :3] - self._mean) / self._std
        return 1.0 / (1.0 + np.exp(-(features @ self._weights)))

    def auc(self, victim: Network, member_x: np.ndarray, member_y: np.ndarray,
            nonmember_x: np.ndarray, nonmember_y: np.ndarray) -> float:
        scores = np.concatenate([
            self.score(victim, member_x, member_y),
            self.score(victim, nonmember_x, nonmember_y),
        ])
        labels = np.concatenate([
            np.ones(member_y.shape[0], dtype=bool),
            np.zeros(nonmember_y.shape[0], dtype=bool),
        ])
        return auc_score(scores, labels)
