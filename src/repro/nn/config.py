"""Darknet-style ``.cfg`` architecture files.

The paper's prototype is built on Darknet, which defines networks in INI-ish
config files. This module round-trips a subset covering every layer type in
Tables I and II (plus dense/flatten for the face model)::

    [net]
    input = 28,28,3

    [conv]
    filters = 128
    size = 3
    stride = 1
    activation = leaky

    [max]
    size = 2
    stride = 2

    [dropout]
    probability = 0.5

    [avg]
    [softmax]
    [cost]

The resulting architecture is also what participants validate via remote
attestation before provisioning keys: the config text is measured into the
training enclave (Section III "Consensus and Cooperation").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import NetworkDefinitionError
from repro.nn.initializers import Initializer
from repro.nn.layers import (
    AvgPoolLayer,
    BatchNormLayer,
    ConvLayer,
    CostLayer,
    DenseLayer,
    DropoutLayer,
    FlattenLayer,
    Layer,
    MaxPoolLayer,
    SoftmaxLayer,
)
from repro.nn.network import Network

__all__ = ["parse_config", "network_from_config", "network_to_config"]

Section = Tuple[str, Dict[str, str]]


def parse_config(text: str) -> List[Section]:
    """Parse config text into an ordered list of (section, options)."""
    sections: List[Section] = []
    current: Optional[Dict[str, str]] = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            current = {}
            sections.append((line[1:-1].strip().lower(), current))
        else:
            if current is None:
                raise NetworkDefinitionError(
                    f"option {line!r} appears before any section"
                )
            if "=" not in line:
                raise NetworkDefinitionError(f"malformed option line {line!r}")
            key, value = (part.strip() for part in line.split("=", 1))
            current[key.lower()] = value
    if not sections:
        raise NetworkDefinitionError("empty network config")
    return sections


def _layer_from_section(name: str, options: Dict[str, str]) -> Layer:
    if name in ("conv", "convolutional"):
        return ConvLayer(
            filters=int(options["filters"]),
            size=int(options.get("size", 3)),
            stride=int(options.get("stride", 1)),
            activation=options.get("activation", "leaky"),
            pad=options.get("pad", "same"),
        )
    if name in ("max", "maxpool"):
        return MaxPoolLayer(
            size=int(options.get("size", 2)), stride=int(options.get("stride", 2))
        )
    if name in ("avg", "avgpool"):
        return AvgPoolLayer()
    if name == "dropout":
        return DropoutLayer(probability=float(options.get("probability", 0.5)))
    if name in ("dense", "connected"):
        return DenseLayer(
            units=int(options["units" if "units" in options else "output"]),
            activation=options.get("activation", "leaky"),
        )
    if name == "flatten":
        return FlattenLayer()
    if name in ("batchnorm", "batch_normalize"):
        return BatchNormLayer(
            momentum=float(options.get("momentum", 0.9)),
            eps=float(options.get("eps", 1e-5)),
        )
    if name in ("residual", "shortcut"):
        from repro.nn.layers.residual import ResidualBlockLayer

        filters = int(options["filters"])
        convs = int(options.get("convs", 2))
        activation = options.get("activation", "leaky")
        inner: List[Layer] = []
        for i in range(convs):
            # The last inner conv is linear so the block output stays
            # centered around the identity path.
            act = activation if i < convs - 1 else "linear"
            inner.append(ConvLayer(filters, int(options.get("size", 3)),
                                   1, activation=act))
        return ResidualBlockLayer(inner)
    if name == "softmax":
        return SoftmaxLayer()
    if name == "cost":
        return CostLayer()
    raise NetworkDefinitionError(f"unknown layer section [{name}]")


def network_from_config(text: str, initializer: Optional[Initializer] = None,
                        rng: Optional[np.random.Generator] = None,
                        backend=None) -> Network:
    """Build a :class:`Network` from config text.

    ``backend`` (a name or :class:`~repro.nn.backends.ComputeBackend`)
    overrides any ``backend =`` option in the ``[net]`` section; both
    default to the process-wide backend. The option is an execution detail:
    it never participates in the measured architecture text
    (:func:`network_to_config` does not emit it).
    """
    sections = parse_config(text)
    head, options = sections[0]
    if head != "net":
        raise NetworkDefinitionError("config must start with a [net] section")
    try:
        input_shape = tuple(int(d) for d in options["input"].split(","))
    except (KeyError, ValueError) as exc:
        raise NetworkDefinitionError("[net] needs input = H,W,C") from exc
    if backend is None:
        backend = options.get("backend") or None
    layers = [_layer_from_section(name, opts) for name, opts in sections[1:]]
    if not layers:
        raise NetworkDefinitionError("config defines no layers")
    return Network(input_shape, layers, initializer=initializer, rng=rng,
                   backend=backend)


def network_to_config(network: Network) -> str:
    """Render a network back to config text (inverse of the parser)."""
    lines = ["[net]", "input = " + ",".join(str(d) for d in network.input_shape), ""]
    for layer in network.layers:
        lines.append(f"[{layer.kind}]")
        if isinstance(layer, ConvLayer):
            lines.append(f"filters = {layer.filters}")
            lines.append(f"size = {layer.size}")
            lines.append(f"stride = {layer.stride}")
            lines.append(f"activation = {layer.activation}")
            lines.append(f"pad = {layer.pad}")
        elif isinstance(layer, MaxPoolLayer):
            lines.append(f"size = {layer.size}")
            lines.append(f"stride = {layer.stride}")
        elif isinstance(layer, DropoutLayer):
            lines.append(f"probability = {layer.probability}")
        elif isinstance(layer, DenseLayer):
            lines.append(f"units = {layer.units}")
            lines.append(f"activation = {layer.activation}")
        elif isinstance(layer, BatchNormLayer):
            lines.append(f"momentum = {layer.momentum}")
            lines.append(f"eps = {layer.eps}")
        else:
            from repro.nn.layers.residual import ResidualBlockLayer

            if isinstance(layer, ResidualBlockLayer):
                convs = [l for l in layer.inner if isinstance(l, ConvLayer)]
                if not convs:
                    raise NetworkDefinitionError(
                        "only conv-stack residual blocks render to config"
                    )
                lines.append(f"filters = {convs[0].filters}")
                lines.append(f"convs = {len(convs)}")
                lines.append(f"size = {convs[0].size}")
                lines.append(f"activation = {convs[0].activation}")
        lines.append("")
    return "\n".join(lines)
