"""Learning-rate schedules (Darknet's ``policy`` options).

Darknet training configs set a learning-rate policy (constant, step, poly,
...); the trainer multiplies the optimizer's base rate by the schedule's
factor at each epoch. CalTrain's trainer accepts any of these through its
``lr_schedule`` hook.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["ConstantSchedule", "StepSchedule", "PolySchedule", "CosineSchedule"]


class Schedule:
    """Interface: multiplier on the base learning rate for an epoch."""

    def factor(self, epoch: int) -> float:
        raise NotImplementedError

    def apply(self, optimizer, base_rate: float, epoch: int) -> None:
        """Set the optimizer's learning rate for ``epoch``."""
        optimizer.learning_rate = base_rate * self.factor(epoch)


class ConstantSchedule(Schedule):
    """No decay (Darknet's ``policy=constant``)."""

    def factor(self, epoch: int) -> float:
        return 1.0


class StepSchedule(Schedule):
    """Multiply by ``scale`` at each milestone (``policy=steps``)."""

    def __init__(self, milestones: Sequence[int], scale: float = 0.1) -> None:
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        if list(milestones) != sorted(set(milestones)):
            raise ConfigurationError("milestones must be strictly increasing")
        self.milestones: Tuple[int, ...] = tuple(milestones)
        self.scale = scale

    def factor(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.scale ** passed


class PolySchedule(Schedule):
    """Polynomial decay to zero over ``total_epochs`` (``policy=poly``)."""

    def __init__(self, total_epochs: int, power: float = 4.0) -> None:
        if total_epochs <= 0:
            raise ConfigurationError("total_epochs must be positive")
        self.total_epochs = total_epochs
        self.power = power

    def factor(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return (1.0 - progress) ** self.power


class CosineSchedule(Schedule):
    """Cosine annealing from 1 to ``floor`` over ``total_epochs``."""

    def __init__(self, total_epochs: int, floor: float = 0.0) -> None:
        if total_epochs <= 0:
            raise ConfigurationError("total_epochs must be positive")
        if not 0.0 <= floor < 1.0:
            raise ConfigurationError("floor must be in [0, 1)")
        self.total_epochs = total_epochs
        self.floor = floor

    def factor(self, epoch: int) -> float:
        import math

        progress = min(epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.floor + (1.0 - self.floor) * cosine
