"""Differential-privacy accounting for DP-SGD.

Tracks the (epsilon, delta) guarantee that per-example-clipped DP-SGD
(:class:`repro.nn.optimizers.PerExampleDpSgd`) accumulates over training,
via Renyi differential privacy:

* each step is the Gaussian mechanism with noise multiplier sigma on a
  clipped (sensitivity-1, after normalizing by the clip norm) sum, whose
  RDP at order alpha is ``alpha / (2 sigma^2)``;
* with Poisson subsampling at rate q, we use the small-q upper bound
  ``RDP(alpha) <= 2 q^2 alpha / sigma^2`` (the leading term of Mironov's
  subsampled-Gaussian analysis, an upper bound for q*alpha << sigma);
* RDP composes additively over steps and converts to (epsilon, delta) via
  ``epsilon = min_alpha [ RDP(alpha) * T + log(1/delta) / (alpha - 1) ]``.

This is an *upper bound* accountant — looser than a full moments
accountant, but sound for the regimes the benches run, and honest about
its validity condition (it refuses q*alpha ranges outside the bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConfigurationError

__all__ = ["RdpAccountant", "dp_sgd_epsilon"]

_DEFAULT_ORDERS = tuple([1.5, 2, 3, 4, 6, 8, 16, 32, 64])


def _step_rdp(order: float, noise_multiplier: float,
              sample_rate: float) -> Optional[float]:
    """RDP of one subsampled-Gaussian step at one order; None if the
    small-q bound is not valid there."""
    if sample_rate >= 1.0:
        return order / (2.0 * noise_multiplier**2)
    # Validity region for the small-q bound.
    if sample_rate * order > 0.25 * noise_multiplier:
        return None
    return 2.0 * (sample_rate**2) * order / (noise_multiplier**2)


@dataclass
class RdpAccountant:
    """Accumulates RDP over DP-SGD steps and converts to (eps, delta)."""

    noise_multiplier: float
    sample_rate: float
    orders: Iterable[float] = _DEFAULT_ORDERS

    def __post_init__(self) -> None:
        if self.noise_multiplier <= 0:
            raise ConfigurationError("noise_multiplier must be positive")
        if not 0.0 < self.sample_rate <= 1.0:
            raise ConfigurationError("sample_rate must be in (0, 1]")
        self._steps = 0

    def step(self, count: int = 1) -> None:
        """Record ``count`` DP-SGD steps."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        self._steps += count

    @property
    def steps(self) -> int:
        return self._steps

    def epsilon(self, delta: float) -> float:
        """The accumulated (epsilon, delta) guarantee."""
        if not 0.0 < delta < 1.0:
            raise ConfigurationError("delta must be in (0, 1)")
        if self._steps == 0:
            return 0.0
        best = math.inf
        for order in self.orders:
            if order <= 1.0:
                continue
            rdp = _step_rdp(order, self.noise_multiplier, self.sample_rate)
            if rdp is None:
                continue
            eps = rdp * self._steps + math.log(1.0 / delta) / (order - 1.0)
            best = min(best, eps)
        if best is math.inf:
            raise ConfigurationError(
                "no RDP order is valid for this (q, sigma); increase the "
                "noise multiplier or lower the sample rate"
            )
        return best


def dp_sgd_epsilon(noise_multiplier: float, batch_size: int, dataset_size: int,
                   epochs: int, delta: float) -> float:
    """One-shot epsilon for a standard DP-SGD run."""
    if batch_size <= 0 or dataset_size <= 0 or epochs <= 0:
        raise ConfigurationError("batch_size, dataset_size, epochs must be > 0")
    accountant = RdpAccountant(
        noise_multiplier=noise_multiplier,
        sample_rate=min(1.0, batch_size / dataset_size),
    )
    steps_per_epoch = math.ceil(dataset_size / batch_size)
    accountant.step(steps_per_epoch * epochs)
    return accountant.epsilon(delta)
