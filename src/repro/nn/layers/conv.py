"""2-D convolution via im2col.

NHWC layout; weights are ``(kh, kw, in_c, out_c)``. ``pad="same"`` keeps
spatial size at stride 1 (Darknet's ``pad=1`` behaviour for odd kernels);
``pad="valid"`` applies no padding.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers.activations import apply_activation, activation_gradient
from repro.nn.layers.base import Layer, Shape

__all__ = ["ConvLayer"]


class ConvLayer(Layer):
    """Convolutional layer with a built-in activation.

    Args:
        filters: Number of output channels.
        size: Square kernel size.
        stride: Spatial stride.
        activation: One of :data:`repro.nn.layers.activations.ACTIVATIONS`.
            Darknet's default for conv layers is leaky ReLU.
        pad: ``"same"`` or ``"valid"``.
    """

    kind = "conv"

    def __init__(self, filters: int, size: int = 3, stride: int = 1,
                 activation: str = "leaky", pad: str = "same") -> None:
        super().__init__()
        if filters <= 0 or size <= 0 or stride <= 0:
            raise ConfigurationError("filters, size, and stride must be positive")
        if pad not in ("same", "valid"):
            raise ConfigurationError(f"unknown padding mode {pad!r}")
        self.filters = filters
        self.size = size
        self.stride = stride
        self.activation = activation
        self.pad = pad
        self.weights: Optional[np.ndarray] = None  # (kh, kw, in_c, out_c)
        self.bias: Optional[np.ndarray] = None
        self._grad_w: Optional[np.ndarray] = None
        self._grad_b: Optional[np.ndarray] = None

    # -- setup ---------------------------------------------------------------

    def build(self, in_channels: int, initializer) -> None:
        """Allocate parameters with ``initializer(shape) -> ndarray``."""
        shape = (self.size, self.size, in_channels, self.filters)
        self.weights = initializer(shape).astype(np.float32)
        self.bias = np.zeros(self.filters, dtype=np.float32)
        self._grad_w = np.zeros_like(self.weights)
        self._grad_b = np.zeros_like(self.bias)

    def _pad_amount(self) -> int:
        return self.size // 2 if self.pad == "same" else 0

    def _check_built(self, in_channels: int) -> None:
        if self.weights is None:
            raise ShapeError("ConvLayer used before build()")
        if self.weights.shape[2] != in_channels:
            raise ShapeError(
                f"conv expects {self.weights.shape[2]} input channels, got {in_channels}"
            )

    # -- compute ------------------------------------------------------------

    def _im2col(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        p = self._pad_amount()
        if p:
            x = np.pad(x, ((0, 0), (p, p), (p, p), (0, 0)))
        # (N, H', W', C, kh, kw) -> strided -> (N, oh, ow, kh, kw, C)
        windows = sliding_window_view(x, (self.size, self.size), axis=(1, 2))
        windows = windows[:, :: self.stride, :: self.stride]
        windows = windows.transpose(0, 1, 2, 4, 5, 3)
        n, oh, ow = windows.shape[:3]
        cols = windows.reshape(n * oh * ow, -1)
        return np.ascontiguousarray(cols), (oh, ow)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built(x.shape[-1])
        n = x.shape[0]
        cols, (oh, ow) = self._im2col(x)
        w_mat = self.weights.reshape(-1, self.filters)
        z = (cols @ w_mat + self.bias).reshape(n, oh, ow, self.filters)
        if training:
            self._cache["cols"] = cols
            self._cache["z"] = z
            self._cache["input_shape"] = x.shape
        return apply_activation(self.activation, z)

    def backward(self, delta: np.ndarray) -> np.ndarray:
        cols = self._pop_cache("cols")
        z = self._pop_cache("z")
        input_shape = self._cache.pop("input_shape")
        n, oh, ow, _ = delta.shape
        dz = activation_gradient(self.activation, z, delta)
        dz_flat = dz.reshape(n * oh * ow, self.filters)
        if not self.frozen:
            w_mat = self.weights.reshape(-1, self.filters)
            self._grad_w += (cols.T @ dz_flat).reshape(self.weights.shape)
            self._grad_b += dz_flat.sum(axis=0)
        dcols = dz_flat @ self.weights.reshape(-1, self.filters).T
        return self._col2im(dcols, input_shape, oh, ow)

    def _col2im(self, dcols: np.ndarray, input_shape: Tuple[int, ...],
                oh: int, ow: int) -> np.ndarray:
        n, h, w, c = input_shape
        p = self._pad_amount()
        k, s = self.size, self.stride
        dxp = np.zeros((n, h + 2 * p, w + 2 * p, c), dtype=dcols.dtype)
        dcols = dcols.reshape(n, oh, ow, k, k, c)
        for i in range(k):
            for j in range(k):
                dxp[:, i : i + oh * s : s, j : j + ow * s : s, :] += dcols[:, :, :, i, j, :]
        if p:
            return dxp[:, p : p + h, p : p + w, :]
        return dxp

    # -- parameters ----------------------------------------------------------

    def params(self) -> Dict[str, np.ndarray]:
        if self.weights is None:
            return {}
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        if self._grad_w is None:
            return {}
        return {"weights": self._grad_w, "bias": self._grad_b}

    # -- introspection ---------------------------------------------------------

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, _ = input_shape
        p = self._pad_amount()
        oh = (h + 2 * p - self.size) // self.stride + 1
        ow = (w + 2 * p - self.size) // self.stride + 1
        return (oh, ow, self.filters)

    def flops(self, input_shape: Shape) -> float:
        oh, ow, oc = self.output_shape(input_shape)
        in_c = input_shape[-1]
        return 2.0 * oh * ow * oc * self.size * self.size * in_c

    def describe(self) -> str:
        return f"conv {self.filters} {self.size}x{self.size}/{self.stride}"
