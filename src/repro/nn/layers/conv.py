"""2-D convolution via im2col.

NHWC layout; weights are ``(kh, kw, in_c, out_c)``. ``pad="same"`` keeps
spatial size at stride 1 (Darknet's ``pad=1`` behaviour for odd kernels);
``pad="valid"`` applies no padding.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers.base import Layer, Shape

__all__ = ["ConvLayer"]


class ConvLayer(Layer):
    """Convolutional layer with a built-in activation.

    Args:
        filters: Number of output channels.
        size: Square kernel size.
        stride: Spatial stride.
        activation: One of :data:`repro.nn.layers.activations.ACTIVATIONS`.
            Darknet's default for conv layers is leaky ReLU.
        pad: ``"same"`` or ``"valid"``.
    """

    kind = "conv"
    supports_skip_input_grad = True

    def __init__(self, filters: int, size: int = 3, stride: int = 1,
                 activation: str = "leaky", pad: str = "same") -> None:
        super().__init__()
        if filters <= 0 or size <= 0 or stride <= 0:
            raise ConfigurationError("filters, size, and stride must be positive")
        if pad not in ("same", "valid"):
            raise ConfigurationError(f"unknown padding mode {pad!r}")
        self.filters = filters
        self.size = size
        self.stride = stride
        self.activation = activation
        self.pad = pad
        self.weights: Optional[np.ndarray] = None  # (kh, kw, in_c, out_c)
        self.bias: Optional[np.ndarray] = None
        self._grad_w: Optional[np.ndarray] = None
        self._grad_b: Optional[np.ndarray] = None

    # -- setup ---------------------------------------------------------------

    def build(self, in_channels: int, initializer) -> None:
        """Allocate parameters with ``initializer(shape) -> ndarray``."""
        shape = (self.size, self.size, in_channels, self.filters)
        self.weights = initializer(shape).astype(np.float32)
        self.bias = np.zeros(self.filters, dtype=np.float32)
        self._grad_w = np.zeros_like(self.weights)
        self._grad_b = np.zeros_like(self.bias)

    def _pad_amount(self) -> int:
        return self.size // 2 if self.pad == "same" else 0

    def _check_built(self, in_channels: int) -> None:
        if self.weights is None:
            raise ShapeError("ConvLayer used before build()")
        if self.weights.shape[2] != in_channels:
            raise ShapeError(
                f"conv expects {self.weights.shape[2]} input channels, got {in_channels}"
            )

    # -- compute ------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built(x.shape[-1])
        return self.backend.conv_forward(self, x, training)

    def backward(self, delta: np.ndarray,
                 need_input_grad: bool = True) -> Optional[np.ndarray]:
        return self.backend.conv_backward(self, delta, need_input_grad)

    # -- parameters ----------------------------------------------------------

    def params(self) -> Dict[str, np.ndarray]:
        if self.weights is None:
            return {}
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        if self._grad_w is None:
            return {}
        return {"weights": self._grad_w, "bias": self._grad_b}

    # -- introspection ---------------------------------------------------------

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, _ = input_shape
        p = self._pad_amount()
        oh = (h + 2 * p - self.size) // self.stride + 1
        ow = (w + 2 * p - self.size) // self.stride + 1
        return (oh, ow, self.filters)

    def flops(self, input_shape: Shape) -> float:
        oh, ow, oc = self.output_shape(input_shape)
        in_c = input_shape[-1]
        return 2.0 * oh * ow * oc * self.size * self.size * in_c

    def describe(self) -> str:
        return f"conv {self.filters} {self.size}x{self.size}/{self.stride}"
