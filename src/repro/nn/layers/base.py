"""Layer interface.

A layer transforms a batch tensor in :meth:`forward`, caches what it needs,
and maps the loss gradient with respect to its output back to its input in
:meth:`backward`, accumulating parameter gradients on the way. Shape and
cost introspection (:meth:`output_shape`, :meth:`flops`, byte accounting)
support the partitioning machinery and the enclave cost model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.nn.backends.base import BufferPool, ComputeBackend

__all__ = ["Layer"]

Shape = Tuple[int, ...]


class Layer:
    """Base class for all layers."""

    #: Darknet-style type tag used by the config parser and the zoo tables.
    kind = "layer"

    #: True for layers whose backward can skip computing d(loss)/d(input)
    #: when nothing upstream consumes it (the first trainable layer of a
    #: ``train_batch`` sweep).
    supports_skip_input_grad = False

    def __init__(self) -> None:
        self.frozen = False
        self._cache: dict = {}
        self._backend: "ComputeBackend | None" = None
        self._pool = BufferPool()

    # -- backend -------------------------------------------------------------

    @property
    def backend(self) -> ComputeBackend:
        """The compute backend in effect: the explicitly assigned one, else
        the process default (which follows ``REPRO_NN_BACKEND``)."""
        if self._backend is not None:
            return self._backend
        from repro.nn.backends import default_backend

        return default_backend()

    def set_backend(self, backend: "ComputeBackend | str | None") -> None:
        """Pin (or with ``None`` unpin) this layer's compute backend.

        Scratch buffers and cached intermediates belong to the backend that
        produced them, so both are dropped on every switch.
        """
        from repro.nn.backends import resolve_backend

        self._backend = resolve_backend(backend)
        self._pool.clear()
        self._cache.clear()

    # -- compute ------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Transform a batch; cache intermediates when ``training``."""
        raise NotImplementedError

    def backward(self, delta: np.ndarray) -> np.ndarray:
        """Map d(loss)/d(output) to d(loss)/d(input); accumulate grads."""
        raise NotImplementedError

    # -- parameters ----------------------------------------------------------

    def params(self) -> Dict[str, np.ndarray]:
        """Learnable parameter arrays by name (empty for stateless layers)."""
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        """Accumulated gradient arrays, keyed like :meth:`params`."""
        return {}

    def zero_grads(self) -> None:
        for grad in self.grads().values():
            grad[...] = 0.0

    @property
    def has_weights(self) -> bool:
        return bool(self.params())

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.params().values())

    # -- introspection ---------------------------------------------------------

    def output_shape(self, input_shape: Shape) -> Shape:
        """Per-example output shape given a per-example input shape."""
        raise NotImplementedError

    def flops(self, input_shape: Shape) -> float:
        """Per-example forward FLOPs. Backward is modelled as 2x forward."""
        return 0.0

    def param_bytes(self) -> int:
        return sum(p.nbytes for p in self.params().values())

    def activation_bytes(self, input_shape: Shape, batch_size: int) -> int:
        """Bytes of activation the layer produces for one batch (float32)."""
        out_elems = int(np.prod(self.output_shape(input_shape)))
        return 4 * out_elems * batch_size

    # -- helpers ----------------------------------------------------------------

    def _pop_cache(self, key: str) -> np.ndarray:
        if key not in self._cache:
            raise TrainingError(
                f"{type(self).__name__}.backward called without a matching "
                "training-mode forward"
            )
        return self._cache.pop(key)

    def describe(self) -> str:
        """One-line human-readable description (used by Table I/II renders)."""
        return self.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
