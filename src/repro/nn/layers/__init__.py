"""Neural-network layers."""

from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNormLayer
from repro.nn.layers.conv import ConvLayer
from repro.nn.layers.dense import DenseLayer, FlattenLayer
from repro.nn.layers.dropout import DropoutLayer
from repro.nn.layers.pooling import AvgPoolLayer, MaxPoolLayer
from repro.nn.layers.residual import ResidualBlockLayer
from repro.nn.layers.softmax import CostLayer, SoftmaxLayer

__all__ = [
    "Layer",
    "BatchNormLayer",
    "ConvLayer",
    "DenseLayer",
    "FlattenLayer",
    "DropoutLayer",
    "MaxPoolLayer",
    "AvgPoolLayer",
    "ResidualBlockLayer",
    "SoftmaxLayer",
    "CostLayer",
]
