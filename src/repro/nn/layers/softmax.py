"""Softmax and cost layers (Darknet's classification tail).

Following Darknet, a classification network ends ``... -> softmax -> cost``.
The two are *fused* for backpropagation: :meth:`CostLayer.delta` returns the
gradient of the cross-entropy loss with respect to the softmax *inputs*
(``probs - onehot``), and both layers' :meth:`backward` pass deltas through
unchanged. This is the standard softmax/cross-entropy fusion and is exactly
how Darknet wires its deltas.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer, Shape

__all__ = ["SoftmaxLayer", "CostLayer", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class SoftmaxLayer(Layer):
    """Softmax over class logits."""

    kind = "softmax"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2:
            raise ShapeError(f"softmax expects (N, classes), got {x.shape}")
        return self.backend.softmax(x)

    def backward(self, delta: np.ndarray) -> np.ndarray:
        # Fused with cross-entropy: the incoming delta already is
        # d(loss)/d(logits); pass through.
        return delta

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def describe(self) -> str:
        return "softmax"


class CostLayer(Layer):
    """Cross-entropy cost layer.

    In the forward pass it is the identity (so a full-network forward yields
    class probabilities); loss and the initial backward delta come from
    :meth:`loss_and_delta`.
    """

    kind = "cost"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x

    def backward(self, delta: np.ndarray) -> np.ndarray:
        return delta

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    @staticmethod
    def loss_and_delta(probs: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Mean cross-entropy and d(loss)/d(logits) for integer labels."""
        n = probs.shape[0]
        if labels.shape[0] != n:
            raise ShapeError("labels batch size does not match probabilities")
        eps = 1e-12
        loss = -np.log(probs[np.arange(n), labels] + eps).mean()
        delta = probs.copy()
        delta[np.arange(n), labels] -= 1.0
        return float(loss), delta / n

    def batch_loss(self, probs: np.ndarray,
                   labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Backend-routed :meth:`loss_and_delta` (training hot path)."""
        n = probs.shape[0]
        if labels.shape[0] != n:
            raise ShapeError("labels batch size does not match probabilities")
        return self.backend.softmax_cost(probs, labels)

    def describe(self) -> str:
        return "cost"
