"""Residual blocks (Darknet's ``[shortcut]``, composite-layer form).

A :class:`ResidualBlockLayer` wraps an inner layer stack ``f`` and computes
``y = x + f(x)``. Keeping the skip connection *inside* one composite layer
preserves the Network container's sequential contract (including
FrontNet/BackNet partitioning: a block is atomic, so a partition boundary
can never split a skip connection across the enclave boundary).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers.base import Layer, Shape

__all__ = ["ResidualBlockLayer"]


class ResidualBlockLayer(Layer):
    """``y = x + f(x)`` with ``f`` an inner stack of layers.

    The inner stack must preserve the input shape (checked at build time),
    as in standard identity-shortcut residual blocks.
    """

    kind = "residual"

    def __init__(self, inner: Sequence[Layer]) -> None:
        super().__init__()
        if not inner:
            raise ConfigurationError("a residual block needs inner layers")
        self.inner: List[Layer] = list(inner)

    # -- setup ---------------------------------------------------------------

    def set_backend(self, backend) -> None:
        super().set_backend(backend)
        for layer in self.inner:
            layer.set_backend(backend)

    def build(self, in_channels: int, initializer) -> None:
        for layer in self.inner:
            if hasattr(layer, "build") and not layer.params():
                layer.build(in_channels, initializer)
            # Track channel changes through the inner stack.
            if hasattr(layer, "filters"):
                in_channels = layer.filters

    def _check_shape(self, input_shape: Shape) -> None:
        shape = input_shape
        for layer in self.inner:
            shape = layer.output_shape(shape)
        if tuple(shape) != tuple(input_shape):
            raise ShapeError(
                f"residual inner stack maps {input_shape} to {shape}; "
                "identity shortcuts need shape-preserving inner layers"
            )

    # -- compute ------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.inner:
            out = layer.forward(out, training=training)
        if out.shape != x.shape:
            raise ShapeError(
                f"residual inner stack produced {out.shape}, expected {x.shape}"
            )
        return x + out

    def backward(self, delta: np.ndarray) -> np.ndarray:
        inner_delta = delta
        for layer in reversed(self.inner):
            inner_delta = layer.backward(inner_delta)
        return delta + inner_delta

    # -- parameters ----------------------------------------------------------

    def params(self) -> Dict[str, np.ndarray]:
        merged: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.inner):
            for name, arr in layer.params().items():
                merged[f"inner{i}/{name}"] = arr
        return merged

    def grads(self) -> Dict[str, np.ndarray]:
        merged: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.inner):
            for name, arr in layer.grads().items():
                merged[f"inner{i}/{name}"] = arr
        return merged

    def extra_state(self) -> Dict[str, np.ndarray]:
        merged: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.inner):
            if hasattr(layer, "extra_state"):
                for name, arr in layer.extra_state().items():
                    merged[f"inner{i}/{name}"] = arr
        return merged

    def zero_grads(self) -> None:
        for layer in self.inner:
            layer.zero_grads()

    # -- introspection ---------------------------------------------------------

    def output_shape(self, input_shape: Shape) -> Shape:
        self._check_shape(input_shape)
        return tuple(input_shape)

    def flops(self, input_shape: Shape) -> float:
        shape = input_shape
        total = float(np.prod(input_shape))  # the addition
        for layer in self.inner:
            total += layer.flops(shape)
            shape = layer.output_shape(shape)
        return total

    def describe(self) -> str:
        return f"residual x{len(self.inner)}"
