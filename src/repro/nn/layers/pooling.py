"""Pooling layers: max pooling and Darknet-style global average pooling."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers.base import Layer, Shape

__all__ = ["MaxPoolLayer", "AvgPoolLayer"]


class MaxPoolLayer(Layer):
    """Max pooling over ``size x size`` windows with a spatial stride."""

    kind = "max"

    def __init__(self, size: int = 2, stride: int = 2) -> None:
        super().__init__()
        if size <= 0 or stride <= 0:
            raise ConfigurationError("pool size and stride must be positive")
        self.size = size
        self.stride = stride

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] < self.size or x.shape[2] < self.size:
            raise ShapeError(
                f"input {x.shape[1:3]} smaller than pool window {self.size}"
            )
        return self.backend.maxpool_forward(self, x, training)

    def backward(self, delta: np.ndarray) -> np.ndarray:
        return self.backend.maxpool_backward(self, delta)

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, c = input_shape
        oh = (h - self.size) // self.stride + 1
        ow = (w - self.size) // self.stride + 1
        return (oh, ow, c)

    def flops(self, input_shape: Shape) -> float:
        oh, ow, c = self.output_shape(input_shape)
        return float(oh * ow * c * self.size * self.size)

    def describe(self) -> str:
        return f"max {self.size}x{self.size}/{self.stride}"


class AvgPoolLayer(Layer):
    """Global average pooling (Darknet's ``[avgpool]``): HWC -> C."""

    kind = "avg"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._cache["input_shape"] = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, delta: np.ndarray) -> np.ndarray:
        n, h, w, c = self._cache.pop("input_shape")
        # Each spatial position receives an equal share of the gradient.
        return np.broadcast_to(
            delta[:, None, None, :] / (h * w), (n, h, w, c)
        ).astype(delta.dtype).copy()

    def backward_requires_cache(self) -> bool:
        return True

    def output_shape(self, input_shape: Shape) -> Shape:
        return (input_shape[-1],)

    def flops(self, input_shape: Shape) -> float:
        h, w, c = input_shape
        return float(h * w * c)

    def describe(self) -> str:
        return "avg"
