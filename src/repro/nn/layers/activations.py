"""Elementwise activation functions (Darknet's set, minus the exotic ones)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["apply_activation", "activation_gradient", "ACTIVATIONS"]

_LEAKY_SLOPE = 0.1  # Darknet's leaky ReLU slope.

ACTIVATIONS = ("linear", "relu", "leaky", "tanh", "sigmoid")


def apply_activation(name: str, z: np.ndarray) -> np.ndarray:
    """Apply activation ``name`` to pre-activations ``z``."""
    if name == "linear":
        return z
    if name == "relu":
        return np.maximum(z, 0.0)
    if name == "leaky":
        return np.where(z > 0.0, z, _LEAKY_SLOPE * z)
    if name == "tanh":
        return np.tanh(z)
    if name == "sigmoid":
        return 1.0 / (1.0 + np.exp(-z))
    raise ConfigurationError(f"unknown activation {name!r}")


def activation_gradient(name: str, z: np.ndarray, delta: np.ndarray) -> np.ndarray:
    """Multiply ``delta`` by the activation's derivative at ``z``."""
    if name == "linear":
        return delta
    if name == "relu":
        return delta * (z > 0.0)
    if name == "leaky":
        return delta * np.where(z > 0.0, 1.0, _LEAKY_SLOPE)
    if name == "tanh":
        t = np.tanh(z)
        return delta * (1.0 - t * t)
    if name == "sigmoid":
        s = 1.0 / (1.0 + np.exp(-z))
        return delta * s * (1.0 - s)
    raise ConfigurationError(f"unknown activation {name!r}")
