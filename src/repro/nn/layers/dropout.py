"""Inverted dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers.base import Layer, Shape

__all__ = ["DropoutLayer"]


class DropoutLayer(Layer):
    """Inverted dropout: active only in training mode.

    The mask is drawn from ``self.rng``; inside a training enclave the
    network wires this to the enclave's trusted RNG so that even dropout
    randomness comes from the measured entropy source.
    """

    kind = "dropout"

    def __init__(self, probability: float = 0.5,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= probability < 1.0:
            raise ConfigurationError("dropout probability must be in [0, 1)")
        self.probability = probability
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.probability == 0.0:
            return x
        keep = 1.0 - self.probability
        mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        self._cache["mask"] = mask
        return x * mask

    def backward(self, delta: np.ndarray) -> np.ndarray:
        if self.probability == 0.0:
            return delta
        return delta * self._pop_cache("mask")

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def describe(self) -> str:
        return f"dropout p = {self.probability:.2f}"
