"""Dense (fully connected) and flatten layers.

The CIFAR nets in Tables I/II are fully convolutional, but the face
recognition model used in the accountability experiments has a dense
penultimate embedding layer, as VGG-Face does.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers.base import Layer, Shape

__all__ = ["DenseLayer", "FlattenLayer"]


class FlattenLayer(Layer):
    """Reshape (H, W, C) feature maps to flat vectors."""

    kind = "flatten"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._cache["input_shape"] = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, delta: np.ndarray) -> np.ndarray:
        return delta.reshape(self._cache.pop("input_shape"))

    def output_shape(self, input_shape: Shape) -> Shape:
        return (int(np.prod(input_shape)),)

    def describe(self) -> str:
        return "flatten"


class DenseLayer(Layer):
    """Fully connected layer with a built-in activation."""

    kind = "dense"
    supports_skip_input_grad = True

    def __init__(self, units: int, activation: str = "leaky") -> None:
        super().__init__()
        if units <= 0:
            raise ConfigurationError("units must be positive")
        self.units = units
        self.activation = activation
        self.weights: Optional[np.ndarray] = None  # (in_dim, units)
        self.bias: Optional[np.ndarray] = None
        self._grad_w: Optional[np.ndarray] = None
        self._grad_b: Optional[np.ndarray] = None

    def build(self, in_dim: int, initializer) -> None:
        self.weights = initializer((in_dim, self.units)).astype(np.float32)
        self.bias = np.zeros(self.units, dtype=np.float32)
        self._grad_w = np.zeros_like(self.weights)
        self._grad_b = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self.weights is None:
            raise ShapeError("DenseLayer used before build()")
        if x.ndim != 2 or x.shape[1] != self.weights.shape[0]:
            raise ShapeError(
                f"dense expects (N, {self.weights.shape[0]}), got {x.shape}"
            )
        return self.backend.dense_forward(self, x, training)

    def backward(self, delta: np.ndarray,
                 need_input_grad: bool = True) -> Optional[np.ndarray]:
        return self.backend.dense_backward(self, delta, need_input_grad)

    def params(self) -> Dict[str, np.ndarray]:
        if self.weights is None:
            return {}
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> Dict[str, np.ndarray]:
        if self._grad_w is None:
            return {}
        return {"weights": self._grad_w, "bias": self._grad_b}

    def output_shape(self, input_shape: Shape) -> Shape:
        return (self.units,)

    def flops(self, input_shape: Shape) -> float:
        return 2.0 * int(np.prod(input_shape)) * self.units

    def describe(self) -> str:
        return f"dense {self.units}"
