"""Batch normalization (Ioffe & Szegedy), Darknet's ``batch_normalize``.

Normalizes over the batch and spatial axes per channel, with learned scale
and shift and running statistics for inference. Darknet attaches this to
conv layers via ``batch_normalize=1``; here it is a standalone layer, which
composes identically.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers.base import Layer, Shape

__all__ = ["BatchNormLayer"]


class BatchNormLayer(Layer):
    """Per-channel batch normalization for NHWC or (N, D) tensors."""

    kind = "batchnorm"

    def __init__(self, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        self.momentum = momentum
        self.eps = eps
        self.gamma: Optional[np.ndarray] = None
        self.beta: Optional[np.ndarray] = None
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None
        self._grad_gamma: Optional[np.ndarray] = None
        self._grad_beta: Optional[np.ndarray] = None

    def build(self, channels: int, initializer=None) -> None:
        self.gamma = np.ones(channels, dtype=np.float32)
        self.beta = np.zeros(channels, dtype=np.float32)
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._grad_gamma = np.zeros_like(self.gamma)
        self._grad_beta = np.zeros_like(self.beta)

    def _reduce_axes(self, x: np.ndarray) -> Tuple[int, ...]:
        return tuple(range(x.ndim - 1))

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self.gamma is None:
            raise ShapeError("BatchNormLayer used before build()")
        if x.shape[-1] != self.gamma.shape[0]:
            raise ShapeError(
                f"batchnorm expects {self.gamma.shape[0]} channels, got {x.shape[-1]}"
            )
        axes = self._reduce_axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean *= self.momentum
            self.running_mean += (1.0 - self.momentum) * mean
            self.running_var *= self.momentum
            self.running_var += (1.0 - self.momentum) * var
            x_hat = (x - mean) / np.sqrt(var + self.eps)
            self._cache["x_hat"] = x_hat
            self._cache["var"] = var
            return self.gamma * x_hat + self.beta
        return (
            self.gamma * (x - self.running_mean)
            / np.sqrt(self.running_var + self.eps)
            + self.beta
        )

    def backward(self, delta: np.ndarray) -> np.ndarray:
        x_hat = self._pop_cache("x_hat")
        var = self._cache.pop("var")
        axes = self._reduce_axes(delta)
        m = float(np.prod([delta.shape[a] for a in axes]))
        if not self.frozen:
            self._grad_gamma += (delta * x_hat).sum(axis=axes)
            self._grad_beta += delta.sum(axis=axes)
        # Standard batchnorm input gradient (all in one expression):
        # dx = gamma/sqrt(var+eps) * (d - mean(d) - x_hat * mean(d * x_hat))
        d_mean = delta.mean(axis=axes)
        dxhat_mean = (delta * x_hat).mean(axis=axes)
        scale = self.gamma / np.sqrt(var + self.eps)
        return scale * (delta - d_mean - x_hat * dxhat_mean)

    def params(self) -> Dict[str, np.ndarray]:
        if self.gamma is None:
            return {}
        return {"gamma": self.gamma, "beta": self.beta}

    def extra_state(self) -> Dict[str, np.ndarray]:
        """Running statistics — saved with weights, never touched by
        optimizers."""
        if self.running_mean is None:
            return {}
        return {"running_mean": self.running_mean, "running_var": self.running_var}

    def grads(self) -> Dict[str, np.ndarray]:
        if self._grad_gamma is None:
            return {}
        return {"gamma": self._grad_gamma, "beta": self._grad_beta}

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def flops(self, input_shape: Shape) -> float:
        return 2.0 * float(np.prod(input_shape))

    def describe(self) -> str:
        return "batchnorm"
