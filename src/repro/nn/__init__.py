"""A from-scratch numpy deep-learning framework (the Darknet substitute).

Implements everything the paper's prototype takes from Darknet: convolution,
max/average pooling, dropout, dense, softmax and cost layers; mini-batch SGD
with momentum and backpropagation; Gaussian weight initialization; a
Darknet-style ``.cfg`` parser; and the exact Table I / Table II CIFAR-10
architectures in :mod:`repro.nn.zoo`.

Data layout is NHWC (batch, height, width, channels), matching the paper's
``width x height / stride`` table notation.
"""

from repro.nn.backends import (
    ComputeBackend,
    available_backends,
    default_backend,
    get_backend,
    resolve_backend,
    set_default_backend,
)
from repro.nn.config import network_from_config, network_to_config
from repro.nn.initializers import gaussian_init, he_init, xavier_init
from repro.nn.layers import (
    AvgPoolLayer,
    BatchNormLayer,
    ConvLayer,
    CostLayer,
    DenseLayer,
    DropoutLayer,
    FlattenLayer,
    Layer,
    MaxPoolLayer,
    ResidualBlockLayer,
    SoftmaxLayer,
)
from repro.nn.losses import cross_entropy_delta, cross_entropy_loss
from repro.nn.model_io import load_model, model_from_bytes, model_to_bytes, save_model
from repro.nn.network import Network
from repro.nn.optimizers import Adam, DpSgd, Optimizer, PerExampleDpSgd, Sgd
from repro.nn.privacy import RdpAccountant, dp_sgd_epsilon
from repro.nn.pruning import apply_masks, prune_by_magnitude, sparsity
from repro.nn.quantization import quantize_weights
from repro.nn.schedules import (
    ConstantSchedule,
    CosineSchedule,
    PolySchedule,
    StepSchedule,
)
from repro.nn.zoo import cifar10_10layer, cifar10_18layer, face_recognition_net, tiny_testnet

__all__ = [
    "Layer",
    "ConvLayer",
    "MaxPoolLayer",
    "AvgPoolLayer",
    "DropoutLayer",
    "DenseLayer",
    "FlattenLayer",
    "BatchNormLayer",
    "ResidualBlockLayer",
    "SoftmaxLayer",
    "CostLayer",
    "Network",
    "Optimizer",
    "Sgd",
    "Adam",
    "DpSgd",
    "PerExampleDpSgd",
    "RdpAccountant",
    "dp_sgd_epsilon",
    "ConstantSchedule",
    "StepSchedule",
    "PolySchedule",
    "CosineSchedule",
    "prune_by_magnitude",
    "apply_masks",
    "sparsity",
    "quantize_weights",
    "save_model",
    "load_model",
    "model_to_bytes",
    "model_from_bytes",
    "gaussian_init",
    "he_init",
    "xavier_init",
    "cross_entropy_loss",
    "cross_entropy_delta",
    "network_from_config",
    "network_to_config",
    "cifar10_10layer",
    "cifar10_18layer",
    "face_recognition_net",
    "tiny_testnet",
    "ComputeBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
]
