"""Weight initializers.

The paper initializes all convolutional weights "from the Gaussian
distribution" (Section VI-A); Darknet's actual Gaussian uses the
``sqrt(2 / fan_in)`` scale, i.e. He initialization, which
:func:`gaussian_init` reproduces when no explicit ``std`` is given.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["gaussian_init", "he_init", "xavier_init", "Initializer"]

Initializer = Callable[[Tuple[int, ...]], np.ndarray]


def _fan_in(shape: Tuple[int, ...]) -> int:
    if len(shape) == 4:  # (kh, kw, in_c, out_c)
        return shape[0] * shape[1] * shape[2]
    if len(shape) == 2:  # (in_dim, units)
        return shape[0]
    return int(np.prod(shape[:-1])) or 1


def gaussian_init(rng: np.random.Generator, std: Optional[float] = None) -> Initializer:
    """Gaussian initializer; Darknet-style He scale when ``std`` is None."""

    def init(shape: Tuple[int, ...]) -> np.ndarray:
        scale = std if std is not None else np.sqrt(2.0 / _fan_in(shape))
        return rng.normal(0.0, scale, size=shape)

    return init


def he_init(rng: np.random.Generator) -> Initializer:
    """He-normal initialization (alias of the default Gaussian scale)."""
    return gaussian_init(rng, std=None)


def xavier_init(rng: np.random.Generator) -> Initializer:
    """Glorot/Xavier uniform initialization."""

    def init(shape: Tuple[int, ...]) -> np.ndarray:
        fan_in = _fan_in(shape)
        fan_out = shape[-1]
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)

    return init
