"""Magnitude pruning (Han et al.), the compression alternative.

The paper's related work weighs two ways to fit models into enclaves:
*model compression* (pruning pre-trained networks — only usable for
inference, since compression needs a trained model) and *model
partitioning* (CalTrain's choice, which works for training). This module
implements magnitude pruning so the ablation bench can measure that
trade-off directly: a pruned model shrinks its in-enclave footprint but
cannot have been trained inside the enclave to begin with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Network

__all__ = ["PruningResult", "prune_by_magnitude", "apply_masks", "sparsity"]


@dataclass
class PruningResult:
    """Masks plus bookkeeping from one pruning pass."""

    masks: List[Dict[str, np.ndarray]]
    kept_fraction: float
    #: Parameter bytes if a sparse representation stored only survivors
    #: (4 bytes value + 4 bytes index per kept weight).
    sparse_bytes: int


def prune_by_magnitude(network: Network, keep_fraction: float,
                       prune_biases: bool = False) -> PruningResult:
    """Zero out the smallest-magnitude weights globally.

    Args:
        keep_fraction: Fraction of weight coordinates to keep, over all
            prunable tensors together (global threshold, as in Han et al.).
        prune_biases: Biases are tiny and usually kept; True prunes them too.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ConfigurationError("keep_fraction must be in (0, 1]")

    def prunable(name: str) -> bool:
        return prune_biases or name not in ("bias", "beta")

    magnitudes = [
        np.abs(arr).ravel()
        for layer in network.layers
        for name, arr in layer.params().items()
        if prunable(name)
    ]
    if not magnitudes:
        raise ConfigurationError("network has no prunable parameters")
    flat = np.concatenate(magnitudes)
    keep = max(1, int(round(keep_fraction * flat.size)))
    threshold = np.partition(flat, -keep)[-keep]

    masks: List[Dict[str, np.ndarray]] = []
    kept = 0
    total = 0
    for layer in network.layers:
        layer_masks: Dict[str, np.ndarray] = {}
        for name, arr in layer.params().items():
            if prunable(name):
                mask = (np.abs(arr) >= threshold)
                arr *= mask
            else:
                mask = np.ones_like(arr, dtype=bool)
            layer_masks[name] = mask
            kept += int(mask.sum())
            total += mask.size
        masks.append(layer_masks)
    return PruningResult(
        masks=masks,
        kept_fraction=kept / total,
        sparse_bytes=8 * kept,
    )


def apply_masks(network: Network, masks: List[Dict[str, np.ndarray]]) -> None:
    """Re-zero masked weights (after fine-tuning updates revived them)."""
    if len(masks) != len(network.layers):
        raise ConfigurationError("mask list does not match layer count")
    for layer, layer_masks in zip(network.layers, masks):
        for name, arr in layer.params().items():
            if name in layer_masks:
                arr *= layer_masks[name]


def sparsity(network: Network) -> float:
    """Fraction of exactly-zero parameters across the network."""
    zero = 0
    total = 0
    for layer in network.layers:
        for arr in layer.params().values():
            zero += int(np.sum(arr == 0.0))
            total += arr.size
    return zero / total if total else 0.0
