"""Numerical gradient checking for the backpropagation implementation."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.nn.network import Network

__all__ = ["check_gradients", "max_relative_error"]


def _network_loss(network: Network, x: np.ndarray, labels: np.ndarray) -> float:
    # training=True so the loss is evaluated through the same function the
    # analytic gradients differentiate (batchnorm uses batch statistics in
    # training mode; dropout must be disabled for the check regardless).
    probs = network.forward(x, training=True)
    n = probs.shape[0]
    return float(-np.log(probs[np.arange(n), labels] + 1e-12).mean())


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Elementwise max of |a - n| / max(|a|, |n|, 1e-8)."""
    denom = np.maximum(np.maximum(np.abs(analytic), np.abs(numeric)), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / denom))


def check_gradients(network: Network, x: np.ndarray, labels: np.ndarray,
                    epsilon: float = 1e-4, samples_per_param: int = 8,
                    rng: np.random.Generator = None) -> Dict[Tuple[int, str], float]:
    """Compare analytic gradients with central differences.

    Dropout layers must be disabled (p = 0) for the check to be meaningful,
    since the forward pass must be deterministic.

    Returns:
        Max relative error per (layer index, parameter name), over a random
        sample of ``samples_per_param`` coordinates of each parameter.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    x = x.astype(np.float64, copy=True)
    network.astype(np.float64)

    # Analytic gradients.
    network.zero_grads()
    probs = network.forward(x, training=True)
    _, delta = network.cost_layer().loss_and_delta(probs, labels)
    network.backward(delta)

    errors: Dict[Tuple[int, str], float] = {}
    for li, layer in enumerate(network.layers):
        params, grads = layer.params(), layer.grads()
        for name, param in params.items():
            analytic = grads[name]
            flat = param.reshape(-1)
            count = min(samples_per_param, flat.size)
            coords = rng.choice(flat.size, size=count, replace=False)
            analytic_samples = np.empty(count)
            numeric_samples = np.empty(count)
            for k, idx in enumerate(coords):
                original = flat[idx]
                flat[idx] = original + epsilon
                loss_plus = _network_loss(network, x, labels)
                flat[idx] = original - epsilon
                loss_minus = _network_loss(network, x, labels)
                flat[idx] = original
                numeric_samples[k] = (loss_plus - loss_minus) / (2 * epsilon)
                analytic_samples[k] = analytic.reshape(-1)[idx]
            errors[(li, name)] = max_relative_error(analytic_samples, numeric_samples)
    network.zero_grads()
    return errors
