"""One-file model persistence: architecture config + weights together.

``save_model`` bundles the Darknet-style config text and the weight arrays
(including non-learned state such as batchnorm running statistics) into a
single ``.npz``; ``load_model`` rebuilds the network and restores weights.
An integrity digest over both halves detects corrupted or spliced files.
"""

from __future__ import annotations

import io
import os
from typing import Union

import numpy as np

from repro.errors import NetworkDefinitionError
from repro.nn.config import network_from_config, network_to_config
from repro.nn.network import Network
from repro.utils.fileio import atomic_write_bytes
from repro.utils.serialization import stable_hash

__all__ = ["save_model", "load_model", "model_to_bytes", "model_from_bytes"]

_FORMAT_VERSION = 1


def model_to_bytes(network: Network) -> bytes:
    """Serialize a network (architecture + weights + state) to bytes."""
    config_text = network_to_config(network)
    weights_blob = network.weights_to_bytes()
    digest = stable_hash(config_text, weights_blob)
    buffer = io.BytesIO()
    np.savez(
        buffer,
        format_version=np.array(_FORMAT_VERSION),
        config=np.frombuffer(config_text.encode("utf-8"), dtype=np.uint8),
        weights=np.frombuffer(weights_blob, dtype=np.uint8),
        digest=np.frombuffer(digest, dtype=np.uint8),
    )
    return buffer.getvalue()


def model_from_bytes(blob: bytes,
                     rng: Union[np.random.Generator, None] = None) -> Network:
    """Rebuild a network from :func:`model_to_bytes` output."""
    with np.load(io.BytesIO(blob)) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise NetworkDefinitionError(
                f"unsupported model format version {version}"
            )
        config_text = bytes(data["config"]).decode("utf-8")
        weights_blob = bytes(data["weights"])
        digest = bytes(data["digest"])
    if stable_hash(config_text, weights_blob) != digest:
        raise NetworkDefinitionError("model file failed its integrity check")
    network = network_from_config(
        config_text, rng=rng if rng is not None else np.random.default_rng(0)
    )
    network.weights_from_bytes(weights_blob)
    return network


def save_model(network: Network, path: Union[str, os.PathLike]) -> None:
    """Write a network to ``path`` (conventionally ``*.caltrain.npz``).

    The write is atomic (temp file + fsync + rename): a crash mid-save
    leaves either the previous model file or the new one, never a torn
    file that fails its integrity check on load.
    """
    atomic_write_bytes(path, model_to_bytes(network))


def load_model(path: Union[str, os.PathLike]) -> Network:
    """Load a network saved by :func:`save_model`."""
    with open(path, "rb") as handle:
        return model_from_bytes(handle.read())
