"""Weight quantization by k-means weight sharing (Deep Compression).

Han et al.'s Deep Compression pipeline is prune -> quantize -> encode.
:mod:`repro.nn.pruning` covers pruning; this module adds the quantization
stage: cluster each layer's surviving weights into ``2^bits`` centroids and
replace every weight with its centroid, so the layer stores only a small
codebook plus per-weight indices. Together they complete the
compression-vs-partitioning comparison of the A7 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Network

__all__ = ["QuantizationResult", "quantize_weights", "quantized_bytes"]


@dataclass
class QuantizationResult:
    """Codebooks and size accounting from one quantization pass."""

    #: Per layer: parameter name -> centroid array (the codebook).
    codebooks: List[Dict[str, np.ndarray]]
    bits: int
    #: Bytes if weights are stored as codebook + packed indices.
    quantized_bytes: int
    #: Mean squared quantization error over all quantized weights.
    mse: float


def _kmeans_1d(values: np.ndarray, k: int, iterations: int = 25) -> np.ndarray:
    """1-D k-means with linear (quantile) initialization, as in the paper."""
    unique = np.unique(values)
    if unique.size <= k:
        return unique
    centroids = np.quantile(values, np.linspace(0, 1, k))
    centroids = np.unique(centroids)
    for _ in range(iterations):
        assignment = np.argmin(np.abs(values[:, None] - centroids[None, :]),
                               axis=1)
        new_centroids = np.array([
            values[assignment == j].mean() if np.any(assignment == j)
            else centroids[j]
            for j in range(centroids.size)
        ])
        if np.allclose(new_centroids, centroids):
            break
        centroids = new_centroids
    return centroids


def quantize_weights(network: Network, bits: int = 4,
                     skip_names: tuple = ("bias", "beta"),
                     ) -> QuantizationResult:
    """Quantize every weight tensor in place to ``2^bits`` shared values.

    Zero weights (from pruning) keep a dedicated zero centroid so sparsity
    is preserved.
    """
    if not 1 <= bits <= 16:
        raise ConfigurationError("bits must be in [1, 16]")
    k = 2 ** bits
    codebooks: List[Dict[str, np.ndarray]] = []
    total_error = 0.0
    total_count = 0
    total_bytes = 0
    for layer in network.layers:
        layer_books: Dict[str, np.ndarray] = {}
        for name, arr in layer.params().items():
            if name in skip_names:
                total_bytes += arr.nbytes
                continue
            flat = arr.ravel()
            nonzero = flat[flat != 0.0]
            if nonzero.size == 0:
                continue
            centroids = _kmeans_1d(nonzero.astype(np.float64), k - 1)
            # Store the codebook in the weight dtype so quantized weights
            # are bit-identical to codebook entries.
            codebook = np.concatenate([[0.0], centroids]).astype(arr.dtype)
            assignment = np.argmin(
                np.abs(flat[:, None] - codebook[None, :]), axis=1
            )
            assignment[flat == 0.0] = 0  # sparsity-preserving zero code
            quantized = codebook[assignment].astype(arr.dtype)
            total_error += float(np.sum((quantized - flat) ** 2))
            total_count += flat.size
            arr[...] = quantized.reshape(arr.shape)
            layer_books[name] = codebook
            # Storage: the codebook (float32) + bits per weight index.
            total_bytes += 4 * codebook.size + (bits * flat.size + 7) // 8
        codebooks.append(layer_books)
    if total_count == 0:
        raise ConfigurationError("network has no quantizable parameters")
    return QuantizationResult(
        codebooks=codebooks, bits=bits,
        quantized_bytes=total_bytes,
        mse=total_error / total_count,
    )


def quantized_bytes(network: Network, bits: int) -> int:
    """Storage estimate for a ``bits``-bit quantization without mutating."""
    total = 0
    for layer in network.layers:
        for name, arr in layer.params().items():
            if name in ("bias", "beta"):
                total += arr.nbytes
            else:
                total += 4 * (2 ** bits) + (bits * arr.size + 7) // 8
    return total
