"""The reference backend: the original numpy kernels, verbatim.

This is the implementation the layers carried before the backend split,
moved here unchanged. It is the parity oracle for every other backend:
integer/argmax paths must match it bitwise, float paths within tolerance.
The only deliberate deviation is :meth:`maxpool_backward`, which routes
through the vectorised :func:`~repro.nn.backends.base.maxpool_scatter`
(itself regression-tested bitwise against the original k x k loop).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.backends.base import (
    BufferPool,
    ComputeBackend,
    Shape,
    maxpool_scatter,
)
from repro.nn.layers.activations import activation_gradient, apply_activation

__all__ = ["ReferenceBackend"]


class ReferenceBackend(ComputeBackend):
    """Plain numpy ops: fresh allocations per call, no fusion."""

    name = "reference"

    # -- fine-grained ops ----------------------------------------------------

    def im2col(self, pool: BufferPool, x: np.ndarray, size: int, stride: int,
               pad: int) -> Tuple[np.ndarray, Tuple[int, int]]:
        if pad:
            x = np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
        # (N, H', W', C, kh, kw) -> strided -> (N, oh, ow, kh, kw, C)
        windows = sliding_window_view(x, (size, size), axis=(1, 2))
        windows = windows[:, ::stride, ::stride]
        windows = windows.transpose(0, 1, 2, 4, 5, 3)
        n, oh, ow = windows.shape[:3]
        cols = windows.reshape(n * oh * ow, -1)
        return np.ascontiguousarray(cols), (oh, ow)

    def col2im(self, pool: BufferPool, dcols: np.ndarray, input_shape: Shape,
               oh: int, ow: int, size: int, stride: int,
               pad: int) -> np.ndarray:
        n, h, w, c = input_shape
        p, k, s = pad, size, stride
        dxp = np.zeros((n, h + 2 * p, w + 2 * p, c), dtype=dcols.dtype)
        dcols = dcols.reshape(n, oh, ow, k, k, c)
        for i in range(k):
            for j in range(k):
                dxp[:, i : i + oh * s : s, j : j + ow * s : s, :] += dcols[:, :, :, i, j, :]
        if p:
            return dxp[:, p : p + h, p : p + w, :]
        return dxp

    def gemm(self, a: np.ndarray, b: np.ndarray,
             out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is None:
            return a @ b
        np.matmul(a, b, out=out)
        return out

    # -- conv ----------------------------------------------------------------

    def conv_forward(self, layer, x: np.ndarray, training: bool) -> np.ndarray:
        n = x.shape[0]
        cols, (oh, ow) = self.im2col(
            layer._pool, x, layer.size, layer.stride, layer._pad_amount()
        )
        w_mat = layer.weights.reshape(-1, layer.filters)
        z = (cols @ w_mat + layer.bias).reshape(n, oh, ow, layer.filters)
        if training:
            layer._cache["cols"] = cols
            layer._cache["z"] = z
            layer._cache["input_shape"] = x.shape
        return apply_activation(layer.activation, z)

    def conv_backward(self, layer, delta: np.ndarray,
                      need_input_grad: bool = True) -> Optional[np.ndarray]:
        cols = layer._pop_cache("cols")
        z = layer._pop_cache("z")
        input_shape = layer._cache.pop("input_shape")
        n, oh, ow, _ = delta.shape
        dz = activation_gradient(layer.activation, z, delta)
        dz_flat = dz.reshape(n * oh * ow, layer.filters)
        if not layer.frozen:
            layer._grad_w += (cols.T @ dz_flat).reshape(layer.weights.shape)
            layer._grad_b += dz_flat.sum(axis=0)
        dcols = dz_flat @ layer.weights.reshape(-1, layer.filters).T
        return self.col2im(
            layer._pool, dcols, input_shape, oh, ow,
            layer.size, layer.stride, layer._pad_amount(),
        )

    # -- dense ---------------------------------------------------------------

    def dense_forward(self, layer, x: np.ndarray, training: bool) -> np.ndarray:
        z = x @ layer.weights + layer.bias
        if training:
            layer._cache["x"] = x
            layer._cache["z"] = z
        return apply_activation(layer.activation, z)

    def dense_backward(self, layer, delta: np.ndarray,
                       need_input_grad: bool = True) -> Optional[np.ndarray]:
        x = layer._pop_cache("x")
        z = layer._cache.pop("z")
        dz = activation_gradient(layer.activation, z, delta)
        if not layer.frozen:
            layer._grad_w += x.T @ dz
            layer._grad_b += dz.sum(axis=0)
        return dz @ layer.weights.T

    # -- pooling -------------------------------------------------------------

    def maxpool_forward(self, layer, x: np.ndarray, training: bool) -> np.ndarray:
        windows = sliding_window_view(x, (layer.size, layer.size), axis=(1, 2))
        windows = windows[:, :: layer.stride, :: layer.stride]
        # windows: (N, oh, ow, C, kh, kw)
        n, oh, ow, c = windows.shape[:4]
        flat = windows.reshape(n, oh, ow, c, layer.size * layer.size)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
        if training:
            layer._cache["argmax"] = argmax
            layer._cache["input_shape"] = x.shape
        return np.ascontiguousarray(out)

    def maxpool_backward(self, layer, delta: np.ndarray) -> np.ndarray:
        argmax = layer._pop_cache("argmax")
        input_shape = layer._cache.pop("input_shape")
        return maxpool_scatter(delta, argmax, input_shape, layer.size,
                               layer.stride)

    # -- softmax / cost ------------------------------------------------------

    def softmax(self, x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def softmax_cost(self, probs: np.ndarray,
                     labels: np.ndarray) -> Tuple[float, np.ndarray]:
        n = probs.shape[0]
        eps = 1e-12
        loss = -np.log(probs[np.arange(n), labels] + eps).mean()
        delta = probs.copy()
        delta[np.arange(n), labels] -= 1.0
        return float(loss), delta / n
