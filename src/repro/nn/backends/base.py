"""The compute-backend interface for the NN hot paths.

Every tensor op that dominates training wall-clock — ``im2col``/``col2im``,
the batched GEMMs, fused bias+activation forward/backward, max-pool
forward/argmax-backward, and the fused softmax+cost — sits behind
:class:`ComputeBackend`. Layers delegate their ``forward``/``backward``
bodies here, so swapping the implementation (the verbatim ``reference``
numpy backend vs the buffer-pooled ``optimized`` backend) never changes a
call site: ``PartitionedNetwork``, ``ResilientTrainer``, and the
``repro.distributed`` workers all inherit whichever backend the network was
given.

Scratch memory is owned by a per-layer :class:`BufferPool`, keyed by name,
shape, and dtype, so the steady-state training loop reuses the same im2col
columns, padded rings, and activation-gradient buffers batch after batch
instead of reallocating them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "BufferPool",
    "ComputeBackend",
    "maxpool_scatter",
    "maxpool_backward_loop",
]

Shape = Tuple[int, ...]


class BufferPool:
    """Named, shape/dtype-keyed reusable scratch buffers for one layer.

    ``get`` hands back the same array every call while the requested shape
    and dtype are stable (the steady state of mini-batch training); a
    changed shape — e.g. the smaller final batch of an epoch, or a float64
    gradient check — transparently reallocates that slot. Buffers are
    *scratch*: callers must never return them as layer outputs, which stay
    freshly allocated so collected activations cannot alias.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def get(self, name: str, shape: Shape, dtype) -> np.ndarray:
        """An uninitialised buffer (contents are stale; caller overwrites)."""
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    def zeros(self, name: str, shape: Shape, dtype) -> np.ndarray:
        """A buffer zero-filled on *every* call (accumulation targets)."""
        buf = self.get(name, shape, dtype)
        buf.fill(0)
        return buf

    def zeros_on_alloc(self, name: str, shape: Shape, dtype) -> np.ndarray:
        """A buffer zeroed only when (re)allocated.

        For padded rings whose interior is overwritten every call while the
        halo must stay zero: the zero edges survive across calls because no
        op ever writes them.
        """
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.zeros(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    def clear(self) -> None:
        self._buffers.clear()

    def nbytes(self) -> int:
        """Total bytes currently pooled (telemetry/debugging)."""
        return sum(buf.nbytes for buf in self._buffers.values())


def maxpool_backward_loop(delta: np.ndarray, argmax: np.ndarray,
                          input_shape: Shape, size: int,
                          stride: int) -> np.ndarray:
    """The legacy k x k python scatter loop (pre-vectorization semantics).

    Kept as the bitwise oracle for :func:`maxpool_scatter`'s regression
    tests; not used on any hot path.
    """
    n, h, w, c = input_shape
    oh, ow = delta.shape[1:3]
    dx = np.zeros((n, h, w, c), dtype=delta.dtype)
    k, s = size, stride
    for i in range(k):
        for j in range(k):
            mask = argmax == i * k + j
            dx[:, i : i + oh * s : s, j : j + ow * s : s, :] += delta * mask
    return dx


def maxpool_scatter(delta: np.ndarray, argmax: np.ndarray, input_shape: Shape,
                    size: int, stride: int) -> np.ndarray:
    """Route ``delta`` back to the argmax positions of a max-pool.

    For the common non-overlapping case (``stride >= size``) every pooling
    window owns a disjoint input region, so the k x k mask loop collapses to
    one vectorised fancy-index assignment — bitwise identical to the loop
    because each target cell receives exactly one contribution. Overlapping
    windows (``stride < size``) can accumulate several contributions per
    cell and therefore keep the loop's exact accumulation order.
    """
    n, h, w, c = input_shape
    oh, ow = delta.shape[1:3]
    if stride < size:
        return maxpool_backward_loop(delta, argmax, input_shape, size, stride)
    dx = np.zeros((n, h, w, c), dtype=delta.dtype)
    ni, ii, jj, ci = np.ogrid[:n, :oh, :ow, :c]
    rows = ii * stride + argmax // size
    cols = jj * stride + argmax % size
    dx[ni, rows, cols, ci] = delta
    return dx


class ComputeBackend:
    """Interface: the tensor ops behind every layer's forward/backward.

    Composed, layer-facing ops (``conv_forward`` .. ``softmax_cost``) are
    what the layers call; the finer-grained ops (``im2col``, ``col2im``,
    ``gemm``) are exposed so subclasses can share and tests can target them
    individually. Backends are stateless and shared process-wide — all
    mutable scratch lives in each layer's :class:`BufferPool`.
    """

    name = "abstract"

    # -- fine-grained ops ----------------------------------------------------

    def im2col(self, pool: BufferPool, x: np.ndarray, size: int, stride: int,
               pad: int) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Unfold conv windows into a ``(n*oh*ow, k*k*c)`` matrix."""
        raise NotImplementedError

    def col2im(self, pool: BufferPool, dcols: np.ndarray, input_shape: Shape,
               oh: int, ow: int, size: int, stride: int,
               pad: int) -> np.ndarray:
        """Fold column gradients back onto the (padded) input grid."""
        raise NotImplementedError

    def gemm(self, a: np.ndarray, b: np.ndarray,
             out: Optional[np.ndarray] = None) -> np.ndarray:
        """Matrix multiply ``a @ b`` (optionally into ``out``)."""
        raise NotImplementedError

    # -- composed layer ops --------------------------------------------------

    def conv_forward(self, layer, x: np.ndarray, training: bool) -> np.ndarray:
        raise NotImplementedError

    def conv_backward(self, layer, delta: np.ndarray,
                      need_input_grad: bool = True) -> Optional[np.ndarray]:
        raise NotImplementedError

    def dense_forward(self, layer, x: np.ndarray, training: bool) -> np.ndarray:
        raise NotImplementedError

    def dense_backward(self, layer, delta: np.ndarray,
                       need_input_grad: bool = True) -> Optional[np.ndarray]:
        raise NotImplementedError

    def maxpool_forward(self, layer, x: np.ndarray, training: bool) -> np.ndarray:
        raise NotImplementedError

    def maxpool_backward(self, layer, delta: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def softmax(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def softmax_cost(self, probs: np.ndarray,
                     labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Fused cross-entropy loss and d(loss)/d(logits)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
