"""Pluggable compute backends for the NN hot paths.

Two implementations ship: ``reference`` (the original numpy kernels,
verbatim — the parity oracle) and ``optimized`` (buffer-pooled, fused,
thread-capable — the fast path). Selection order, most specific wins:

1. ``Network(..., backend=...)`` / ``network.set_backend(...)``
2. the ``REPRO_NN_BACKEND`` environment variable
3. the process-wide default (``reference``)

Backends are stateless singletons; all per-layer scratch lives in each
layer's :class:`~repro.nn.backends.base.BufferPool`.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.nn.backends.base import (
    BufferPool,
    ComputeBackend,
    maxpool_backward_loop,
    maxpool_scatter,
)
from repro.nn.backends.optimized import OptimizedBackend
from repro.nn.backends.reference import ReferenceBackend

__all__ = [
    "BufferPool",
    "ComputeBackend",
    "OptimizedBackend",
    "ReferenceBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "maxpool_backward_loop",
    "maxpool_scatter",
    "resolve_backend",
    "set_default_backend",
]

ENV_VAR = "REPRO_NN_BACKEND"

_REGISTRY = {
    "reference": ReferenceBackend,
    "optimized": OptimizedBackend,
}

_instances: Dict[str, ComputeBackend] = {}
_default_name: Optional[str] = None


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, in preference-documentation order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> ComputeBackend:
    """The shared singleton for ``name`` (``reference`` / ``optimized``)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown nn backend {name!r}; available: "
            + ", ".join(available_backends())
        ) from None
    instance = _instances.get(name)
    if instance is None:
        instance = cls()
        _instances[name] = instance
    return instance


def set_default_backend(name: Optional[str]) -> None:
    """Pin the process default (``None`` restores env-var/``reference``)."""
    if name is not None:
        get_backend(name)  # validate eagerly
    global _default_name
    _default_name = name


def default_backend() -> ComputeBackend:
    """The backend used by layers with no explicit assignment.

    Re-reads ``REPRO_NN_BACKEND`` on every call so tests (and operators)
    can flip the environment without re-importing anything.
    """
    if _default_name is not None:
        return get_backend(_default_name)
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        return get_backend(env)
    return get_backend("reference")


def resolve_backend(
    backend: Union[None, str, ComputeBackend]
) -> Optional[ComputeBackend]:
    """Normalise a user-supplied backend spec; ``None`` stays ``None``
    (meaning: follow :func:`default_backend` dynamically)."""
    if backend is None:
        return None
    if isinstance(backend, ComputeBackend):
        return backend
    return get_backend(backend)
