"""The optimized backend: pooled buffers, fused kernels, threaded GEMM.

Same math as :class:`~repro.nn.backends.reference.ReferenceBackend`, spent
differently:

* **No steady-state allocations.** im2col columns, padded rings, and
  activation-gradient buffers come from the layer's
  :class:`~repro.nn.backends.base.BufferPool` and are reused every batch.
  Layer *outputs* are still freshly allocated (so collected activations
  never alias) but are computed in place — GEMM straight into the output,
  bias and activation fused on top.

* **float32 end to end.** The reference activation gradient promotes the
  whole backward sweep to float64 via python-float ``np.where`` branches;
  here gradients are computed from the cached *outputs* in the input dtype
  (``out > 0`` decides the leaky/relu branch exactly as ``z > 0`` does,
  since ``out = max(z, slope*z)`` preserves sign).

* **Transposed-conv input gradients.** For stride-1 convolutions the
  ``col2im`` scatter loop is replaced by a second GEMM: correlate the
  (zero-padded) output gradient with the 180-degree-rotated kernel. Strided
  convolutions keep the scatter fallback on pooled buffers.

* **Thread-pooled batch GEMM.** When ``REPRO_NN_THREADS`` grants more than
  one worker (threading is opt-in; the default is a single thread), the
  big row-dimension (= minibatch-major) GEMMs are split into deterministic
  contiguous row chunks dispatched to a shared thread pool, each writing a
  disjoint slice of the output. The partition is a pure function of the
  shape and thread count, so the single-thread default is bit-identical
  across hosts, and threaded runs are reproducible for a fixed
  ``REPRO_NN_THREADS`` (checkpoint-resume and distributed
  replica-consistency both rely on this).

* **Skippable input gradients.** ``train_batch`` does not need
  d(loss)/d(input) of the first layer; backends receive
  ``need_input_grad=False`` there and skip the dcols GEMM + fold entirely.

Float outputs match the reference within tolerance (different but valid
summation orders); integer/argmax paths — pool argmax and the routing of
pool gradients — match bitwise.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.backends.base import (
    BufferPool,
    ComputeBackend,
    Shape,
    maxpool_scatter,
)

__all__ = ["OptimizedBackend"]

_LEAKY_SLOPE = 0.1  # must track repro.nn.layers.activations._LEAKY_SLOPE

#: Below this many output elements a GEMM is not worth dispatching to
#: threads (chunk setup would dominate).
_THREAD_MIN_OUT = 1 << 16


def _env_threads() -> int:
    # Threading is strictly opt-in: the row-chunk partition is a function of
    # the thread count, so a cpu_count() default would silently change float
    # summation shapes between hosts with different core counts. One thread
    # keeps results host-independent unless the user explicitly asks.
    raw = os.environ.get("REPRO_NN_THREADS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            return 1
    return 1


class OptimizedBackend(ComputeBackend):
    """Buffer-pooled, fused, optionally thread-parallel numpy kernels."""

    name = "optimized"

    def __init__(self, threads: Optional[int] = None) -> None:
        self.threads = _env_threads() if threads is None else max(1, int(threads))
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- threaded GEMM -------------------------------------------------------

    def _row_chunks(self, rows: int) -> List[Tuple[int, int]]:
        """Deterministic contiguous row partition: a function of shape only."""
        t = min(self.threads, rows)
        base, extra = divmod(rows, t)
        bounds, lo = [], 0
        for i in range(t):
            hi = lo + base + (1 if i < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def gemm(self, a: np.ndarray, b: np.ndarray,
             out: Optional[np.ndarray] = None) -> np.ndarray:
        """``a @ b``, row-chunked across the thread pool when it pays off."""
        if out is None:
            out = np.empty((a.shape[0], b.shape[1]),
                           dtype=np.result_type(a.dtype, b.dtype))
        if a.dtype != b.dtype or a.dtype != out.dtype:
            out[...] = a @ b  # mixed-dtype oddball: let numpy promote
            return out
        rows = a.shape[0]
        if (self.threads <= 1 or rows < 2 * self.threads
                or rows * b.shape[1] < _THREAD_MIN_OUT):
            np.matmul(a, b, out=out)
            return out
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="repro-nn-gemm"
            )
        futures = [
            self._executor.submit(np.matmul, a[lo:hi], b, out=out[lo:hi])
            for lo, hi in self._row_chunks(rows)
        ]
        for future in futures:
            future.result()  # propagate worker exceptions
        return out

    # -- im2col / col2im -----------------------------------------------------

    def im2col(self, pool: BufferPool, x: np.ndarray, size: int, stride: int,
               pad: int) -> Tuple[np.ndarray, Tuple[int, int]]:
        n, h, w, c = x.shape
        oh = (h + 2 * pad - size) // stride + 1
        ow = (w + 2 * pad - size) // stride + 1
        if size == 1 and stride == 1 and pad == 0:
            # 1x1 conv: the column matrix IS the input, no copy needed.
            return np.ascontiguousarray(x.reshape(n * h * w, c)), (oh, ow)
        if pad:
            xp = pool.zeros_on_alloc(
                "im2col.padded", (n, h + 2 * pad, w + 2 * pad, c), x.dtype
            )
            np.copyto(xp[:, pad : pad + h, pad : pad + w, :], x)
        else:
            xp = x
        cols = pool.get("im2col.cols", (n * oh * ow, size * size * c), x.dtype)
        windows = sliding_window_view(xp, (size, size), axis=(1, 2))
        windows = windows[:, ::stride, ::stride].transpose(0, 1, 2, 4, 5, 3)
        np.copyto(cols.reshape(n, oh, ow, size, size, c), windows)
        return cols, (oh, ow)

    def col2im(self, pool: BufferPool, dcols: np.ndarray, input_shape: Shape,
               oh: int, ow: int, size: int, stride: int,
               pad: int) -> np.ndarray:
        n, h, w, c = input_shape
        p, k, s = pad, size, stride
        dxp = pool.zeros("col2im.padded", (n, h + 2 * p, w + 2 * p, c),
                         dcols.dtype)
        folded = dcols.reshape(n, oh, ow, k, k, c)
        for i in range(k):
            for j in range(k):
                dxp[:, i : i + oh * s : s, j : j + ow * s : s, :] += folded[:, :, :, i, j, :]
        dx = np.empty((n, h, w, c), dtype=dcols.dtype)
        if p:
            np.copyto(dx, dxp[:, p : p + h, p : p + w, :])
        else:
            np.copyto(dx, dxp)
        return dx

    # -- fused bias + activation ---------------------------------------------

    def _bias_act_forward(self, pool: BufferPool, z2d: np.ndarray,
                          bias: np.ndarray, activation: str) -> None:
        """In place on ``z2d``: add bias, apply the activation."""
        z2d += bias
        if activation == "linear":
            return
        if activation == "relu":
            np.maximum(z2d, 0.0, out=z2d)
        elif activation == "leaky":
            # max(z, slope*z) == where(z > 0, z, slope*z) bitwise (slope < 1).
            tmp = pool.get("act.tmp", z2d.shape, z2d.dtype)
            np.multiply(z2d, _LEAKY_SLOPE, out=tmp)
            np.maximum(z2d, tmp, out=z2d)
        elif activation == "tanh":
            np.tanh(z2d, out=z2d)
        elif activation == "sigmoid":
            np.negative(z2d, out=z2d)
            np.exp(z2d, out=z2d)
            z2d += 1.0
            np.reciprocal(z2d, out=z2d)
        else:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"unknown activation {activation!r}")

    def _act_backward(self, pool: BufferPool, out2d: np.ndarray,
                      delta2d: np.ndarray, activation: str) -> np.ndarray:
        """d(loss)/dz from the *cached output* — never recomputes the
        activation and never writes ``delta2d`` (residual blocks reuse it)."""
        if activation == "linear":
            return delta2d
        dtype = np.result_type(delta2d.dtype, out2d.dtype)
        dz = pool.get("act.dz", out2d.shape, dtype)
        if activation == "relu":
            # out = max(z, 0): out > 0 iff z > 0.
            dz.fill(0)
            np.copyto(dz, delta2d, where=out2d > 0)
        elif activation == "leaky":
            # out = max(z, slope*z) keeps the sign of z, so out > 0 iff z > 0.
            np.multiply(delta2d, _LEAKY_SLOPE, out=dz)
            np.copyto(dz, delta2d, where=out2d > 0)
        elif activation == "tanh":
            np.multiply(out2d, out2d, out=dz)  # tanh' = 1 - out^2
            np.subtract(1.0, dz, out=dz)
            dz *= delta2d
        elif activation == "sigmoid":
            np.subtract(1.0, out2d, out=dz)  # sigmoid' = out * (1 - out)
            dz *= out2d
            dz *= delta2d
        else:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"unknown activation {activation!r}")
        return dz

    def _accumulate_grads(self, layer, a2d: np.ndarray,
                          dz2d: np.ndarray) -> None:
        """``grad_w += a2d.T @ dz2d`` and ``grad_b += dz2d.sum(0)`` through
        pooled scratch (the accumulators themselves are never replaced)."""
        pool = layer._pool
        w_shape = layer.weights.shape
        units = dz2d.shape[1]
        if a2d.dtype == dz2d.dtype:
            gw = pool.get("grad.w", (a2d.shape[1], units), dz2d.dtype)
            np.matmul(a2d.T, dz2d, out=gw)
        else:
            gw = a2d.T @ dz2d
        layer._grad_w += gw.reshape(w_shape)
        gb = pool.get("grad.b", (units,), dz2d.dtype)
        np.sum(dz2d, axis=0, out=gb)
        layer._grad_b += gb

    # -- conv ----------------------------------------------------------------

    def conv_forward(self, layer, x: np.ndarray, training: bool) -> np.ndarray:
        n = x.shape[0]
        pool = layer._pool
        dtype = np.result_type(x.dtype, layer.weights.dtype)
        cols, (oh, ow) = self.im2col(
            pool, x, layer.size, layer.stride, layer._pad_amount()
        )
        w_mat = layer.weights.reshape(-1, layer.filters)
        out = np.empty((n, oh, ow, layer.filters), dtype=dtype)
        out2d = out.reshape(-1, layer.filters)
        self.gemm(cols, w_mat, out=out2d)
        self._bias_act_forward(pool, out2d, layer.bias, layer.activation)
        if training:
            layer._cache["cols"] = cols
            layer._cache["out"] = out
            layer._cache["input_shape"] = x.shape
        return out

    def conv_backward(self, layer, delta: np.ndarray,
                      need_input_grad: bool = True) -> Optional[np.ndarray]:
        cols = layer._pop_cache("cols")
        out = layer._cache.pop("out")
        input_shape = layer._cache.pop("input_shape")
        pool = layer._pool
        n, oh, ow, f = delta.shape
        dz = self._act_backward(
            pool, out.reshape(-1, f), delta.reshape(-1, f), layer.activation
        )
        if not layer.frozen:
            self._accumulate_grads(layer, cols, dz)
        if not need_input_grad:
            return None
        if layer.stride == 1:
            return self._conv_input_grad_gemm(layer, pool, dz, input_shape,
                                              oh, ow)
        w_mat = layer.weights.reshape(-1, layer.filters)
        dcols = pool.get("conv.dcols", (dz.shape[0], w_mat.shape[0]), dz.dtype)
        self.gemm(dz, _as_dtype(w_mat.T, dz.dtype), out=dcols)
        return self.col2im(pool, dcols, input_shape, oh, ow,
                           layer.size, layer.stride, layer._pad_amount())

    def _conv_input_grad_gemm(self, layer, pool: BufferPool, dz: np.ndarray,
                              input_shape: Shape, oh: int,
                              ow: int) -> np.ndarray:
        """Stride-1 input gradient as a transposed convolution.

        ``dx = correlate(pad(dz, k-1-p), rot180(W))`` — one im2col copy plus
        one GEMM instead of the k*k ``col2im`` scatter loop. Different
        summation order than the scatter (float-tolerance parity, like every
        float path here), identical math.
        """
        n, h, w, c = input_shape
        k = layer.size
        f = layer.filters
        # rot180 + swap in/out channels: (k, k, c, f) -> (k*k*f, c).
        w_rot = layer.weights[::-1, ::-1].transpose(0, 1, 3, 2).reshape(-1, c)
        w_rot = _as_dtype(w_rot, dz.dtype)
        dx = np.empty((n, h, w, c), dtype=dz.dtype)
        if k == 1:
            self.gemm(dz, w_rot, out=dx.reshape(-1, c))
            return dx
        q = k - 1 - layer._pad_amount()
        dz4 = dz.reshape(n, oh, ow, f)
        if q:
            dzp = pool.zeros_on_alloc(
                "convT.padded", (n, oh + 2 * q, ow + 2 * q, f), dz.dtype
            )
            np.copyto(dzp[:, q : q + oh, q : q + ow, :], dz4)
        else:
            dzp = dz4
        dzcols = pool.get("convT.cols", (n * h * w, k * k * f), dz.dtype)
        windows = sliding_window_view(dzp, (k, k), axis=(1, 2))
        windows = windows.transpose(0, 1, 2, 4, 5, 3)
        np.copyto(dzcols.reshape(n, h, w, k, k, f), windows)
        self.gemm(dzcols, w_rot, out=dx.reshape(-1, c))
        return dx

    # -- dense ---------------------------------------------------------------

    def dense_forward(self, layer, x: np.ndarray, training: bool) -> np.ndarray:
        pool = layer._pool
        dtype = np.result_type(x.dtype, layer.weights.dtype)
        out = np.empty((x.shape[0], layer.units), dtype=dtype)
        self.gemm(_as_dtype(np.ascontiguousarray(x), dtype),
                  _as_dtype(layer.weights, dtype), out=out)
        self._bias_act_forward(pool, out, layer.bias, layer.activation)
        if training:
            layer._cache["x"] = x
            layer._cache["out"] = out
        return out

    def dense_backward(self, layer, delta: np.ndarray,
                       need_input_grad: bool = True) -> Optional[np.ndarray]:
        x = layer._pop_cache("x")
        out = layer._cache.pop("out")
        pool = layer._pool
        dz = self._act_backward(pool, out, delta, layer.activation)
        if not layer.frozen:
            self._accumulate_grads(layer, np.ascontiguousarray(x), dz)
        if not need_input_grad:
            return None
        dx = np.empty((dz.shape[0], layer.weights.shape[0]), dtype=dz.dtype)
        self.gemm(dz, _as_dtype(layer.weights.T, dz.dtype), out=dx)
        return dx

    # -- pooling -------------------------------------------------------------

    def maxpool_forward(self, layer, x: np.ndarray, training: bool) -> np.ndarray:
        k, s = layer.size, layer.stride
        n, h, w, c = x.shape
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        # k*k strided window views — no 6-d window copy, no flat reshape.
        views = [
            x[:, i : i + (oh - 1) * s + 1 : s, j : j + (ow - 1) * s + 1 : s, :]
            for i in range(k)
            for j in range(k)
        ]
        out = np.empty((n, oh, ow, c), dtype=x.dtype)
        np.copyto(out, views[0])
        for view in views[1:]:
            np.maximum(out, view, out=out)
        if training:
            # First-occurrence argmax, bitwise-equal to flat argmax over the
            # (kh, kw) window: descending writes down to and including index
            # 0 leave the smallest matching flat index in place (the write at
            # 0 reclaims ties between index 0 and later positions; the
            # fill(0) only covers the impossible no-match case).
            argmax = layer._pool.get("maxpool.argmax", out.shape, np.intp)
            argmax.fill(0)
            for idx in range(k * k - 1, -1, -1):
                np.copyto(argmax, idx, where=views[idx] == out)
            layer._cache["argmax"] = argmax
            layer._cache["input_shape"] = x.shape
        return out

    def maxpool_backward(self, layer, delta: np.ndarray) -> np.ndarray:
        argmax = layer._pop_cache("argmax")
        input_shape = layer._cache.pop("input_shape")
        return maxpool_scatter(delta, argmax, input_shape, layer.size,
                               layer.stride)

    # -- softmax / cost ------------------------------------------------------

    def softmax(self, x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        np.subtract(x, x.max(axis=-1, keepdims=True), out=out)
        np.exp(out, out=out)
        out /= out.sum(axis=-1, keepdims=True)
        return out

    def softmax_cost(self, probs: np.ndarray,
                     labels: np.ndarray) -> Tuple[float, np.ndarray]:
        n = probs.shape[0]
        rows = np.arange(n)
        loss = -np.log(probs[rows, labels] + 1e-12).mean()
        delta = probs.copy()
        delta[rows, labels] -= 1.0
        delta /= n
        return float(loss), delta


def _as_dtype(a: np.ndarray, dtype) -> np.ndarray:
    return a if a.dtype == dtype else a.astype(dtype)
