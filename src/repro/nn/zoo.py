"""Model zoo: the paper's exact architectures plus test/face models.

* :func:`cifar10_10layer` — Table I: the 10-layer CIFAR-10 network.
* :func:`cifar10_18layer` — Table II: the 18-layer CIFAR-10 network with
  three dropout layers (p = 0.5).
* :func:`face_recognition_net` — a scaled-down VGG-Face stand-in whose
  penultimate (pre-softmax) embedding plays the fingerprint role of
  VGG-Face's 2622-dimensional fc8 layer in the accountability experiments.
* :func:`tiny_testnet` — a minimal net for fast unit tests.

Both CIFAR nets take 28x28x3 inputs, exactly as the paper's tables do
(CIFAR-10 images random-cropped from 32x32 to 28x28, a standard Darknet
augmentation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.initializers import Initializer, gaussian_init
from repro.nn.layers import (
    AvgPoolLayer,
    ConvLayer,
    CostLayer,
    DenseLayer,
    DropoutLayer,
    FlattenLayer,
    MaxPoolLayer,
    SoftmaxLayer,
)
from repro.nn.network import Network

__all__ = [
    "cifar10_10layer",
    "cifar10_18layer",
    "face_recognition_net",
    "tiny_testnet",
    "CIFAR_INPUT_SHAPE",
]

CIFAR_INPUT_SHAPE = (28, 28, 3)


def _default_init(rng: Optional[np.random.Generator]) -> Initializer:
    return gaussian_init(rng if rng is not None else np.random.default_rng(0))


def cifar10_10layer(rng: Optional[np.random.Generator] = None,
                    width_scale: float = 1.0) -> Network:
    """Table I: the 10-layer CIFAR-10 architecture.

    ``width_scale`` shrinks the filter counts proportionally so the same
    topology can run at laptop scale (1.0 reproduces the table exactly).
    """
    w = lambda f: max(4, int(round(f * width_scale)))
    layers = [
        ConvLayer(w(128), 3, 1),       # 1
        ConvLayer(w(128), 3, 1),       # 2
        MaxPoolLayer(2, 2),            # 3
        ConvLayer(w(64), 3, 1),        # 4
        MaxPoolLayer(2, 2),            # 5
        ConvLayer(w(128), 3, 1),       # 6
        ConvLayer(10, 1, 1, activation="linear"),  # 7
        AvgPoolLayer(),                # 8
        SoftmaxLayer(),                # 9
        CostLayer(),                   # 10
    ]
    return Network(CIFAR_INPUT_SHAPE, layers, initializer=_default_init(rng))


def cifar10_18layer(rng: Optional[np.random.Generator] = None,
                    width_scale: float = 1.0) -> Network:
    """Table II: the 18-layer CIFAR-10 architecture (dropout p = 0.5)."""
    w = lambda f: max(4, int(round(f * width_scale)))
    layers = [
        ConvLayer(w(128), 3, 1),       # 1
        ConvLayer(w(128), 3, 1),       # 2
        ConvLayer(w(128), 3, 1),       # 3
        MaxPoolLayer(2, 2),            # 4
        DropoutLayer(0.5),             # 5
        ConvLayer(w(256), 3, 1),       # 6
        ConvLayer(w(256), 3, 1),       # 7
        ConvLayer(w(256), 3, 1),       # 8
        MaxPoolLayer(2, 2),            # 9
        DropoutLayer(0.5),             # 10
        ConvLayer(w(512), 3, 1),       # 11
        ConvLayer(w(512), 3, 1),       # 12
        ConvLayer(w(512), 3, 1),       # 13
        DropoutLayer(0.5),             # 14
        ConvLayer(10, 1, 1, activation="linear"),  # 15
        AvgPoolLayer(),                # 16
        SoftmaxLayer(),                # 17
        CostLayer(),                   # 18
    ]
    return Network(CIFAR_INPUT_SHAPE, layers, initializer=_default_init(rng))


def face_recognition_net(num_classes: int, embedding_dim: int = 64,
                         input_shape=(16, 16, 3),
                         rng: Optional[np.random.Generator] = None) -> Network:
    """A compact VGG-Face stand-in for the accountability experiments.

    The layer before the softmax is a ``num_classes``-wide dense layer, so
    fingerprints are class-score embeddings exactly as in VGG-Face (whose
    penultimate fc8 layer has one dimension per class, 2622 in the paper).
    """
    layers = [
        ConvLayer(16, 3, 1),
        MaxPoolLayer(2, 2),
        ConvLayer(32, 3, 1),
        MaxPoolLayer(2, 2),
        FlattenLayer(),
        DenseLayer(embedding_dim, activation="leaky"),
        DenseLayer(num_classes, activation="linear"),
        SoftmaxLayer(),
        CostLayer(),
    ]
    return Network(input_shape, layers, initializer=_default_init(rng))


def tiny_testnet(rng: Optional[np.random.Generator] = None,
                 input_shape=(8, 8, 3), num_classes: int = 4) -> Network:
    """A minimal conv net for fast unit tests."""
    layers = [
        ConvLayer(8, 3, 1),
        MaxPoolLayer(2, 2),
        ConvLayer(num_classes, 1, 1, activation="linear"),
        AvgPoolLayer(),
        SoftmaxLayer(),
        CostLayer(),
    ]
    return Network(input_shape, layers, initializer=_default_init(rng))
