"""Optimizers: SGD with momentum (the paper's), Adam, and DP-SGD.

DP-SGD is the paper's sketched privacy extension (Section VII): CalTrain is
"transparent to training algorithms" and can "seamlessly replace the
standard SGD with Differential Private SGD".
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Optimizer", "Sgd", "Adam", "DpSgd", "PerExampleDpSgd"]


def _buffers_out(buffers: Dict[Tuple[int, str], np.ndarray]) -> Dict[str, np.ndarray]:
    """Flatten ``(layer, param)``-keyed buffers to string keys for I/O."""
    return {f"{i}/{name}": arr.copy() for (i, name), arr in buffers.items()}


def _buffers_in(flat: Dict[str, np.ndarray]) -> Dict[Tuple[int, str], np.ndarray]:
    """Inverse of :func:`_buffers_out`."""
    buffers: Dict[Tuple[int, str], np.ndarray] = {}
    for key, arr in flat.items():
        layer, name = key.split("/", 1)
        buffers[(int(layer), name)] = np.array(arr, copy=True)
    return buffers


class Optimizer:
    """Interface: apply accumulated gradients to a network's parameters.

    Concrete steps run *in place*: parameter updates are decomposed into
    the exact elementwise operations (same order, same dtypes) the original
    expression-form updates performed, but writing into per-parameter
    scratch buffers instead of fresh temporaries — bitwise-identical
    results with zero steady-state allocation. Scratch never appears in
    :meth:`state_dict`.
    """

    def __init__(self) -> None:
        self._scratch: Dict[Tuple[Tuple[int, str], int], np.ndarray] = {}

    def _work(self, key: Tuple[int, str], slot: int, shape: Tuple[int, ...],
              dtype) -> np.ndarray:
        buf = self._scratch.get((key, slot))
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[(key, slot)] = buf
        return buf

    def step(self, network) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable internal state (moment buffers, step counters).

        Hyperparameters are *not* included — they belong to the run
        configuration, not the accumulated training state. A stateless
        optimizer returns ``{}``.
        """
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict` (exact resume)."""
        if state:
            raise ConfigurationError(
                f"{type(self).__name__} carries no state but got keys "
                f"{sorted(state)}"
            )

    def _iter_params(self, network):
        for i, layer in enumerate(network.layers):
            if layer.frozen:
                continue
            params, grads = layer.params(), layer.grads()
            for name in params:
                yield (i, name), params[name], grads[name]


class Sgd(Optimizer):
    """Mini-batch SGD with momentum and L2 weight decay (Darknet's default)."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9,
                 weight_decay: float = 0.0,
                 max_grad_norm: Optional[float] = 5.0) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ConfigurationError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def state_dict(self) -> Dict[str, Any]:
        return {"velocity": _buffers_out(self._velocity)}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._velocity = _buffers_in(state.get("velocity", {}))

    def _clip_scale(self, network) -> float:
        if self.max_grad_norm is None:
            return 1.0
        total_sq = sum(
            float(np.sum(g * g)) for _, _, g in self._iter_params(network)
        )
        norm = np.sqrt(total_sq)
        if norm <= self.max_grad_norm:
            return 1.0
        return self.max_grad_norm / (norm + 1e-12)

    def step(self, network) -> None:
        clip = self._clip_scale(network)
        for key, param, grad in self._iter_params(network):
            update = grad
            if clip != 1.0:
                # ``clip`` is an np.float64 scalar, so the original
                # expression promoted the update chain to float64; scratch
                # must follow the same promotion to stay bitwise-equal.
                dt = np.result_type(grad.dtype, np.float64)
                scaled = self._work(key, 0, grad.shape, dt)
                np.multiply(grad, clip, out=scaled)
                update = scaled
            if self.weight_decay and key[1] != "bias":
                decay = self._work(key, 1, param.shape, param.dtype)
                np.multiply(param, self.weight_decay, out=decay)
                dt = np.result_type(update.dtype, decay.dtype)
                summed = self._work(key, 0, update.shape, dt)
                np.add(update, decay, out=summed)
                update = summed
            stepbuf = self._work(key, 2, update.shape, update.dtype)
            np.multiply(update, self.learning_rate, out=stepbuf)
            if self.momentum:
                velocity = self._velocity.setdefault(key, np.zeros_like(param))
                velocity *= self.momentum
                velocity -= stepbuf
                param += velocity
            else:
                param -= stepbuf


class Adam(Optimizer):
    """Adam (Kingma & Ba), for the extension experiments."""

    def __init__(self, learning_rate: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[Tuple[int, str], np.ndarray] = {}
        self._v: Dict[Tuple[int, str], np.ndarray] = {}
        self._t = 0

    def state_dict(self) -> Dict[str, Any]:
        return {"m": _buffers_out(self._m), "v": _buffers_out(self._v),
                "t": self._t}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._m = _buffers_in(state.get("m", {}))
        self._v = _buffers_in(state.get("v", {}))
        self._t = int(state.get("t", 0))

    def step(self, network) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for key, param, grad in self._iter_params(network):
            m = self._m.setdefault(key, np.zeros_like(param))
            v = self._v.setdefault(key, np.zeros_like(param))
            t1 = self._work(key, 0, param.shape, param.dtype)
            t2 = self._work(key, 1, param.shape, param.dtype)
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=t1)
            m += t1
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=t1)
            t1 *= grad
            v += t1
            np.divide(m, bias1, out=t1)
            t1 *= self.learning_rate
            np.divide(v, bias2, out=t2)
            np.sqrt(t2, out=t2)
            t2 += self.eps
            t1 /= t2
            param -= t1


class DpSgd(Sgd):
    """Differentially private SGD (Abadi et al. style, batch-clipped).

    Clips the global gradient norm to ``clip_norm`` and adds Gaussian noise
    with standard deviation ``noise_multiplier * clip_norm / batch_size``.
    This is the batch-gradient approximation of per-example clipping: it
    preserves the accuracy/privacy trade-off *shape* the ablation bench
    measures while staying tractable in numpy. Documented in DESIGN.md.
    """

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9,
                 clip_norm: float = 1.0, noise_multiplier: float = 1.0,
                 batch_size: int = 32,
                 rng: Optional[np.random.Generator] = None) -> None:
        # The DP clip replaces the base safety clip: re-clipping after noise
        # injection would scale the calibrated noise back down and break the
        # privacy accounting.
        super().__init__(learning_rate=learning_rate, momentum=momentum,
                         max_grad_norm=None)
        if clip_norm <= 0:
            raise ConfigurationError("clip_norm must be positive")
        if noise_multiplier < 0:
            raise ConfigurationError("noise_multiplier must be non-negative")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier
        self.batch_size = batch_size
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["rng"] = copy.deepcopy(self.rng.bit_generator.state)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        state = dict(state)
        rng_state = state.pop("rng", None)
        super().load_state_dict(state)
        if rng_state is not None:
            self.rng.bit_generator.state = copy.deepcopy(rng_state)

    def step(self, network) -> None:
        entries = list(self._iter_params(network))
        total_sq = sum(float(np.sum(g * g)) for _, _, g in entries)
        total_norm = np.sqrt(total_sq)
        scale = min(1.0, self.clip_norm / (total_norm + 1e-12))
        noise_std = self.noise_multiplier * self.clip_norm / max(1, self.batch_size)
        for _, _, grad in entries:
            grad *= scale
            grad += self.rng.normal(0.0, noise_std, size=grad.shape).astype(grad.dtype)
        super().step(network)


class PerExampleDpSgd:
    """Faithful DP-SGD (Abadi et al.): per-example gradient clipping.

    Unlike :class:`DpSgd` (the fast batch-clipped approximation), this
    clips each example's gradient to ``clip_norm`` *individually* before
    averaging and noising — the construction the (epsilon, delta) analysis
    and the membership-inference protection actually depend on. It owns the
    whole training step (per-example backward passes), so it exposes
    :meth:`train_batch` instead of the ``Optimizer.step`` interface.
    """

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9,
                 clip_norm: float = 1.0, noise_multiplier: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if clip_norm <= 0:
            raise ConfigurationError("clip_norm must be positive")
        if noise_multiplier < 0:
            raise ConfigurationError("noise_multiplier must be non-negative")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._sgd = Sgd(learning_rate=learning_rate, momentum=momentum,
                        max_grad_norm=None)

    @property
    def learning_rate(self) -> float:
        return self._sgd.learning_rate

    @learning_rate.setter
    def learning_rate(self, value: float) -> None:
        self._sgd.learning_rate = value

    def state_dict(self) -> Dict[str, Any]:
        state = self._sgd.state_dict()
        state["rng"] = copy.deepcopy(self.rng.bit_generator.state)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        state = dict(state)
        rng_state = state.pop("rng", None)
        self._sgd.load_state_dict(state)
        if rng_state is not None:
            self.rng.bit_generator.state = copy.deepcopy(rng_state)

    def train_batch(self, model, x: np.ndarray, labels: np.ndarray) -> float:
        """One DP-SGD step over a mini-batch; returns the mean loss.

        ``model`` is anything with ``forward``/``backward``/``network``
        semantics — a :class:`repro.nn.network.Network` or a
        :class:`repro.core.partition.PartitionedNetwork`.
        """
        network = getattr(model, "network", model)
        batch = x.shape[0]
        accumulated = None
        losses = []
        for i in range(batch):
            network.zero_grads()
            probs = model.forward(x[i : i + 1], training=True)
            loss, delta = network.cost_layer().loss_and_delta(
                probs, labels[i : i + 1]
            )
            losses.append(loss)
            model.backward(delta)
            grads = [
                (layer_idx, name, grad)
                for layer_idx, layer in enumerate(network.layers)
                if not layer.frozen
                for name, grad in layer.grads().items()
            ]
            norm = np.sqrt(sum(float(np.sum(g * g)) for _, _, g in grads))
            scale = min(1.0, self.clip_norm / (norm + 1e-12))
            if accumulated is None:
                accumulated = {
                    (layer_idx, name): grad * scale
                    for layer_idx, name, grad in grads
                }
            else:
                for layer_idx, name, grad in grads:
                    accumulated[(layer_idx, name)] += grad * scale
        network.zero_grads()
        noise_std = self.noise_multiplier * self.clip_norm
        for (layer_idx, name), total in accumulated.items():
            grad = network.layers[layer_idx].grads()[name]
            grad[...] = total / batch
            if noise_std:
                grad += self.rng.normal(
                    0.0, noise_std / batch, size=grad.shape
                ).astype(grad.dtype)
        self._sgd.step(network)
        network.zero_grads()
        return float(np.mean(losses))
