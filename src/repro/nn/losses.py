"""Standalone loss helpers (the network normally uses its CostLayer)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.layers.softmax import softmax

__all__ = ["cross_entropy_loss", "cross_entropy_delta", "softmax_cross_entropy"]


def cross_entropy_loss(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of probabilities against integer labels."""
    n = probs.shape[0]
    return float(-np.log(probs[np.arange(n), labels] + 1e-12).mean())


def cross_entropy_delta(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """d(mean cross-entropy)/d(logits) for a softmax classifier."""
    n = probs.shape[0]
    delta = probs.copy()
    delta[np.arange(n), labels] -= 1.0
    return delta / n


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Loss and logit gradient straight from logits."""
    probs = softmax(logits)
    return cross_entropy_loss(probs, labels), cross_entropy_delta(probs, labels)
