"""The network container: a layer stack with training support.

Supports running arbitrary *layer ranges* forward and backward, which is
what CalTrain's FrontNet/BackNet partitioning builds on, plus capturing
intermediate representations for the information-exposure assessment and
penultimate-layer fingerprints.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetworkDefinitionError, ShapeError, TrainingError
from repro.nn.initializers import Initializer, gaussian_init
from repro.nn.layers.base import Layer, Shape
from repro.nn.layers.softmax import CostLayer, SoftmaxLayer

__all__ = ["Network"]


class Network:
    """A feedforward layer stack.

    Args:
        input_shape: Per-example input shape, e.g. ``(28, 28, 3)``.
        layers: The layer stack, in order.
        initializer: Parameter initializer; defaults to the paper's
            Gaussian (He-scaled) initialization.
        backend: Compute backend name or instance pinned onto every layer;
            ``None`` lets layers follow the process default (which honours
            the ``REPRO_NN_BACKEND`` environment variable).
    """

    def __init__(self, input_shape: Shape, layers: Sequence[Layer],
                 initializer: Optional[Initializer] = None,
                 rng: Optional[np.random.Generator] = None,
                 backend=None) -> None:
        if not layers:
            raise NetworkDefinitionError("a network needs at least one layer")
        self.input_shape = tuple(input_shape)
        self.layers: List[Layer] = list(layers)
        if initializer is None:
            initializer = gaussian_init(rng if rng is not None else np.random.default_rng(0))
        self._build(initializer)
        if backend is not None:
            self.set_backend(backend)

    def set_backend(self, backend) -> None:
        """Pin a compute backend (name or instance) on every layer;
        ``None`` unpins, returning layers to the process default."""
        for layer in self.layers:
            layer.set_backend(backend)

    @property
    def backend_name(self) -> str:
        """The backend the first layer would use right now."""
        return self.layers[0].backend.name

    def _build(self, initializer: Initializer) -> None:
        shape = self.input_shape
        self._shapes: List[Shape] = []
        for layer in self.layers:
            if hasattr(layer, "build") and not layer.params():
                in_dim = shape[-1] if len(shape) == 3 else int(np.prod(shape))
                layer.build(in_dim, initializer)
            try:
                shape = layer.output_shape(shape)
            except Exception as exc:
                raise ShapeError(
                    f"layer {layer.describe()} cannot accept input shape {shape}"
                ) from exc
            self._shapes.append(shape)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.layers)

    def layer_output_shapes(self) -> List[Shape]:
        """Per-example output shape after each layer."""
        return list(self._shapes)

    def layer_input_shape(self, index: int) -> Shape:
        """Per-example input shape of layer ``index``."""
        return self.input_shape if index == 0 else self._shapes[index - 1]

    @property
    def num_params(self) -> int:
        return sum(layer.num_params for layer in self.layers)

    def flops_per_layer(self) -> List[float]:
        """Per-example forward FLOPs of each layer."""
        return [
            layer.flops(self.layer_input_shape(i))
            for i, layer in enumerate(self.layers)
        ]

    def penultimate_index(self) -> int:
        """Index of the layer feeding the softmax (the fingerprint layer).

        The paper extracts fingerprints "out of the penultimate layer (the
        layer before the softmax layer)" — i.e. the class-logit embedding.
        """
        for i, layer in enumerate(self.layers):
            if isinstance(layer, SoftmaxLayer):
                if i == 0:
                    raise NetworkDefinitionError("softmax cannot be the first layer")
                return i - 1
        raise NetworkDefinitionError("network has no softmax layer")

    def cost_layer(self) -> CostLayer:
        for layer in reversed(self.layers):
            if isinstance(layer, CostLayer):
                return layer
        raise NetworkDefinitionError("network has no cost layer")

    # -- forward / backward -----------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False,
                start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """Run layers ``start..stop-1`` (default: the whole network)."""
        stop = len(self.layers) if stop is None else stop
        if not 0 <= start <= stop <= len(self.layers):
            raise TrainingError(f"invalid layer range [{start}, {stop})")
        out = x
        for layer in self.layers[start:stop]:
            out = layer.forward(out, training=training)
        return out

    def forward_collect(self, x: np.ndarray,
                        indices: Sequence[int]) -> Dict[int, np.ndarray]:
        """Inference forward pass that captures outputs of given layers."""
        wanted = set(indices)
        captured: Dict[int, np.ndarray] = {}
        out = x
        for i, layer in enumerate(self.layers):
            out = layer.forward(out, training=False)
            if i in wanted:
                captured[i] = out
        missing = wanted - set(captured)
        if missing:
            raise TrainingError(f"layer indices {sorted(missing)} out of range")
        return captured

    def backward(self, delta: np.ndarray, start: Optional[int] = None,
                 stop: int = 0,
                 need_input_grad: bool = True) -> Optional[np.ndarray]:
        """Backpropagate from below layer ``start`` down to layer ``stop``.

        ``delta`` is d(loss)/d(output of layer start-1). Returns
        d(loss)/d(input of layer stop). Requires a preceding
        ``forward(..., training=True)`` over the same range. With
        ``need_input_grad=False`` (and ``stop == 0``) the final layer may
        skip computing d(loss)/d(input) and ``None`` is returned — the
        parameter gradients are accumulated either way.
        """
        start = len(self.layers) if start is None else start
        if not 0 <= stop <= start <= len(self.layers):
            raise TrainingError(f"invalid backward range [{stop}, {start})")
        chain = list(reversed(self.layers[stop:start]))
        for i, layer in enumerate(chain):
            last = i == len(chain) - 1
            if (last and stop == 0 and not need_input_grad
                    and layer.supports_skip_input_grad):
                return layer.backward(delta, need_input_grad=False)
            delta = layer.backward(delta)
        return delta

    # -- training ----------------------------------------------------------------

    def train_batch(self, x: np.ndarray, labels: np.ndarray, optimizer) -> float:
        """One SGD step on a mini-batch; returns the batch loss."""
        probs = self.forward(x, training=True)
        loss, delta = self.cost_layer().batch_loss(probs, labels)
        self.backward(delta, need_input_grad=False)
        optimizer.step(self)
        self.zero_grads()
        return loss

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def astype(self, dtype) -> "Network":
        """Cast every parameter and gradient buffer in place (e.g. to
        float64 for gradient checking); returns self."""
        for layer in self.layers:
            for attr, value in vars(layer).items():
                if isinstance(value, np.ndarray) and np.issubdtype(
                    value.dtype, np.floating
                ):
                    setattr(layer, attr, value.astype(dtype))
        return self

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class probabilities, evaluated in inference mode."""
        outputs = [
            self.forward(x[i : i + batch_size])
            for i in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def set_dropout_rng(self, generator: np.random.Generator) -> None:
        """Point every dropout layer at a given RNG (e.g. the trusted RNG)."""
        for layer in self.layers:
            if hasattr(layer, "rng") and hasattr(layer, "probability"):
                layer.rng = generator

    def freeze_layers(self, upto: int) -> None:
        """Freeze layers ``[0, upto)`` (the bottom-up convergence trick)."""
        for i, layer in enumerate(self.layers):
            layer.frozen = i < upto

    # -- weights I/O ---------------------------------------------------------------

    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        """Per-layer parameter arrays, plus any non-learned layer state
        (e.g. batchnorm running statistics) under ``state/``-prefixed keys."""
        weights: List[Dict[str, np.ndarray]] = []
        for layer in self.layers:
            entry = {name: arr.copy() for name, arr in layer.params().items()}
            if hasattr(layer, "extra_state"):
                entry.update({
                    f"state/{name}": arr.copy()
                    for name, arr in layer.extra_state().items()
                })
            weights.append(entry)
        return weights

    def set_weights(self, weights: List[Dict[str, np.ndarray]]) -> None:
        if len(weights) != len(self.layers):
            raise NetworkDefinitionError("weight list does not match layer count")
        for layer, layer_weights in zip(self.layers, weights):
            params = layer.params()
            state = layer.extra_state() if hasattr(layer, "extra_state") else {}
            expected = set(params) | {f"state/{name}" for name in state}
            if expected != set(layer_weights):
                raise NetworkDefinitionError(
                    f"weight keys {sorted(layer_weights)} do not match layer "
                    f"{layer.describe()} keys {sorted(expected)}"
                )
            for name, arr in layer_weights.items():
                target = (
                    state[name[len("state/"):]] if name.startswith("state/")
                    else params[name]
                )
                if target.shape != arr.shape:
                    raise NetworkDefinitionError(
                        f"shape mismatch for {layer.describe()}.{name}"
                    )
                target[...] = arr

    def weights_to_bytes(self) -> bytes:
        """Serialize all weights to an ``.npz`` byte string."""
        arrays = {}
        for i, layer_weights in enumerate(self.get_weights()):
            for name, arr in layer_weights.items():
                arrays[f"layer{i}/{name}"] = arr
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        return buffer.getvalue()

    def weights_from_bytes(self, blob: bytes) -> None:
        """Load weights previously produced by :meth:`weights_to_bytes`."""
        with np.load(io.BytesIO(blob)) as data:
            weights: List[Dict[str, np.ndarray]] = [
                {} for _ in range(len(self.layers))
            ]
            for key in data.files:
                layer_part, name = key.split("/", 1)
                weights[int(layer_part[len("layer"):])][name] = data[key]
        self.set_weights(weights)

    def summary(self) -> str:
        """Darknet-style architecture table (used for Tables I and II)."""
        lines = [f"{'Layer':<14}{'Filter':>8}  {'Size':<10}{'Input':<14}{'Output':<14}"]
        shape = self.input_shape
        for i, layer in enumerate(self.layers):
            out = self._shapes[i]
            filters = getattr(layer, "filters", "")
            size = ""
            if hasattr(layer, "size") and hasattr(layer, "stride"):
                size = f"{layer.size}x{layer.size}/{layer.stride}"
            elif getattr(layer, "kind", "") == "dropout":
                size = f"p = {layer.probability:.2f}"
            fmt = lambda s: "x".join(str(d) for d in s) if isinstance(s, tuple) else str(s)
            lines.append(
                f"{i + 1:>2} {layer.kind:<11}{str(filters):>8}  {size:<10}"
                f"{fmt(shape):<14}{fmt(out):<14}"
            )
            shape = out
        return "\n".join(lines)
