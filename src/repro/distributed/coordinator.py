"""The untrusted coordinator: data-parallel rounds over enclave workers.

The coordinator is the scheduling brain and the *adversary model* rolled
into one: it shards the encrypted submissions, drives per-round local
epochs, relays opaque masked records between workers and the aggregator
enclave, enforces deadlines, and recovers crashed workers — while being
structurally unable to see a plaintext FrontNet update (masked uploads,
sealed checkpoints, attested channels) or to bias the aggregate without
detection (fail-closed typed errors instead of silent partial sums).

One round:

1. every active worker seals a round-boundary checkpoint;
2. a fresh secure-aggregation cohort forms (new DH keys each round) and
   every worker escrows Shamir shares of its round key with the cohort —
   each share sealed under the pairwise key with its holder, so the
   coordinator relays ciphertext only;
3. workers each train one local epoch on their shard;
4. workers whose epoch overran ``straggler_factor x`` the fastest
   completed epoch are excluded; crashed workers are excluded; both
   count as dropouts;
5. survivors upload shard-size-scaled, pairwise-masked FrontNet deltas
   over their attested channels; records that fail AEAD or the boundary
   checksum mark their worker faulted (never the coordinator);
6. the aggregator enclave unmasks the partial sum — reconstructing
   dropped workers' masks from the escrowed shares (revealed by the
   survivors as records sealed for their attested channels, opened only
   inside the aggregator) or failing closed — and normalises by the
   participating shard sizes;
7. crashed workers recover from their sealed checkpoints and replay
   their epoch (bitwise, excluded from the aggregate);
8. the agreed FrontNet update broadcasts over each attested channel; the
   BackNet update averages in plaintext (it is public by design); every
   replica applies both to its round-start snapshot — replicas stay
   bitwise identical, which is asserted every round;
9. repeat offenders (``blacklist_after`` consecutive bad rounds) are
   blacklisted and their shard is re-distributed to the survivors.

Wall-clock: workers train concurrently, so a round costs the *maximum*
participating duration (the deadline when stragglers were cut) plus the
aggregation time — the source of the N-worker throughput win.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.encryption import EncryptedDataset
from repro.distributed.aggregator import AggregatorEnclave
from repro.distributed.telemetry import DistributedTelemetry
from repro.distributed.worker import EnclaveWorker
from repro.enclave.attestation import AttestationService
from repro.enclave.enclave import Enclave
from repro.enclave.memory import EPC_USABLE_BYTES
from repro.enclave.platform import SimClock
from repro.errors import (AggregationError, AuthenticationError,
                          ChannelIntegrityError, ConfigurationError,
                          EnclaveError, RoundAborted)
from repro.nn.network import Network
from repro.observability.tracing import Tracer
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream

__all__ = ["WorkerInjection", "RoundReport", "DistributedCoordinator"]

_LOG = get_logger("distributed.coordinator")

_NO_SPAN = nullcontext()


@dataclass(frozen=True)
class WorkerInjection:
    """Deterministic per-round fault injection for tests and drills.

    Kinds: ``crash`` (enclave torn down at the start of ``batch``),
    ``straggle`` (the worker's clock stretched by ``factor``), and
    ``corrupt`` (one byte of its upload record flipped in the
    coordinator's relay path).
    """

    kind: str
    worker: str
    round: int
    batch: int = 0
    factor: float = 4.0

    _KINDS = ("crash", "straggle", "corrupt")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"unknown injection kind {self.kind!r}; pick one of "
                f"{self._KINDS}"
            )


@dataclass
class RoundReport:
    """What one distributed round did, and what it cost."""

    round: int
    mean_loss: float
    participating: List[str]
    stragglers: List[str] = field(default_factory=list)
    faulted: List[str] = field(default_factory=list)
    corrupted: List[str] = field(default_factory=list)
    recovered: List[str] = field(default_factory=list)
    blacklisted: List[str] = field(default_factory=list)
    recovered_masks: int = 0
    deadline_seconds: float = 0.0
    train_seconds: float = 0.0
    aggregation_seconds: float = 0.0
    round_seconds: float = 0.0
    clock_seconds: float = 0.0


class DistributedCoordinator:
    """Shards submissions across N enclave workers and drives rounds."""

    def __init__(self, *, num_workers: int,
                 network_factory: Callable[[np.random.Generator], Network],
                 network_config: str,
                 hyperparameters: Dict[str, float],
                 partition: int,
                 batch_size: int,
                 learning_rate: float,
                 momentum: float,
                 rng: RngStream,
                 attestation_service: AttestationService,
                 provisioner: Callable[[Enclave], None],
                 init_generator_factory: Callable[[], np.random.Generator],
                 checkpoint_root,
                 cipher: str = "hmac-ctr",
                 augment: bool = False,
                 straggler_factor: float = 2.5,
                 blacklist_after: int = 2,
                 injections: Sequence[WorkerInjection] = (),
                 config_digest: Optional[bytes] = None,
                 metrics=None,
                 tracer: Optional[Tracer] = None,
                 epc_bytes: int = EPC_USABLE_BYTES) -> None:
        if num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1")
        if straggler_factor <= 1.0:
            raise ConfigurationError("straggler_factor must be > 1")
        if blacklist_after < 1:
            raise ConfigurationError("blacklist_after must be >= 1")
        self.rng = rng
        self.provisioner = provisioner
        self.straggler_factor = straggler_factor
        self.blacklist_after = blacklist_after
        self.injections = list(injections)
        self.tracer = tracer
        self.telemetry = DistributedTelemetry(registry=metrics)
        #: The coordinator's own wall clock: rounds advance it by the
        #: slowest participating worker plus aggregation, because the
        #: workers run concurrently on separate platforms.
        self.clock = SimClock()
        self.aggregator = AggregatorEnclave(
            rng.child("aggregator"), attestation_service
        )
        root = Path(checkpoint_root)
        self.workers: List[EnclaveWorker] = [
            EnclaveWorker(
                f"w{i}",
                network_factory=network_factory,
                network_config=network_config,
                hyperparameters=hyperparameters,
                partition=partition,
                batch_size=batch_size,
                learning_rate=learning_rate,
                momentum=momentum,
                rng=rng.child(f"worker-{i}"),
                attestation_service=attestation_service,
                checkpoint_dir=root / f"w{i}",
                cipher=cipher,
                augment=augment,
                config_digest=config_digest,
                epc_bytes=epc_bytes,
            )
            for i in range(num_workers)
        ]
        self._by_id = {w.worker_id: w for w in self.workers}
        self._init_generator_factory = init_generator_factory
        self.blacklisted: set = set()
        self._bad_streak: Dict[str, int] = {}
        self.reports: List[RoundReport] = []

    # -- observability helpers ---------------------------------------------------

    def _span(self, name: str, kind: str, **attributes):
        if self.tracer is None:
            return _NO_SPAN
        return self.tracer.span(name, kind=kind, **attributes)

    @property
    def audit(self):
        """The aggregator enclave's hash-chained aggregation trail."""
        return self.aggregator.audit

    # -- sharding ----------------------------------------------------------------

    @staticmethod
    def _shard_records(datasets: Sequence[EncryptedDataset], n: int,
                       ) -> List[List[EncryptedDataset]]:
        """Round-robin records across ``n`` shards, deterministically."""
        flat = sorted(
            ((ds.source_id, record) for ds in datasets
             for record in ds.records),
            key=lambda pair: (pair[0], pair[1].index),
        )
        per_worker: List[Dict[str, list]] = [{} for _ in range(n)]
        for position, (source_id, record) in enumerate(flat):
            per_worker[position % n].setdefault(source_id, []).append(record)
        return [
            [EncryptedDataset(source_id=source_id, records=records)
             for source_id, records in sorted(shard.items())]
            for shard in per_worker
        ]

    def distribute(self, datasets: Sequence[EncryptedDataset]) -> None:
        """Shard submissions, stage + build every worker, open channels."""
        if not datasets:
            raise ConfigurationError("no submissions to distribute")
        shards = self._shard_records(datasets, len(self.workers))
        for worker, shard in zip(self.workers, shards):
            with self._span(f"{worker.worker_id}/setup", "enclave"):
                worker.adopt_shard(shard)
                summary = worker.stage(self.provisioner)
                if summary.accepted == 0:
                    raise RoundAborted(
                        f"worker {worker.worker_id}: no shard records "
                        "survived authentication"
                    )
                worker.build_trainer(self._init_generator_factory)
                worker.bind_observability(tracer=self.tracer,
                                          metrics=self.telemetry.registry)
                worker.open_channel(self.aggregator)
        _LOG.info(
            "distributed %d records across %d workers: %s",
            sum(len(ds) for ds in datasets), len(self.workers),
            {w.worker_id: w.examples for w in self.workers},
        )

    # -- fault injection ---------------------------------------------------------

    def _injection(self, kind: str, worker_id: str,
                   round_index: int) -> Optional[WorkerInjection]:
        for spec in self.injections:
            if (spec.kind == kind and spec.worker == worker_id
                    and spec.round == round_index):
                return spec
        return None

    def _crash_callback(self, worker: EnclaveWorker,
                        round_index: int) -> Optional[Callable]:
        spec = self._injection("crash", worker.worker_id, round_index)
        if spec is None:
            return None

        def callback(phase: str, epoch: int, batch: int, losses) -> None:
            if phase == "start" and batch == spec.batch:
                worker.crash()

        return callback

    def _tamper(self, record: bytes, worker_id: str,
                round_index: int) -> bytes:
        """The corrupt injection: flip one payload byte in the relay."""
        if self._injection("corrupt", worker_id, round_index) is None:
            return record
        flipped = bytearray(record)
        flipped[len(flipped) // 2] ^= 0x01
        return bytes(flipped)

    # -- the round loop ----------------------------------------------------------

    def run(self, rounds: int) -> List[RoundReport]:
        """Drive ``rounds`` data-parallel rounds; returns their reports."""
        for round_index in range(rounds):
            with self._span(f"round-{round_index}", "internal"):
                self.reports.append(self._run_round(round_index))
        return self.reports

    def _active(self) -> List[EnclaveWorker]:
        active = [w for w in self.workers
                  if w.worker_id not in self.blacklisted]
        if not active:
            raise RoundAborted("every worker has been blacklisted")
        return active

    def _run_round(self, round_index: int) -> RoundReport:
        active = self._active()
        for worker in active:
            worker.checkpoint(round_index)

        # A fresh masking cohort per round (see EnclaveWorker.begin_cohort).
        cohort = {w.worker_id: i for i, w in enumerate(active)}
        masked = len(active) >= 2
        threshold = 1 if len(active) <= 2 else len(active) // 2 + 1
        directory: Dict[int, int] = {}
        if masked:
            round_rng = self.rng.child(f"secagg/round-{round_index}")
            for worker in active:
                worker.begin_cohort(cohort[worker.worker_id], round_rng)
            directory = {
                cohort[w.worker_id]: w.secagg_public_key for w in active
            }
            for worker in active:
                worker.establish_pairs(directory)
            # Escrow: every share crosses the coordinator sealed under the
            # owner/holder pairwise key — this loop relays ciphertext only.
            for worker in active:
                records = worker.escrow_records(threshold, len(active))
                for peer in active:
                    position = cohort[peer.worker_id]
                    if position in records:
                        peer.hold_share_record(cohort[worker.worker_id],
                                               records[position])

        # Local epochs (concurrent in wall-clock; sequential in sim).
        durations: Dict[str, float] = {}
        losses: Dict[str, float] = {}
        faulted: List[str] = []
        for worker in active:
            callback = self._crash_callback(worker, round_index)
            try:
                with self._span(
                    f"{worker.worker_id}/round-{round_index}", "enclave",
                    examples=worker.examples,
                ):
                    loss, duration = worker.run_round(
                        round_index, batch_callback=callback
                    )
            except EnclaveError as exc:
                faulted.append(worker.worker_id)
                self.telemetry.count("worker_faults")
                self.telemetry.count(f"fault_{type(exc).__name__}")
                _LOG.warning("worker %s faulted in round %d: %s",
                             worker.worker_id, round_index, exc)
                continue
            straggle = self._injection("straggle", worker.worker_id,
                                       round_index)
            if straggle is not None:
                worker.platform.clock.advance(
                    duration * (straggle.factor - 1.0)
                )
                duration *= straggle.factor
            durations[worker.worker_id] = duration
            losses[worker.worker_id] = loss
        if not durations:
            raise RoundAborted(
                f"round {round_index}: no worker finished its local epoch"
            )

        # Deadline-based straggler exclusion. The deadline keys off the
        # *fastest* completed epoch: shards are balanced round-robin, so
        # honest workers land within a whisker of each other and a
        # straggler sticks out regardless of cohort size (a median-based
        # deadline degenerates at N=2, where the straggler drags the
        # median — and thus its own deadline — up with it).
        deadline = self.straggler_factor * min(durations.values())
        stragglers = sorted(
            wid for wid, d in durations.items() if d > deadline
        )
        participating = [wid for wid in durations if wid not in stragglers]
        self.telemetry.count("stragglers", len(stragglers))
        if not participating:
            raise RoundAborted(
                f"round {round_index}: every surviving worker straggled"
            )

        # Masked uploads over the attested channels. A record that fails
        # AEAD or the boundary checksum faults its *worker*; the
        # coordinator carries on with partial aggregation.
        corrupted: List[str] = []
        for wid in list(participating):
            worker = self._by_id[wid]
            record = worker.upload_record(masked=masked)
            record = self._tamper(record, wid, round_index)
            try:
                with self._span(f"{wid}/upload", "boundary-crossing",
                                bytes=len(record)):
                    self.aggregator.submit(wid, record)
                self.telemetry.count("masked_upload_bytes", len(record))
            except (AuthenticationError, ChannelIntegrityError) as exc:
                corrupted.append(wid)
                participating.remove(wid)
                self.telemetry.count("worker_faults")
                self.telemetry.count("channel_corruptions")
                _LOG.warning(
                    "worker %s upload rejected in round %d (%s): %s",
                    wid, round_index, type(exc).__name__, exc,
                )
                # The rejected record consumed the worker's send sequence
                # but never advanced the aggregator's receive counter: the
                # session is desynchronised for good. Tear it down and
                # re-handshake (re-attested) so the broadcast and the next
                # round run on a clean channel.
                worker.open_channel(self.aggregator)
        if not participating:
            raise RoundAborted(
                f"round {round_index}: no upload survived the channel"
            )

        # Partial aggregation: every excluded cohort member is a dropout
        # whose masks must be reconstructed from the escrowed shares. The
        # survivors reveal their held shares as records sealed for their
        # attested channels — this loop collects opaque blobs the
        # aggregator alone can open, never a share in the clear.
        dropped_ids = {
            wid: cohort[wid]
            for wid in (faulted + stragglers + corrupted)
            if wid in cohort
        } if masked else {}
        share_records: Dict[int, List[Tuple[str, bytes]]] = {}
        if dropped_ids:
            alive = [w for w in active if w.worker_id not in faulted]
            for wid, secagg_id in dropped_ids.items():
                collected: List[Tuple[str, bytes]] = []
                for holder in alive:
                    record = holder.reveal_share_record(secagg_id)
                    if record is not None:
                        collected.append((holder.worker_id, record))
                share_records[secagg_id] = collected
            self.telemetry.count("partial_aggregations")

        weights = {
            wid: float(self._by_id[wid].examples) for wid in participating
        }
        vector_size = self._by_id[participating[0]].front_delta().size
        aggregation_start = self.aggregator.platform.clock.now
        try:
            with self._span(f"aggregate/round-{round_index}", "enclave",
                            participants=len(participating)):
                summary = self.aggregator.reduce(
                    round_index,
                    participating={wid: cohort[wid] for wid in participating},
                    weights=weights,
                    dropped=dropped_ids,
                    share_records=share_records,
                    directory=directory,
                    threshold=threshold,
                    vector_shape=(vector_size,),
                )
        except AggregationError as exc:
            raise RoundAborted(
                f"round {round_index}: secure aggregation failed closed: "
                f"{exc}"
            ) from exc
        self.telemetry.count("mask_recoveries",
                             int(summary["recovered_masks"]))

        # BackNet deltas are public by design: plaintext weighted mean.
        weight_total = sum(weights.values())
        back_avg = sum(
            self._by_id[wid].back_delta() * weights[wid]
            for wid in participating
        ) / weight_total

        # Crashed workers recover from sealed checkpoints and replay
        # their epoch bitwise before rejoining at the broadcast.
        recovered: List[str] = []
        for wid in faulted:
            worker = self._by_id[wid]
            with self._span(f"{wid}/recover", "enclave"):
                replay_round = worker.recover(self.provisioner,
                                              self.aggregator)
                worker.run_round(replay_round)
            recovered.append(wid)
            self.telemetry.count("worker_recoveries")

        # Broadcast: everyone still active — participants, stragglers,
        # and freshly recovered workers — converges on the same update.
        for worker in active:
            record = self.aggregator.broadcast_record(worker.worker_id)
            with self._span(f"{worker.worker_id}/broadcast",
                            "boundary-crossing", bytes=len(record)):
                worker.apply_broadcast(record, back_avg)
        self._assert_replicas_consistent(active, round_index)

        # Blacklist bookkeeping + shard reassignment.
        newly_blacklisted = self._update_blacklist(
            active, set(stragglers) | set(faulted) | set(corrupted)
        )

        # Wall-clock: concurrent training costs the slowest participant
        # (the deadline when stragglers were cut short), then aggregation.
        if stragglers:
            train_seconds = deadline
        else:
            train_seconds = max(durations[wid] for wid in participating)
        aggregation_seconds = (
            self.aggregator.platform.clock.now - aggregation_start
        )
        round_seconds = train_seconds + aggregation_seconds
        self.clock.advance(round_seconds)
        self.telemetry.count("rounds")
        self.telemetry.observe("round", round_seconds)
        self.telemetry.observe("aggregation", aggregation_seconds)

        mean_loss = float(
            sum(losses[wid] * weights[wid] for wid in participating)
            / weight_total
        )
        report = RoundReport(
            round=round_index,
            mean_loss=mean_loss,
            participating=sorted(participating),
            stragglers=stragglers,
            faulted=sorted(faulted),
            corrupted=sorted(corrupted),
            recovered=sorted(recovered),
            blacklisted=newly_blacklisted,
            recovered_masks=int(summary["recovered_masks"]),
            deadline_seconds=deadline,
            train_seconds=train_seconds,
            aggregation_seconds=aggregation_seconds,
            round_seconds=round_seconds,
            clock_seconds=self.clock.now,
        )
        _LOG.info(
            "round %d: loss %.4f, %d/%d participating, %.2fs simulated",
            round_index, mean_loss, len(participating), len(active),
            round_seconds,
        )
        return report

    # -- invariants + membership -------------------------------------------------

    def _assert_replicas_consistent(self, active: List[EnclaveWorker],
                                    round_index: int) -> None:
        """Every replica must be bitwise identical after the broadcast.

        Structure first, then values: a replica with extra layers or extra
        per-layer arrays must fail too, not slip past a zip/keys walk that
        only visits the reference's entries.
        """
        reference = active[0].replica_weights()
        for worker in active[1:]:
            candidate = worker.replica_weights()
            if len(candidate) != len(reference):
                raise RoundAborted(
                    f"round {round_index}: replica divergence at "
                    f"{worker.worker_id} ({len(candidate)} layers vs "
                    f"{len(reference)}); refusing to continue on "
                    "inconsistent state"
                )
            for index, (ref_layer, layer) in enumerate(
                    zip(reference, candidate)):
                if ref_layer.keys() != layer.keys():
                    raise RoundAborted(
                        f"round {round_index}: replica divergence at "
                        f"{worker.worker_id} (layer {index} parameters "
                        f"{sorted(layer)} vs {sorted(ref_layer)}); refusing "
                        "to continue on inconsistent state"
                    )
                for name in ref_layer:
                    if not np.array_equal(ref_layer[name], layer[name]):
                        raise RoundAborted(
                            f"round {round_index}: replica divergence at "
                            f"{worker.worker_id} ({name}); refusing to "
                            "continue on inconsistent state"
                        )

    def _update_blacklist(self, active: List[EnclaveWorker],
                          offenders: set) -> List[str]:
        for worker in active:
            wid = worker.worker_id
            if wid in offenders:
                self._bad_streak[wid] = self._bad_streak.get(wid, 0) + 1
            else:
                self._bad_streak[wid] = 0
        newly = sorted(
            wid for wid in (w.worker_id for w in active)
            if self._bad_streak.get(wid, 0) >= self.blacklist_after
        )
        for wid in newly:
            self.blacklisted.add(wid)
            self.telemetry.count("blacklisted_workers")
            _LOG.warning("worker %s blacklisted after %d bad rounds",
                         wid, self._bad_streak[wid])
            self._reassign_shard(wid)
        return newly

    def _reassign_shard(self, blacklisted_id: str) -> None:
        """Move a blacklisted worker's shard to the survivors."""
        survivors = [w for w in self.workers
                     if w.worker_id not in self.blacklisted]
        if not survivors:
            raise RoundAborted(
                "no surviving worker to adopt the blacklisted shard"
            )
        outgoing = self._by_id[blacklisted_id]
        extra = self._shard_records(outgoing._shard, len(survivors))
        for survivor, addition in zip(survivors, extra):
            if not addition:
                continue
            merged: Dict[str, list] = {
                ds.source_id: list(ds.records) for ds in survivor._shard
            }
            for dataset in addition:
                merged.setdefault(dataset.source_id, []).extend(
                    dataset.records
                )
            survivor.adopt_shard([
                EncryptedDataset(source_id=source_id, records=records)
                for source_id, records in sorted(merged.items())
            ])
            survivor.stage(self.provisioner)
        outgoing.adopt_shard([])
        self.telemetry.count("shard_reassignments")

    # -- results -----------------------------------------------------------------

    def final_weights(self) -> List[Dict[str, np.ndarray]]:
        """The converged replica weights (all replicas are identical)."""
        return self._active()[0].replica_weights()
