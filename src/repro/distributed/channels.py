"""Attested channels and checksummed records for worker/aggregator traffic.

Every masked update and every broadcast crosses two trust boundaries: out
of one enclave, through the untrusted coordinator, into another enclave.
The records are protected twice, for two different failure modes:

* the :class:`~repro.crypto.tls.SecureChannel` AEAD layer authenticates
  the ciphertext, so tampering with a record in the coordinator's hands
  raises :class:`~repro.errors.AuthenticationError`;
* a CRC32 **boundary checksum** travels inside the plaintext (mirroring
  :meth:`PartitionedNetwork._cross_boundary`), so corruption in the
  marshalling buffers between vector and channel — before sealing or
  after opening — raises :class:`~repro.errors.ChannelIntegrityError`.

The coordinator classifies either failure as a *worker fault* (the record
is dropped, the round proceeds by partial aggregation); neither is ever a
coordinator crash.

The channel itself is attested exactly like key provisioning
(:mod:`repro.federation.provisioning`): the aggregator enclave binds its
handshake DH share into an attestation quote's report-data, and the
worker verifies quote + binding before trusting the channel.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional, Tuple

import numpy as np

from repro.crypto.hashing import constant_time_equal, sha256
from repro.crypto.tls import SecureChannel, TlsClient
from repro.enclave.attestation import AttestationService
from repro.errors import AttestationError, ChannelIntegrityError
from repro.utils.rng import RngStream

__all__ = ["encode_vector", "decode_vector", "open_attested_channel"]

_HEADER = struct.Struct("<II")


def encode_vector(vector: np.ndarray) -> bytes:
    """Marshal a float64 vector with its boundary checksum prepended."""
    data = np.ascontiguousarray(vector, dtype=np.float64).tobytes()
    return _HEADER.pack(zlib.crc32(data), int(vector.size)) + data


def decode_vector(blob: bytes,
                  shape: Optional[Tuple[int, ...]] = None) -> np.ndarray:
    """Unmarshal a vector; fail closed on any boundary corruption."""
    if len(blob) < _HEADER.size:
        raise ChannelIntegrityError(
            f"vector record truncated to {len(blob)} bytes"
        )
    checksum, count = _HEADER.unpack_from(blob, 0)
    data = blob[_HEADER.size:]
    if len(data) != count * 8:
        raise ChannelIntegrityError(
            f"vector record carries {len(data)} payload bytes for a "
            f"declared {count} float64 elements"
        )
    if zlib.crc32(data) != checksum:
        raise ChannelIntegrityError(
            "vector record failed its boundary checksum crossing the "
            "worker/aggregator channel"
        )
    vector = np.frombuffer(data, dtype=np.float64).copy()
    return vector.reshape(shape) if shape is not None else vector


def open_attested_channel(rng: RngStream, aggregator, peer_id: str,
                          attestation_service: AttestationService,
                          expected_mrenclave: bytes) -> SecureChannel:
    """Worker-side: establish an attested channel into the aggregator.

    The same RA-TLS flow as key provisioning: the aggregator answers the
    ClientHello with a ServerHello whose DH share is bound into a quote's
    report-data; the worker verifies the quote against the attestation
    service and the agreed aggregator MRENCLAVE, checks the binding, and
    finishes the handshake. Only then does a record channel exist.
    """
    client = TlsClient(rng=rng)
    hello_c = client.client_hello()
    hello_s, quote = aggregator.start_handshake(peer_id, hello_c)
    attestation_service.verify(quote, expected_mrenclave=expected_mrenclave)
    expected_binding = sha256(hello_s.dh_public.to_bytes(256, "big"))
    if not constant_time_equal(quote.report_data, expected_binding):
        raise AttestationError(
            "aggregator quote is not bound to this channel handshake "
            "(possible MITM)"
        )
    finished = client.process_server_hello(hello_s)
    aggregator.finish_handshake(peer_id, finished)
    return client.channel()
