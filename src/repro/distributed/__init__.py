"""repro.distributed — multi-enclave data-parallel CalTrain training.

An untrusted :class:`DistributedCoordinator` shards committed encrypted
submissions across N :class:`EnclaveWorker` replicas (one SGX platform +
training enclave each) and drives per-round local epochs; FrontNet
updates flow — pairwise-masked, shard-size-scaled, over attested TLS
channels — into an :class:`AggregatorEnclave` that is the only place an
individual update ever exists in the clear. Stragglers and crashed or
corrupting workers drop to partial aggregation (their masks rebuilt from
escrowed Shamir shares, or the round fails closed); crashed workers
resume bitwise-consistently from sealed checkpoints; repeat offenders
are blacklisted and their shard re-distributed.
"""

from repro.distributed.aggregator import AggregatorEnclave
from repro.distributed.channels import (decode_vector, encode_vector,
                                        open_attested_channel)
from repro.distributed.coordinator import (DistributedCoordinator,
                                           RoundReport, WorkerInjection)
from repro.distributed.telemetry import DistributedTelemetry
from repro.distributed.worker import EnclaveWorker

__all__ = [
    "AggregatorEnclave",
    "DistributedCoordinator",
    "DistributedTelemetry",
    "EnclaveWorker",
    "RoundReport",
    "WorkerInjection",
    "decode_vector",
    "encode_vector",
    "open_attested_channel",
]
