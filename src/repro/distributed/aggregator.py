"""The aggregator enclave: secure FrontNet-update aggregation.

The Citadel-style trust split: N training enclaves each hold a model
replica and a data shard; their per-round FrontNet updates are pairwise
masked (:mod:`repro.federation.secure_agg`) and shipped over attested
channels into *this* enclave, which is the only place individual updates
ever exist in the clear. The untrusted coordinator relays opaque records;
what it can observe is masked uploads, cohort membership, and timing —
never a worker's plaintext update, and (with >= 2 participants) not even
which worker contributed what to the sum.

All aggregation work happens inside ECALLs: unmasking, dropout-mask
reconstruction from escrowed Shamir shares, weighted normalisation, and
the broadcast of the agreed update back over each worker's channel. A
hash-chained :class:`~repro.core.audit.AuditLog` records one event per
round, so the aggregation history is tamper-evident.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.audit import AuditLog
from repro.crypto.hashing import sha256
from repro.crypto.shamir import Share, decode_share
from repro.crypto.tls import ClientHello, Finished, SecureChannel, TlsServer
from repro.distributed.channels import decode_vector, encode_vector
from repro.enclave.attestation import AttestationService
from repro.enclave.enclave import Enclave
from repro.enclave.platform import SgxPlatform
from repro.errors import AggregationError, AuthenticationError, CryptoError
from repro.federation.secure_agg import aggregate_with_dropouts
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream

__all__ = ["AggregatorEnclave"]

_LOG = get_logger("distributed.aggregator")

_SESSION_PREFIX = "agg-session/"
_CHANNEL_PREFIX = "agg-channel/"
_HANDSHAKE_COUNT_PREFIX = "agg-handshakes/"
_UPLOAD_PREFIX = "agg-upload/"
_RESULT_KEY = "agg-result"


# -- trusted (in-enclave) functions -----------------------------------------


def _ecall_agg_start_handshake(enclave: Enclave, peer_id: str,
                               hello_c: ClientHello):
    """Trusted: answer a worker's ClientHello with a bound quote.

    The handshake RNG is salted with a per-peer attempt counter kept in
    enclave memory: ``RngStream.child`` is seed-derived, so an unsalted
    re-handshake would hand the replacement session the exact same DH key,
    nonce, and record keys with sequence counters reset — letting the
    untrusted host replay captured records onto the new channel (and
    reusing AEAD key+nonce pairs). The worker salts its side the same way.
    """
    count_key = _HANDSHAKE_COUNT_PREFIX + peer_id
    attempt = (enclave.trusted_get(count_key) + 1
               if enclave.trusted_has(count_key) else 1)
    enclave.trusted_put(count_key, attempt)
    server = TlsServer(
        rng=enclave.trusted_rng.stream.child(f"agg-tls/{peer_id}/{attempt}")
    )
    report_data = sha256(server.dh_public.to_bytes(256, "big"))
    server.bind_report_data(report_data)
    hello_s = server.process_client_hello(hello_c)
    enclave.trusted_put(_SESSION_PREFIX + peer_id, server)
    return hello_s, enclave.quote(report_data=report_data)


def _ecall_agg_finish_handshake(enclave: Enclave, peer_id: str,
                                finished: Finished) -> None:
    """Trusted: verify the worker Finished; open its record channel."""
    server: TlsServer = enclave.trusted_get(_SESSION_PREFIX + peer_id)
    server.process_finished(finished)
    enclave.trusted_put(_CHANNEL_PREFIX + peer_id, server.channel())
    enclave.trusted_delete(_SESSION_PREFIX + peer_id)


def _ecall_agg_submit(enclave: Enclave, peer_id: str, record: bytes) -> int:
    """Trusted: open one masked-update record and stage it for the round.

    Raises :class:`~repro.errors.AuthenticationError` when the AEAD tag
    fails (record tampered in the coordinator's hands) and
    :class:`~repro.errors.ChannelIntegrityError` when the boundary
    checksum inside the plaintext fails — either way nothing is staged.
    """
    channel: SecureChannel = enclave.trusted_get(_CHANNEL_PREFIX + peer_id)
    vector = decode_vector(channel.receive(record))
    enclave.trusted_put(_UPLOAD_PREFIX + peer_id, vector,
                        nbytes=vector.nbytes)
    return int(vector.size)


def _ecall_agg_reduce(enclave: Enclave, round_index: int,
                      participating: Dict[str, int],
                      weights: Dict[str, float],
                      dropped: Dict[str, int],
                      share_records: Dict[int, List[Tuple[str, bytes]]],
                      directory: Dict[int, int],
                      threshold: int,
                      vector_shape: Tuple[int, ...]) -> Dict[str, object]:
    """Trusted: unmask, recover dropouts, normalise; stage the broadcast.

    ``participating``/``dropped`` map worker ids to their per-round
    secure-aggregation client ids; ``weights`` carries each participating
    worker's shard size (uploads are pre-scaled by it, so the normalised
    result is the examples-weighted mean update of the participants).
    ``share_records`` carries the survivors' revealed shares for each
    dropped client as ``(holder worker id, AEAD record)`` pairs still
    sealed for the holders' attested channels — the relaying coordinator
    never sees a share in the clear; they are opened only here.
    """
    uploads: Dict[int, np.ndarray] = {}
    for peer_id, secagg_id in participating.items():
        key = _UPLOAD_PREFIX + peer_id
        if not enclave.trusted_has(key):
            raise AggregationError(
                f"worker {peer_id!r} is declared participating in round "
                f"{round_index} but uploaded nothing"
            )
        uploads[secagg_id] = enclave.trusted_get(key)
    shares: Dict[int, List[Share]] = {}
    for secagg_id, records in share_records.items():
        opened: List[Share] = []
        for holder_id, record in records:
            channel: SecureChannel = enclave.trusted_get(
                _CHANNEL_PREFIX + holder_id
            )
            try:
                opened.append(decode_share(channel.receive(record)))
            except (AuthenticationError, CryptoError) as exc:
                raise AggregationError(
                    f"round {round_index}: share revealed by {holder_id!r} "
                    f"for dropout {secagg_id} failed channel "
                    f"authentication: {exc}"
                ) from exc
        shares[secagg_id] = opened
    if directory:
        total = aggregate_with_dropouts(
            uploads, directory, dropped=list(dropped.values()),
            shares=shares, threshold=threshold,
            vector_shape=(int(np.prod(vector_shape)),),
        )
    else:
        # Degenerate single-worker cohort: masking is pointless (the
        # aggregate reveals the lone update regardless) and was skipped.
        if len(uploads) != 1 or dropped:
            raise AggregationError(
                "an unmasked round must have exactly one participant"
            )
        total = next(iter(uploads.values()))
    weight_total = float(sum(weights[peer_id] for peer_id in participating))
    if weight_total <= 0:
        raise AggregationError("participating shard weights sum to zero")
    result = (total / weight_total).reshape(vector_shape)
    enclave.trusted_put(_RESULT_KEY, result, nbytes=result.nbytes)
    for peer_id in participating:
        enclave.trusted_delete(_UPLOAD_PREFIX + peer_id)
    # Charge the in-enclave reduction arithmetic to the simulated clock:
    # one pass over every upload plus one PRG mask expansion per dropped
    # client per cohort member.
    flops = float(result.size) * (
        len(participating) + len(dropped) * max(len(directory), 1)
    )
    platform = enclave.platform
    platform.clock.advance(
        platform.cost_model.compute_seconds(flops, in_enclave=True)
    )
    return {
        "round": round_index,
        "participants": sorted(participating),
        "dropped": sorted(dropped),
        "recovered_masks": len(dropped),
        "weight_total": weight_total,
        "digest": sha256(result.tobytes()).hex(),
    }


def _ecall_agg_broadcast(enclave: Enclave, peer_id: str) -> bytes:
    """Trusted: protect the agreed update for one worker's channel."""
    channel: SecureChannel = enclave.trusted_get(_CHANNEL_PREFIX + peer_id)
    result: np.ndarray = enclave.trusted_get(_RESULT_KEY)
    return channel.send(encode_vector(result))


# -- the untrusted-host wrapper ----------------------------------------------


class AggregatorEnclave:
    """Hosts the aggregation enclave and its hash-chained audit trail."""

    def __init__(self, rng: RngStream,
                 attestation_service: AttestationService,
                 platform_id: str = "sgx-aggregator") -> None:
        self.platform = SgxPlatform(rng=rng.child("platform"),
                                    platform_id=platform_id)
        attestation_service.register_platform(
            self.platform.platform_id, self.platform.platform_key
        )
        enclave = self.platform.create_enclave("aggregator-enclave")
        enclave.add_code("agg_start_handshake", _ecall_agg_start_handshake)
        enclave.add_code("agg_finish_handshake", _ecall_agg_finish_handshake)
        enclave.add_code("agg_submit", _ecall_agg_submit)
        enclave.add_code("agg_reduce", _ecall_agg_reduce)
        enclave.add_code("agg_broadcast", _ecall_agg_broadcast)
        enclave.add_data("role", "secure-aggregator")
        enclave.init()
        self.enclave = enclave
        #: Tamper-evident per-round aggregation history (the audit trail
        #: the example and CLI print).
        self.audit = AuditLog()

    @property
    def mrenclave(self) -> bytes:
        """The measurement workers agree on before trusting a channel."""
        return self.enclave.mrenclave

    def start_handshake(self, peer_id: str, hello_c: ClientHello):
        return self.enclave.ecall("agg_start_handshake", peer_id, hello_c,
                                  payload_bytes=512)

    def finish_handshake(self, peer_id: str, finished: Finished) -> None:
        self.enclave.ecall("agg_finish_handshake", peer_id, finished,
                           payload_bytes=64)

    def submit(self, peer_id: str, record: bytes) -> int:
        """Relay one opaque masked-update record into the enclave."""
        return self.enclave.ecall("agg_submit", peer_id, record,
                                  payload_bytes=len(record))

    def reduce(self, round_index: int, participating: Dict[str, int],
               weights: Dict[str, float], dropped: Dict[str, int],
               share_records: Dict[int, List[Tuple[str, bytes]]],
               directory: Dict[int, int], threshold: int,
               vector_shape: Tuple[int, ...]) -> Dict[str, object]:
        """Run the round's in-enclave reduction; append the audit event.

        ``share_records`` are the survivors' revealed shares, still sealed
        for their attested channels — opaque to this untrusted wrapper.
        """
        summary = self.enclave.ecall(
            "agg_reduce", round_index, participating, weights, dropped,
            share_records, directory, threshold, vector_shape,
            payload_bytes=sum(
                len(record) for records in share_records.values()
                for _, record in records
            ),
        )
        self.audit.append("aggregation", **summary)
        _LOG.info(
            "round %d aggregated: %d participants, %d dropped",
            round_index, len(participating), len(dropped),
        )
        return summary

    def broadcast_record(self, peer_id: str) -> bytes:
        """The agreed update, protected for one worker's channel."""
        return self.enclave.ecall("agg_broadcast", peer_id,
                                  payload_bytes=64)
