"""Counters for the multi-enclave training runtime.

Mirrors :class:`~repro.resilience.telemetry.RunTelemetry` on the
distributed plane: rounds driven, stragglers excluded, worker faults and
recoveries, dropout-mask reconstructions, partial aggregations,
blacklists, and how long rounds and aggregation take in simulated time.

A thin adapter over the shared
:class:`~repro.observability.MetricsRegistry` (metric namespace
``repro_distributed_*``); :meth:`DistributedTelemetry.snapshot` returns a
plain dict and :meth:`render` a human-readable table for the CLI.
"""

from __future__ import annotations

from repro.observability.adapter import SubsystemTelemetry

__all__ = ["DistributedTelemetry"]


class DistributedTelemetry(SubsystemTelemetry):
    """Counters + stage timings for one distributed training run."""

    subsystem = "distributed"

    def render(self) -> str:
        snapshot = self.snapshot()
        lines = ["distributed telemetry"]
        for name in sorted(snapshot["counters"]):
            lines.append(f"  {name:<26} {snapshot['counters'][name]:>10}")
        lines.extend(self._render_stage_lines(snapshot["stages"], width=18))
        return "\n".join(lines)
