"""One simulated enclave worker in a data-parallel CalTrain deployment.

Each worker is a full CalTrain training stack in miniature: its own SGX
platform (distinct platform identity and key), its own training enclave
built from the *same* agreed architecture config and hyperparameters —
and therefore carrying the same MRENCLAVE as every sibling, so the same
participant attestation checks pass — a model replica, and a shard of the
encrypted submissions. FrontNet weights live inside the worker's enclave
and leave it only sealed (checkpoints) or masked (secure aggregation);
the plaintext shard never exists outside the enclave.

Fault tolerance reuses :mod:`repro.resilience` wholesale: every round
starts with a sealed checkpoint, and a crashed worker rebuilds its
enclave (re-attested), re-provisions keys, re-stages its shard, restores
the round-start checkpoint, and *replays* its local epoch so every RNG
stream advances exactly as in an uninterrupted run — the recovered
replica is bitwise-consistent with a never-crashed one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer
from repro.crypto.shamir import Share, encode_share
from repro.crypto.tls import SecureChannel
from repro.data.augmentation import Augmenter
from repro.data.encryption import EncryptedDataset
from repro.distributed.channels import (decode_vector, encode_vector,
                                        open_attested_channel)
from repro.enclave.attestation import AttestationService
from repro.enclave.enclave import Enclave
from repro.enclave.memory import EPC_USABLE_BYTES
from repro.enclave.platform import SgxPlatform
from repro.errors import CheckpointError, ConfigurationError, EnclaveAbort
from repro.federation.secure_agg import SecureAggregationClient
from repro.federation.server import DecryptionSummary, TrainingServer
from repro.nn.network import Network
from repro.nn.optimizers import Sgd
from repro.observability.tracing import Tracer
from repro.resilience.checkpoint import CheckpointManager, capture_state, restore_state
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream

__all__ = ["EnclaveWorker", "flatten_slice", "apply_flat_delta"]

_LOG = get_logger("distributed.worker")

_SHARE_PREFIX = "secagg-share/"


def flatten_slice(weights: List[Dict[str, np.ndarray]]) -> np.ndarray:
    """Concatenate a weight slice into one float64 vector (stable order)."""
    parts = []
    for layer in weights:
        for name in sorted(layer):
            parts.append(np.asarray(layer[name], dtype=np.float64).ravel())
    if not parts:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(parts)


def apply_flat_delta(weights: List[Dict[str, np.ndarray]],
                     delta: np.ndarray) -> List[Dict[str, np.ndarray]]:
    """Return ``weights + delta`` with the flat vector unpacked in the
    same stable order :func:`flatten_slice` packed it."""
    result: List[Dict[str, np.ndarray]] = []
    offset = 0
    for layer in weights:
        entry: Dict[str, np.ndarray] = {}
        for name in sorted(layer):
            arr = layer[name]
            chunk = delta[offset:offset + arr.size].reshape(arr.shape)
            offset += arr.size
            entry[name] = (np.asarray(arr, dtype=np.float64) + chunk).astype(
                arr.dtype
            )
        result.append(entry)
    if offset != delta.size:
        raise ConfigurationError(
            f"flat delta carries {delta.size} elements, expected {offset}"
        )
    return result


class EnclaveWorker:
    """One training enclave + model replica + shard of the submissions."""

    def __init__(self, worker_id: str, *,
                 network_factory: Callable[[np.random.Generator], Network],
                 network_config: str,
                 hyperparameters: Dict[str, float],
                 partition: int,
                 batch_size: int,
                 learning_rate: float,
                 momentum: float,
                 rng: RngStream,
                 attestation_service: AttestationService,
                 checkpoint_dir,
                 cipher: str = "hmac-ctr",
                 augment: bool = False,
                 config_digest: Optional[bytes] = None,
                 epc_bytes: int = EPC_USABLE_BYTES) -> None:
        self.worker_id = worker_id
        self.rng = rng
        self.cipher = cipher
        self.augment = augment
        self.partition = partition
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._network_factory = network_factory
        self._network_config = network_config
        self._hyperparameters = dict(hyperparameters)
        self.attestation_service = attestation_service
        self.platform = SgxPlatform(
            rng=rng.child("platform"),
            platform_id=f"sgx-{worker_id}",
            epc_bytes=epc_bytes,
        )
        self.server = TrainingServer(
            self.platform, attestation_service, rng.child("server")
        )
        self.enclave: Enclave = self.server.build_training_enclave(
            network_config, hyperparameters=self._hyperparameters
        )
        #: The measurement every replacement enclave must re-attest to.
        self.expected_mrenclave = self.enclave.mrenclave
        self.manager = CheckpointManager(checkpoint_dir,
                                         config_digest=config_digest)
        self._shard: List[EncryptedDataset] = []
        self.model: Optional[Network] = None
        self.partitioned: Optional[PartitionedNetwork] = None
        self.trainer: Optional[ConfidentialTrainer] = None
        self.x: Optional[np.ndarray] = None
        self.y: Optional[np.ndarray] = None
        self.channel: Optional[SecureChannel] = None
        self._secagg: Optional[SecureAggregationClient] = None
        self._round_weights: Optional[List[Dict[str, np.ndarray]]] = None
        self._handshake_attempts = 0

    # -- shard staging -----------------------------------------------------------

    @property
    def examples(self) -> int:
        """Shard size in decrypted training examples."""
        return 0 if self.y is None else int(self.y.shape[0])

    def adopt_shard(self, datasets: Sequence[EncryptedDataset]) -> None:
        """Take ownership of a shard of the encrypted submissions."""
        self._shard = list(datasets)

    def stage(self, provisioner: Callable[[Enclave], None]) -> DecryptionSummary:
        """Provision keys and decrypt this worker's shard in-enclave."""
        provisioner(self.enclave)
        self.server.replace_submissions(self._shard)
        summary = self.server.decrypt_submissions(cipher=self.cipher)
        self.x, self.y, _, _ = self.server.staged_training_data()
        return summary

    # -- replica lifecycle -------------------------------------------------------

    def build_trainer(
        self, init_generator_factory: Callable[[], np.random.Generator]
    ) -> None:
        """Build the model replica and its enclave-backed trainer.

        ``init_generator_factory`` must hand every worker an identically
        seeded generator, so all replicas (and the single-enclave
        baseline on the same master seed) start from the same weights —
        the invariant the per-round broadcast then preserves.
        """
        self._init_generator_factory = init_generator_factory
        self.model = self._network_factory(init_generator_factory())
        self.model.set_dropout_rng(self.enclave.trusted_rng.generator)
        self.partitioned = PartitionedNetwork(
            self.model, self.partition, enclave=self.enclave
        )
        augmenter = (
            Augmenter(rng=self.enclave.trusted_rng.generator)
            if self.augment else None
        )
        self.trainer = ConfidentialTrainer(
            self.partitioned,
            Sgd(self.learning_rate, self.momentum),
            batch_rng=self.enclave.trusted_rng.stream.child("batches").generator,
            augmenter=augmenter,
            batch_size=self.batch_size,
        )

    def bind_observability(self, tracer: Optional[Tracer] = None,
                           metrics=None) -> None:
        if self.trainer is not None:
            self.trainer.bind_observability(tracer=tracer, metrics=metrics)

    def open_channel(self, aggregator) -> None:
        """Establish this worker's attested channel into the aggregator.

        The handshake RNG is salted with a per-handshake attempt counter:
        ``RngStream.child`` is seed-derived, so an unsalted re-handshake
        (after a corrupt fault or crash recovery) would reproduce the
        previous session's DH keys and record keys with sequence counters
        reset — letting the untrusted coordinator replay captured records
        onto the "fresh" channel, and reusing AEAD key+nonce pairs across
        distinct plaintexts. The aggregator salts its side the same way.
        """
        self._handshake_attempts += 1
        self.channel = open_attested_channel(
            rng=self.rng.child(f"agg-tls-client/{self._handshake_attempts}"),
            aggregator=aggregator,
            peer_id=self.worker_id,
            attestation_service=self.attestation_service,
            expected_mrenclave=aggregator.mrenclave,
        )

    # -- per-round protocol ------------------------------------------------------

    def checkpoint(self, round_index: int) -> None:
        """Seal a round-boundary checkpoint of the replica."""
        state = capture_state(self.trainer, epoch=round_index, batch=0)
        self.manager.save(state, self.enclave)
        self.manager.prune(keep_last=2)

    def run_round(self, round_index: int,
                  batch_callback: Optional[Callable] = None,
                  ) -> Tuple[float, float]:
        """One local epoch over the shard; returns (mean_loss, duration).

        Snapshots the round-start weights first — deltas and the
        broadcast update are all relative to that snapshot.
        """
        self._round_weights = self.partitioned.network.get_weights()
        start = self.platform.clock.now
        mean_loss, _ = self.trainer.train_epoch(
            self.x, self.y, round_index, batch_callback=batch_callback
        )
        return mean_loss, self.platform.clock.now - start

    def front_delta(self) -> np.ndarray:
        """FrontNet weight delta since the round-start snapshot (flat)."""
        now = self.partitioned.network.get_weights()[:self.partition]
        base = self._round_weights[:self.partition]
        return flatten_slice(now) - flatten_slice(base)

    def back_delta(self) -> np.ndarray:
        """BackNet weight delta since the round-start snapshot (flat)."""
        now = self.partitioned.network.get_weights()[self.partition:]
        base = self._round_weights[self.partition:]
        return flatten_slice(now) - flatten_slice(base)

    # -- secure aggregation (per-round cohort) -----------------------------------

    def begin_cohort(self, secagg_id: int, round_rng: RngStream) -> None:
        """Join the round's masking cohort with fresh DH material.

        A fresh client per round is deliberate: reusing pairwise seeds
        across rounds would let the coordinator subtract two rounds'
        uploads and learn the plaintext difference of a worker's updates.
        """
        self._secagg = SecureAggregationClient(secagg_id, round_rng)

    @property
    def secagg_id(self) -> int:
        return self._secagg.client_id

    @property
    def secagg_public_key(self) -> int:
        return self._secagg.public_key

    def establish_pairs(self, directory: Dict[int, int]) -> None:
        self._secagg.establish_pairs(directory)

    def escrow_records(self, threshold: int,
                       cohort_size: int) -> Dict[int, bytes]:
        """Shamir-share this worker's round DH key among the cohort.

        Returns one *sealed* share record per peer — AEAD-encrypted under
        the pairwise secure-aggregation key shared with that peer, so the
        coordinator relaying the records sees only ciphertext (the
        Bonawitz share-transit discipline). This worker's own share goes
        straight into its enclave store and never crosses the boundary.
        """
        shares = self._secagg.escrow_private_key(threshold, cohort_size)
        records: Dict[int, bytes] = {}
        for position, share in enumerate(shares):
            if position == self._secagg.client_id:
                self._hold_share(position, share)
            else:
                records[position] = self._secagg.encrypt_share_for(
                    position, share
                )
        return records

    def _hold_share(self, owner_secagg_id: int, share: Share) -> None:
        """Hold one escrowed share in enclave memory (dies with it)."""
        self.enclave.trusted_put(f"{_SHARE_PREFIX}{owner_secagg_id}", share)

    def hold_share_record(self, owner_secagg_id: int, record: bytes) -> None:
        """Open one relayed share record (sealed under the pairwise key
        with its owner) inside the enclave and hold the share there."""
        share = self._secagg.decrypt_share_from(owner_secagg_id, record)
        self._hold_share(owner_secagg_id, share)

    def reveal_share_record(self, owner_secagg_id: int) -> Optional[bytes]:
        """Surrender a held share so a dropout's masks can be rebuilt.

        The share leaves the enclave only as an AEAD record on this
        worker's attested aggregator channel: the relaying coordinator can
        neither read it nor splice it elsewhere (records are
        sequence-bound), so it never holds reconstruction material.
        """
        key = f"{_SHARE_PREFIX}{owner_secagg_id}"
        if not self.enclave.trusted_has(key):
            return None
        share: Share = self.enclave.trusted_get(key)
        return self.channel.send(encode_share(share))

    def upload_record(self, masked: bool) -> bytes:
        """The round's upload: shard-size-scaled FrontNet delta, masked
        (cohort >= 2) and protected for the aggregator channel."""
        vector = self.front_delta() * float(self.examples)
        if masked:
            vector = self._secagg.masked_update(vector)
        return self.channel.send(encode_vector(vector))

    def apply_broadcast(self, record: bytes, back_delta_avg: np.ndarray,
                        ) -> None:
        """Install the round's agreed update onto the round-start snapshot.

        The FrontNet half arrives over the attested channel (the
        coordinator never sees it unprotected); the BackNet half is the
        coordinator's plaintext weighted average — exactly the paper's
        confidentiality split. All replicas apply identical deltas to
        identical snapshots, so they stay bitwise in lockstep.
        """
        front_avg = decode_vector(self.channel.receive(record))
        new_front = apply_flat_delta(
            self._round_weights[:self.partition], front_avg
        )
        new_back = apply_flat_delta(
            self._round_weights[self.partition:], back_delta_avg
        )
        self.partitioned.network.set_weights(new_front + new_back)
        self.partitioned.network.zero_grads()

    def replica_weights(self) -> List[Dict[str, np.ndarray]]:
        return self.partitioned.network.get_weights()

    # -- fault injection + recovery ----------------------------------------------

    def crash(self) -> None:
        """Tear the enclave down mid-round (EPC eviction, power loss...)."""
        self.enclave.destroy()
        raise EnclaveAbort(
            f"worker {self.worker_id}: enclave torn down mid-round"
        )

    def recover(self, provisioner: Callable[[Enclave], None],
                aggregator) -> int:
        """Rebuild after a crash; returns the round to replay.

        The full resilience flow: rebuild the enclave from the agreed
        config (same MRENCLAVE), re-attest it, re-provision every
        participant key over attested TLS, re-stage the shard, restore
        the newest sealed round-boundary checkpoint (same platform +
        same measurement, so the seal opens), rebind the trainer's RNG
        plumbing, and re-open the attested aggregator channel.
        """
        replacement = self.server.build_training_enclave(
            self._network_config, hyperparameters=self._hyperparameters
        )
        self.attestation_service.verify(
            replacement.quote(b"distributed-recovery"),
            expected_mrenclave=self.expected_mrenclave,
        )
        self.enclave = replacement
        self.partitioned.rebind_enclave(replacement)
        self.model.set_dropout_rng(replacement.trusted_rng.generator)
        if self.trainer.augmenter is not None:
            self.trainer.augmenter.rng = replacement.trusted_rng.generator
        self.trainer.batch_rng = (
            replacement.trusted_rng.stream.child("batches").generator
        )
        provisioner(replacement)
        self.server.decrypt_submissions(cipher=self.cipher)
        self.x, self.y, _, _ = self.server.staged_training_data()
        info = self.manager.latest()
        if info is None:
            raise CheckpointError(
                f"worker {self.worker_id}: no valid checkpoint to recover "
                "from"
            )
        state = self.manager.load(info, replacement)
        restore_state(self.trainer, state)
        self.open_channel(aggregator)
        _LOG.info("worker %s recovered at round %d from %s",
                  self.worker_id, state.epoch, info.path.name)
        return state.epoch
