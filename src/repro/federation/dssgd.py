"""Distributed selective SGD (Shokri & Shmatikov, CCS 2015) baseline.

Participants train locally and *selectively share* a fraction theta of
their largest parameter updates with a global parameter server; others
download the global parameters before training. This is the second
distributed collaborative-learning paradigm the paper's introduction
contrasts CalTrain with.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.data.batching import iterate_minibatches
from repro.data.datasets import Dataset
from repro.errors import ConfigurationError
from repro.nn.network import Network
from repro.nn.optimizers import Sgd
from repro.utils.rng import RngStream

__all__ = ["DistributedSelectiveSgd"]


class DistributedSelectiveSgd:
    """Round-robin selective gradient sharing.

    Args:
        theta: Fraction of parameter coordinates shared per round (the
            paper's theta_u; Shokri & Shmatikov report theta as low as 0.01
            still converging).
    """

    def __init__(self, model_factory: Callable[[], Network],
                 client_datasets: Sequence[Dataset], rng: RngStream,
                 theta: float = 0.1, batch_size: int = 32,
                 learning_rate: float = 0.05, batches_per_turn: int = 8) -> None:
        if not 0.0 < theta <= 1.0:
            raise ConfigurationError("theta must be in (0, 1]")
        self.model_factory = model_factory
        self.client_datasets = list(client_datasets)
        self.rng = rng
        self.theta = theta
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.batches_per_turn = batches_per_turn
        self.global_model = model_factory()

    def _selective_upload(self, old_weights, new_weights) -> None:
        """Apply only the top-theta largest coordinate updates globally."""
        deltas: List[np.ndarray] = []
        for old_layer, new_layer in zip(old_weights, new_weights):
            for name in old_layer:
                deltas.append((new_layer[name] - old_layer[name]).ravel())
        if not deltas:
            return
        flat = np.concatenate(deltas)
        keep = max(1, int(round(self.theta * flat.size)))
        threshold = np.partition(np.abs(flat), -keep)[-keep]
        global_weights = self.global_model.get_weights()
        for layer_idx, (old_layer, new_layer) in enumerate(zip(old_weights, new_weights)):
            for name in old_layer:
                delta = new_layer[name] - old_layer[name]
                mask = np.abs(delta) >= threshold
                global_weights[layer_idx][name] += delta * mask
        self.global_model.set_weights(global_weights)

    def _client_turn(self, client_idx: int, turn: int) -> float:
        dataset = self.client_datasets[client_idx]
        local = self.model_factory()
        old_weights = self.global_model.get_weights()
        local.set_weights(old_weights)
        optimizer = Sgd(self.learning_rate, momentum=0.0)
        batch_rng = self.rng.child(f"batches/{turn}/{client_idx}").generator
        losses = []
        batches = iterate_minibatches(dataset.x, dataset.y, self.batch_size,
                                      rng=batch_rng)
        for _, (xb, yb) in zip(range(self.batches_per_turn), batches):
            losses.append(local.train_batch(xb, yb, optimizer))
        self._selective_upload(old_weights, local.get_weights())
        return float(np.mean(losses)) if losses else 0.0

    def train(self, rounds: int) -> Network:
        """Each round every client takes one turn, in random order."""
        for turn in range(rounds):
            order = self.rng.child(f"order/{turn}").generator.permutation(
                len(self.client_datasets)
            )
            for client_idx in order:
                self._client_turn(int(client_idx), turn)
        return self.global_model
