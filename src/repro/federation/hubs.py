"""Hierarchical learning hubs (paper, Section IV-B "Performance").

To scale in-enclave training, CalTrain can form multiple learning hubs —
one enclave per hub, each training a sub-model on the encrypted data of its
downstream participant subgroup — with a root aggregation server that
periodically merges model updates, Federated-Learning style, except that
every "client" here is itself an attested enclave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.data.batching import iterate_minibatches
from repro.data.datasets import Dataset
from repro.enclave.platform import SgxPlatform
from repro.errors import ConfigurationError
from repro.federation.fedavg import average_weights
from repro.nn.network import Network
from repro.nn.optimizers import Sgd
from repro.utils.rng import RngStream

__all__ = ["LearningHub", "HubAggregator"]


class LearningHub:
    """One enclave-backed hub serving a subgroup of participants."""

    def __init__(self, hub_id: str, platform: SgxPlatform,
                 model_factory: Callable[[], Network], partition: int,
                 datasets: Sequence[Dataset], rng: RngStream,
                 batch_size: int = 32, learning_rate: float = 0.05) -> None:
        from repro.core.partition import PartitionedNetwork

        if not datasets:
            raise ConfigurationError(f"hub {hub_id} has no participant data")
        self.hub_id = hub_id
        self.platform = platform
        self.enclave = platform.create_enclave(f"hub-enclave/{hub_id}")
        self.enclave.init()
        self.network = model_factory()
        self.partitioned = PartitionedNetwork(self.network, partition, self.enclave)
        self.dataset = Dataset.concatenate(list(datasets), name=f"hub/{hub_id}")
        self.rng = rng
        self.batch_size = batch_size
        self.optimizer = Sgd(learning_rate)

    def train_epoch(self, epoch: int) -> float:
        """One partitioned-training epoch over the hub's pooled data."""
        batch_rng = self.rng.child(f"batches/{epoch}").generator
        self.network.set_dropout_rng(self.enclave.trusted_rng.generator)
        losses = [
            self.partitioned.train_batch(xb, yb, self.optimizer)
            for xb, yb in iterate_minibatches(
                self.dataset.x, self.dataset.y, self.batch_size, rng=batch_rng
            )
        ]
        return float(np.mean(losses))


@dataclass
class HubRound:
    round_index: int
    hub_losses: List[float]


class HubAggregator:
    """Root model-aggregation server over several learning hubs."""

    def __init__(self, hubs: Sequence[LearningHub],
                 global_model: Optional[Network] = None) -> None:
        if not hubs:
            raise ConfigurationError("need at least one hub")
        self.hubs = list(hubs)
        self.global_model = global_model if global_model is not None else hubs[0].network
        self.history: List[HubRound] = []

    def run_round(self, round_idx: int, epochs_per_round: int = 1) -> HubRound:
        """Broadcast global weights, train each hub, merge size-weighted."""
        global_weights = self.global_model.get_weights()
        for hub in self.hubs:
            hub.network.set_weights(global_weights)
        losses = []
        for hub in self.hubs:
            hub_loss = 0.0
            for epoch in range(epochs_per_round):
                hub_loss = hub.train_epoch(round_idx * epochs_per_round + epoch)
            losses.append(hub_loss)
        merged = average_weights(
            [hub.network.get_weights() for hub in self.hubs],
            sizes=[len(hub.dataset) for hub in self.hubs],
        )
        self.global_model.set_weights(merged)
        record = HubRound(round_index=round_idx, hub_losses=losses)
        self.history.append(record)
        return record

    def train(self, rounds: int, epochs_per_round: int = 1) -> Network:
        for round_idx in range(rounds):
            self.run_round(round_idx, epochs_per_round)
        return self.global_model
