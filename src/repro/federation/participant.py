"""A training participant (data contributor)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.crypto.keys import SymmetricKey, random_key
from repro.data.datasets import Dataset
from repro.data.encryption import EncryptedDataset, encrypt_dataset
from repro.errors import QueryError
from repro.nn.network import Network
from repro.utils.rng import RngStream
from repro.utils.serialization import stable_hash

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.core
    from repro.core.assessment import AssessmentResult, ExposureAssessor

__all__ = ["TrainingParticipant"]


class TrainingParticipant:
    """One distrusting data contributor.

    Holds a private dataset and a locally generated symmetric key. The key
    never leaves the participant except through the attested TLS channel
    into the training enclave (:mod:`repro.federation.provisioning`).
    """

    def __init__(self, participant_id: str, dataset: Dataset, rng: RngStream) -> None:
        self.participant_id = participant_id
        self.dataset = dataset
        self.rng = rng
        self.key: SymmetricKey = random_key(
            rng.child("data-key"), key_id=f"{participant_id}/data-key"
        )

    def encrypt_dataset(self, cipher: str = "hmac-ctr") -> EncryptedDataset:
        """Seal the private training data for submission to the server."""
        return encrypt_dataset(self.dataset, self.key, self.participant_id, cipher=cipher)

    # -- dynamic re-assessment (paper, Section IV-B) ---------------------------

    def assess_exposure(self, semi_trained_model: Network,
                        assessor: "ExposureAssessor",
                        sample_size: int = 4) -> "AssessmentResult":
        """Assess a retrieved semi-trained model on local private data.

        After each epoch participants retrieve the semi-trained model and
        measure information exposure with their own data, then vote on the
        partition for the next epoch.
        """
        take = min(sample_size, len(self.dataset))
        sample = self.dataset.x[:take]
        return assessor.assess(semi_trained_model, sample)

    # -- forensic cooperation (paper, Section IV-C) ------------------------------

    def disclose_instance(self, index: int) -> np.ndarray:
        """Hand over one original training instance for an investigation.

        Participants agreed (threat model) to turn in demanded instances
        when erroneous predictions are being debugged; the investigator
        verifies the returned instance's hash digest against the linkage
        record before trusting it.
        """
        if not 0 <= index < len(self.dataset):
            raise QueryError(
                f"{self.participant_id} has no training instance {index}"
            )
        return self.dataset.x[index]

    def instance_digest(self, index: int) -> bytes:
        """The hash digest of a local instance (as recorded at training)."""
        return stable_hash(self.dataset.x[index])
