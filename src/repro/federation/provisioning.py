"""Secret provisioning: attested TLS key delivery into the training enclave.

The flow (paper, Section IV-A):

1. the participant sends a ClientHello to the enclave;
2. the enclave answers with a ServerHello whose DH share is *bound* to an
   attestation quote — the quote's ``report_data`` is the hash of the
   server's DH public value;
3. the participant verifies the quote against the attestation service and
   the agreed MRENCLAVE, checks the binding, and finishes the handshake;
4. the participant sends its symmetric data key over the established
   channel; the trusted provisioning ECALL stores it in enclave memory.

Only after all of this does any key material exist server-side — and only
inside the enclave.
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.hashing import constant_time_equal, sha256
from repro.crypto.tls import ClientHello, Finished, SecureChannel, TlsServer
from repro.enclave.attestation import AttestationService, Quote
from repro.enclave.enclave import Enclave
from repro.errors import AttestationError, ProvisioningError
from repro.federation.participant import TrainingParticipant

__all__ = ["install_provisioning_ecalls", "provision_key"]

_SESSION_PREFIX = "tls-session/"
_KEY_PREFIX = "participant-key/"


# -- trusted (in-enclave) functions -----------------------------------------


def _ecall_start_handshake(enclave: Enclave, participant_id: str,
                           hello_c: ClientHello):
    """Trusted: answer a ClientHello and emit a bound attestation quote."""
    server = TlsServer(rng=enclave.trusted_rng.stream.child(f"tls/{participant_id}"))
    # Bind the quote to this handshake: report_data = H(server DH public).
    report_data = sha256(server.dh_public.to_bytes(256, "big"))
    server.bind_report_data(report_data)
    hello_s = server.process_client_hello(hello_c)
    enclave.trusted_put(_SESSION_PREFIX + participant_id, server)
    quote = enclave.quote(report_data=report_data)
    return hello_s, quote


def _ecall_finish_handshake(enclave: Enclave, participant_id: str,
                            finished: Finished) -> None:
    """Trusted: verify the client Finished and open the record channel."""
    server: TlsServer = enclave.trusted_get(_SESSION_PREFIX + participant_id)
    server.process_finished(finished)
    enclave.trusted_put(
        _SESSION_PREFIX + participant_id + "/channel", server.channel()
    )


def _ecall_provision_key(enclave: Enclave, participant_id: str,
                         record: bytes) -> None:
    """Trusted: receive one protected record carrying the data key."""
    channel: SecureChannel = enclave.trusted_get(
        _SESSION_PREFIX + participant_id + "/channel"
    )
    key_material = channel.receive(record)
    enclave.trusted_put(_KEY_PREFIX + participant_id, key_material,
                        nbytes=len(key_material))


def install_provisioning_ecalls(enclave: Enclave) -> None:
    """Register the provisioning ECALLs (call during enclave build)."""
    enclave.add_code("start_handshake", _ecall_start_handshake)
    enclave.add_code("finish_handshake", _ecall_finish_handshake)
    enclave.add_code("provision_key", _ecall_provision_key)


# -- untrusted orchestration + participant side --------------------------------


def provision_key(participant: TrainingParticipant, enclave: Enclave,
                  attestation_service: AttestationService,
                  expected_mrenclave: bytes) -> None:
    """Run the full attested provisioning flow for one participant.

    Raises:
        AttestationError: quote invalid, wrong MRENCLAVE, or broken binding.
        ProvisioningError: handshake/record failures.
    """
    from repro.crypto.tls import TlsClient

    client = TlsClient(rng=participant.rng.child("tls-client"))
    hello_c = client.client_hello()
    hello_s, quote = enclave.ecall(
        "start_handshake", participant.participant_id, hello_c, payload_bytes=512
    )

    _verify_binding(quote, hello_s.dh_public, attestation_service, expected_mrenclave)

    finished = client.process_server_hello(hello_s)
    enclave.ecall(
        "finish_handshake", participant.participant_id, finished, payload_bytes=64
    )
    channel = client.channel()
    record = channel.send(participant.key.material)
    enclave.ecall(
        "provision_key", participant.participant_id, record,
        payload_bytes=len(record),
    )
    if not enclave.trusted_has(_KEY_PREFIX + participant.participant_id):
        raise ProvisioningError(
            f"enclave did not record a key for {participant.participant_id}"
        )


def _verify_binding(quote: Quote, server_dh_public: int,
                    attestation_service: AttestationService,
                    expected_mrenclave: bytes) -> None:
    attestation_service.verify(quote, expected_mrenclave=expected_mrenclave)
    expected_binding = sha256(server_dh_public.to_bytes(256, "big"))
    if not constant_time_equal(quote.report_data, expected_binding):
        raise AttestationError(
            "quote is not bound to this TLS handshake (possible MITM)"
        )


def provisioned_key(enclave: Enclave, participant_id: str) -> bytes:
    """Trusted-code helper: fetch a provisioned key from enclave storage."""
    key_name = _KEY_PREFIX + participant_id
    if not enclave.trusted_has(key_name):
        raise ProvisioningError(f"no key provisioned for {participant_id!r}")
    return enclave.trusted_get(key_name)


def registered_participants(enclave: Enclave) -> Tuple[str, ...]:
    """Trusted-code helper: all participant ids with provisioned keys."""
    return tuple(
        name[len(_KEY_PREFIX):]
        for name in list(enclave._storage)
        if name.startswith(_KEY_PREFIX)
    )
