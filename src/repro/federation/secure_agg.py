"""Secure aggregation (Bonawitz et al., CCS 2017), simplified.

The paper's related work cites secure aggregation as the cryptographic
alternative for protecting federated updates: the server learns only the
*sum* of the clients' vectors, never an individual contribution. This
module implements the core pairwise-masking protocol (without the
dropout-recovery machinery):

* every client pair ``(i, j)`` agrees on a seed via Diffie-Hellman;
* client ``i`` uploads ``x_i + sum_{j>i} PRG(s_ij) - sum_{j<i} PRG(s_ij)``;
* summing all uploads cancels every mask, yielding ``sum_i x_i`` exactly.

It exists as a baseline for the accountability argument: even with secure
aggregation, the server cannot attribute a poisoned update — the masking
that protects honest clients also hides the malicious one, which is
precisely the confidentiality/accountability conflict CalTrain resolves.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.crypto.aead import NONCE_LEN, AesGcm
from repro.crypto.dh import DhKeyPair
from repro.crypto.hkdf import hkdf
from repro.crypto.shamir import (Share, decode_share, encode_share,
                                 reconstruct_secret, split_secret)
from repro.errors import AggregationError, ConfigurationError, CryptoError
from repro.utils.rng import RngStream

__all__ = [
    "SecureAggregationClient",
    "aggregate",
    "aggregate_with_dropouts",
    "run_secure_aggregation",
    "recover_dropout",
]


#: Mask amplitude. Bonawitz et al. mask uniformly over a large modular
#: field; with float64 vectors the analogue is an amplitude that dwarfs any
#: plausible update magnitude while staying far from the 2^53 precision
#: limit, so the pairwise sums still cancel exactly.
_MASK_SCALE = 1.0e6


def _mask_from_seed(seed: bytes, size: int) -> np.ndarray:
    """Expand a shared seed into a deterministic mask vector."""
    generator = np.random.Generator(
        np.random.PCG64(int.from_bytes(hkdf(seed, info=b"secagg-prg")[:8], "big"))
    )
    return generator.standard_normal(size).astype(np.float64) * _MASK_SCALE


class SecureAggregationClient:
    """One client in the pairwise-masking protocol.

    Clients optionally Shamir-share their pairwise seeds among the cohort
    (``share_seeds``) so that a client who drops out *after* uploading can
    have its masks reconstructed and cancelled by any ``threshold``
    survivors — the dropout-recovery half of Bonawitz et al.
    """

    def __init__(self, client_id: int, rng: RngStream) -> None:
        self.client_id = client_id
        self._rng = rng.child(f"secagg-shamir/{client_id}")
        self._keypair = DhKeyPair(rng.child(f"secagg/{client_id}"))
        self._pair_seeds: Dict[int, bytes] = {}
        #: Shares of *other* clients' seed bundles held by this client:
        #: owner_id -> its share of that owner's serialized seeds.
        self.held_shares: Dict[int, Share] = {}

    @property
    def public_key(self) -> int:
        return self._keypair.public

    def establish_pairs(self, peers: Dict[int, int]) -> None:
        """Derive a pairwise seed with every other client's public key."""
        for peer_id, peer_public in peers.items():
            if peer_id == self.client_id:
                continue
            shared = self._keypair.shared_secret(peer_public)
            self._pair_seeds[peer_id] = hkdf(shared, info=b"secagg-seed")

    def masked_update(self, vector: np.ndarray) -> np.ndarray:
        """The client's upload: its vector plus the pairwise masks."""
        if not self._pair_seeds:
            raise ConfigurationError("establish_pairs() must run first")
        masked = vector.astype(np.float64).copy()
        for peer_id, seed in self._pair_seeds.items():
            mask = _mask_from_seed(seed, vector.size).reshape(vector.shape)
            if peer_id > self.client_id:
                masked += mask
            else:
                masked -= mask
        return masked


    # -- dropout recovery (the Bonawitz t-of-n escrow) -----------------------

    def escrow_private_key(self, threshold: int,
                           num_shares: int) -> List[Share]:
        """Shamir-share this client's DH private key among the cohort.

        If this client drops after uploading, any ``threshold`` survivors
        hand their shares to the server, which reconstructs the key,
        re-derives the pairwise seeds, and cancels the orphaned masks.
        """
        return split_secret(self._keypair.private_bytes(), threshold,
                            num_shares, self._rng)

    # -- share sealing (Bonawitz: shares transit the server encrypted) -------

    def _share_aead(self, peer_id: int) -> AesGcm:
        if peer_id not in self._pair_seeds:
            raise ConfigurationError(
                f"no pairwise seed with client {peer_id}; "
                "establish_pairs() must run first"
            )
        return AesGcm(
            hkdf(self._pair_seeds[peer_id], info=b"secagg-share-key",
                 length=16)
        )

    @staticmethod
    def _share_aad(owner_id: int, holder_id: int) -> bytes:
        return struct.pack("<II", owner_id, holder_id)

    def encrypt_share_for(self, peer_id: int, share: Share) -> bytes:
        """Seal one escrowed share of *this* client's key for ``peer_id``.

        The record is AEAD-encrypted under a key derived from the pairwise
        DH seed, with the (owner, holder) pair bound as associated data —
        the untrusted relay can neither read a share nor re-route it to a
        different holder or claim it for a different owner.
        """
        nonce = self._rng.randbytes(NONCE_LEN)
        sealed = self._share_aead(peer_id).seal(
            nonce, encode_share(share),
            self._share_aad(self.client_id, peer_id),
        )
        return nonce + sealed

    def decrypt_share_from(self, owner_id: int, record: bytes) -> Share:
        """Open a share record sealed by ``owner_id`` for this client.

        Raises :class:`~repro.errors.AuthenticationError` when the record
        was tampered with or re-routed, :class:`~repro.errors.CryptoError`
        when the opened payload is not a well-formed share.
        """
        nonce, sealed = record[:NONCE_LEN], record[NONCE_LEN:]
        plaintext = self._share_aead(owner_id).open(
            nonce, sealed, self._share_aad(owner_id, self.client_id)
        )
        return decode_share(plaintext)


def recover_dropout(dropped_id: int, shares: Sequence[Share],
                    directory: Dict[int, int],
                    vector_shape: Tuple[int, ...]) -> np.ndarray:
    """Reconstruct a dropped client's total mask from escrowed shares.

    Args:
        dropped_id: The client that uploaded and then vanished.
        shares: At least ``threshold`` of its escrowed key shares.
        directory: client_id -> DH public key, for every registered client.
        vector_shape: Shape of the update vectors.

    Returns:
        The mask vector the dropped client added to its upload; subtracting
        it from the naive aggregate restores correctness.
    """
    private = int.from_bytes(reconstruct_secret(shares, 32), "big")
    keypair = DhKeyPair.from_private(private)
    if dropped_id not in directory:
        raise CryptoError(f"client {dropped_id} is not in the directory")
    if keypair.public != directory[dropped_id]:
        raise CryptoError(
            "reconstructed key does not match the directory (bad shares?)"
        )
    size = int(np.prod(vector_shape))
    total_mask = np.zeros(size, dtype=np.float64)
    for peer_id, peer_public in directory.items():
        if peer_id == dropped_id:
            continue
        seed = hkdf(keypair.shared_secret(peer_public), info=b"secagg-seed")
        mask = _mask_from_seed(seed, size)
        if peer_id > dropped_id:
            total_mask += mask
        else:
            total_mask -= mask
    return total_mask.reshape(vector_shape)


def aggregate(masked_updates: Sequence[np.ndarray]) -> np.ndarray:
    """Server-side sum; pairwise masks cancel exactly."""
    if not masked_updates:
        raise ConfigurationError("nothing to aggregate")
    total = np.zeros_like(masked_updates[0])
    for update in masked_updates:
        total += update
    return total


def aggregate_with_dropouts(
    uploads: Dict[int, np.ndarray],
    directory: Dict[int, int],
    dropped: Sequence[int] = (),
    shares: Optional[Dict[int, Sequence[Share]]] = None,
    threshold: int = 1,
    vector_shape: Optional[Tuple[int, ...]] = None,
) -> np.ndarray:
    """Dropout-aware aggregation: exact sum of the survivors' vectors.

    A client that established pairs but never uploaded leaves its pairwise
    masks orphaned in the survivors' sum: survivor ``i`` carries an
    uncancelled ``±PRG(s_id)`` term for the dropped client ``d``. The sum
    of those orphaned terms is exactly ``-recover_dropout(d)``, so adding
    each dropped client's reconstructed total mask restores the exact sum
    of the surviving uploads (cross-terms between two dropped clients
    cancel pairwise when both totals are added).

    Fail-closed contract — any of the following raises
    :class:`~repro.errors.AggregationError` instead of returning a
    silently biased sum:

    * a directory member neither uploaded nor was declared dropped;
    * a client was declared both uploaded and dropped, or is unknown;
    * a dropped client has fewer than ``threshold`` escrowed shares;
    * the shares reconstruct to a key that contradicts the directory.

    Args:
        uploads: client_id -> masked upload, for every survivor.
        directory: client_id -> DH public key for the whole cohort that
            established pairs this round.
        dropped: Clients that established pairs but did not upload.
        shares: dropped client_id -> its escrowed key shares (from
            :meth:`SecureAggregationClient.escrow_private_key`).
        threshold: The Shamir threshold the cohort escrowed with.
        vector_shape: Shape of the update vectors; inferred from the
            first upload when omitted.
    """
    shares = shares or {}
    dropped_set = set(dropped)
    if not uploads:
        raise AggregationError("no surviving uploads to aggregate")
    both = dropped_set & set(uploads)
    if both:
        raise AggregationError(
            f"clients {sorted(both)} are declared both uploaded and dropped"
        )
    accounted = set(uploads) | dropped_set
    unknown = accounted - set(directory)
    if unknown:
        raise AggregationError(
            f"clients {sorted(unknown)} are not in the cohort directory"
        )
    missing = set(directory) - accounted
    if missing:
        raise AggregationError(
            f"clients {sorted(missing)} neither uploaded nor were declared "
            "dropped; their unresolved masks would bias the aggregate"
        )
    total = np.zeros_like(next(iter(uploads.values())), dtype=np.float64)
    for client_id in sorted(uploads):
        total = total + uploads[client_id]
    shape = vector_shape if vector_shape is not None else total.shape
    for dropped_id in sorted(dropped_set):
        escrowed = list(shares.get(dropped_id, ()))
        if len(escrowed) < threshold:
            raise AggregationError(
                f"dropout {dropped_id}: {len(escrowed)} escrowed shares "
                f"available, threshold is {threshold}; refusing to publish "
                "a biased sum"
            )
        try:
            mask = recover_dropout(dropped_id, escrowed, directory, shape)
        except CryptoError as exc:
            raise AggregationError(
                f"dropout {dropped_id}: mask reconstruction failed: {exc}"
            ) from exc
        total = total + mask.reshape(total.shape)
    return total


def run_secure_aggregation(vectors: Sequence[np.ndarray],
                           rng: RngStream) -> np.ndarray:
    """Convenience: run the whole protocol over in-memory clients."""
    if len(vectors) < 2:
        raise ConfigurationError("secure aggregation needs >= 2 clients")
    clients = [SecureAggregationClient(i, rng) for i in range(len(vectors))]
    directory = {c.client_id: c.public_key for c in clients}
    for client in clients:
        client.establish_pairs(directory)
    uploads = [
        client.masked_update(vector)
        for client, vector in zip(clients, vectors)
    ]
    return aggregate(uploads)
