"""The CalTrain training server (untrusted host + training enclave).

The server provider hosts the SGX platform and orchestrates the pipeline
but never sees plaintext training data: records are authenticated and
decrypted *inside* the training enclave with keys provisioned over attested
TLS. Batches that fail authentication — forged payloads, tampered labels,
or sources that never provisioned a key — are discarded, which is the
paper's defence against injection through illegitimate channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.crypto.aead import new_aead
from repro.data.encryption import EncryptedDataset, decrypt_record
from repro.enclave.attestation import AttestationService
from repro.enclave.enclave import Enclave
from repro.enclave.platform import SgxPlatform
from repro.errors import (AuthenticationError, DuplicateSubmissionError,
                          ProvisioningError, TrainingError)
from repro.federation.provisioning import (
    install_provisioning_ecalls,
    provisioned_key,
)
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream

__all__ = ["DecryptionSummary", "TrainingServer"]

_LOG = get_logger("federation.server")


@dataclass
class DecryptionSummary:
    """Outcome of in-enclave authentication + decryption."""

    accepted: int = 0
    rejected_unregistered: int = 0
    rejected_tampered: int = 0
    accepted_by_source: Dict[str, int] = field(default_factory=dict)


def _ecall_decrypt_datasets(enclave: Enclave, datasets: List[EncryptedDataset],
                            cipher: str) -> DecryptionSummary:
    """Trusted: authenticate, decrypt and stage all submitted records."""
    images: List[np.ndarray] = []
    labels: List[int] = []
    sources: List[str] = []
    indices: List[int] = []
    summary = DecryptionSummary()
    for dataset in datasets:
        try:
            key_material = provisioned_key(enclave, dataset.source_id)
        except ProvisioningError:
            summary.rejected_unregistered += len(dataset.records)
            _LOG.warning(
                "discarding %d records from unregistered source %r",
                len(dataset.records), dataset.source_id,
            )
            continue
        aead = new_aead(key_material, cipher=cipher)
        for record in dataset.records:
            try:
                image, label = decrypt_record(record, aead)
            except AuthenticationError:
                summary.rejected_tampered += 1
                continue
            images.append(image)
            labels.append(label)
            sources.append(record.source_id)
            indices.append(record.index)
            summary.accepted += 1
            summary.accepted_by_source[record.source_id] = (
                summary.accepted_by_source.get(record.source_id, 0) + 1
            )
    if summary.accepted:
        x = np.stack(images).astype(np.float32)
        y = np.asarray(labels, dtype=np.int64)
        enclave.trusted_put("training/x", x, nbytes=x.nbytes)
        enclave.trusted_put("training/y", y, nbytes=y.nbytes)
        enclave.trusted_put("training/sources", sources)
        enclave.trusted_put("training/indices", np.asarray(indices))
    return summary


class TrainingServer:
    """Hosts the training enclave and stages the encrypted submissions."""

    def __init__(self, platform: SgxPlatform,
                 attestation_service: AttestationService,
                 rng: RngStream) -> None:
        self.platform = platform
        self.attestation_service = attestation_service
        self.rng = rng
        self.enclave: Optional[Enclave] = None
        self._submissions: List[EncryptedDataset] = []
        attestation_service.register_platform(
            platform.platform_id, platform.platform_key
        )

    # -- enclave lifecycle -------------------------------------------------------

    def build_training_enclave(self, network_config: str,
                               hyperparameters: Optional[dict] = None,
                               name: str = "training-enclave") -> Enclave:
        """ECREATE + EADD + EINIT the training enclave.

        The network architecture config and hyperparameters are measured
        into MRENCLAVE, so participants validating the quote are validating
        the exact training procedure they agreed on (paper, Section III).
        """
        from repro.ingest.validate import install_ingest_ecalls

        enclave = self.platform.create_enclave(name)
        install_provisioning_ecalls(enclave)
        install_ingest_ecalls(enclave)
        enclave.add_code("decrypt_datasets", _ecall_decrypt_datasets)
        enclave.add_data("network-config", network_config,
                         nbytes=len(network_config))
        enclave.add_data("hyperparameters", hyperparameters or {})
        enclave.init()
        self.enclave = enclave
        return enclave

    # -- data intake ----------------------------------------------------------------

    def submit(self, encrypted_dataset: EncryptedDataset) -> None:
        """Accept one participant's encrypted submission (legit channel).

        Duplicate submissions from the same source — and datasets whose
        record indices collide — are rejected at the transport layer:
        re-playing a dataset (or one record inside it) would double an
        instance's weight in training (a cheap influence attack even
        without forging a single record).
        """
        if any(
            existing.source_id == encrypted_dataset.source_id
            for existing in self._submissions
        ):
            raise DuplicateSubmissionError(
                f"source {encrypted_dataset.source_id!r} already submitted "
                "(replayed submissions are rejected)"
            )
        seen: set = set()
        collisions: set = set()
        for record in encrypted_dataset.records:
            (collisions if record.index in seen else seen).add(record.index)
        if collisions:
            raise DuplicateSubmissionError(
                f"submission from {encrypted_dataset.source_id!r} carries "
                f"colliding record indices {sorted(collisions)[:5]} "
                "(replayed records are rejected)"
            )
        self._submissions.append(encrypted_dataset)

    @property
    def submissions(self) -> Tuple[EncryptedDataset, ...]:
        """The still-encrypted submissions staged so far (read-only)."""
        return tuple(self._submissions)

    def replace_submissions(self,
                            datasets: List[EncryptedDataset]) -> None:
        """Swap in a new submission set (distributed shard assignment).

        The coordinator re-shards encrypted submissions across workers
        when a shard moves (initial distribution, blacklist
        reassignment). Every dataset passes the same duplicate/collision
        gates as :meth:`submit` — re-sharding must not become a replay
        loophole.
        """
        self._submissions = []
        for dataset in datasets:
            self.submit(dataset)

    def from_ledger(self, ledger) -> int:
        """Stage every validated ledger record for training.

        This is the production intake path: instead of per-participant
        in-memory submissions, training consumes the committed lane of a
        :class:`~repro.ingest.ledger.ContributionLedger` — records that
        already passed the attestation-gated gateway and the validation
        pipeline. The ledger's segment digests are re-verified
        (fail-closed) before anything is staged; quarantined records are
        never read. Returns the number of records staged.
        """
        ledger.verify()
        by_source: Dict[str, List] = {}
        for record in ledger.iter_records():
            by_source.setdefault(record.source_id, []).append(record)
        staged = 0
        for source_id in sorted(by_source):
            self.submit(EncryptedDataset(source_id=source_id,
                                         records=by_source[source_id]))
            staged += len(by_source[source_id])
        _LOG.info("staged %d ledger records from %d contributors",
                  staged, len(by_source))
        return staged

    def decrypt_submissions(self, cipher: str = "hmac-ctr") -> DecryptionSummary:
        """Authenticate + decrypt everything submitted, inside the enclave."""
        if self.enclave is None:
            raise TrainingError("build_training_enclave() must run first")
        payload = sum(
            len(r.sealed) for ds in self._submissions for r in ds.records
        )
        return self.enclave.ecall(
            "decrypt_datasets", self._submissions, cipher, payload_bytes=payload
        )

    def staged_training_data(self) -> Tuple[np.ndarray, np.ndarray, List[str], np.ndarray]:
        """Trusted-side accessor for the staged plaintext training data."""
        if self.enclave is None or not self.enclave.trusted_has("training/x"):
            raise TrainingError("no decrypted training data staged")
        return (
            self.enclave.trusted_get("training/x"),
            self.enclave.trusted_get("training/y"),
            self.enclave.trusted_get("training/sources"),
            self.enclave.trusted_get("training/indices"),
        )
