"""Collaborative-learning substrate.

The centralized CalTrain paradigm (participants, secret provisioning into
the training enclave, the training server) plus the *distributed*
collaborative-learning baselines the paper contrasts with: Federated
Averaging (McMahan et al.) and distributed selective SGD (Shokri &
Shmatikov), and the hierarchical multi-enclave learning-hub extension.
"""

from repro.federation.dssgd import DistributedSelectiveSgd
from repro.federation.fedavg import FedAvgTrainer
from repro.federation.hubs import HubAggregator, LearningHub
from repro.federation.participant import TrainingParticipant
from repro.federation.provisioning import install_provisioning_ecalls, provision_key
from repro.federation.secure_agg import (
    SecureAggregationClient,
    aggregate,
    recover_dropout,
    run_secure_aggregation,
)
from repro.federation.server import DecryptionSummary, TrainingServer

__all__ = [
    "TrainingParticipant",
    "install_provisioning_ecalls",
    "provision_key",
    "TrainingServer",
    "DecryptionSummary",
    "FedAvgTrainer",
    "DistributedSelectiveSgd",
    "LearningHub",
    "HubAggregator",
    "SecureAggregationClient",
    "aggregate",
    "recover_dropout",
    "run_secure_aggregation",
]
