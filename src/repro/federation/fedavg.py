"""Federated Averaging (McMahan et al.) — the distributed baseline.

The paper's motivation: in federated learning the training data stay
invisible to everyone but their owner, so a malicious participant can feed
poisoned updates and nobody can trace the resulting misbehaviour back. This
baseline exists (a) for accuracy comparisons against centralized CalTrain
training and (b) to demonstrate that poisoning through a federated client
succeeds and is unattributable, which the accountability benches contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.batching import iterate_minibatches
from repro.data.datasets import Dataset
from repro.errors import ConfigurationError
from repro.nn.network import Network
from repro.nn.optimizers import Sgd
from repro.utils.rng import RngStream

__all__ = ["FedAvgRound", "FedAvgTrainer", "average_weights"]


def average_weights(weight_sets: Sequence[List[Dict[str, np.ndarray]]],
                    sizes: Optional[Sequence[int]] = None) -> List[Dict[str, np.ndarray]]:
    """Size-weighted elementwise average of per-client weight lists."""
    if not weight_sets:
        raise ConfigurationError("nothing to average")
    if sizes is None:
        sizes = [1] * len(weight_sets)
    total = float(sum(sizes))
    averaged: List[Dict[str, np.ndarray]] = []
    for layer_idx in range(len(weight_sets[0])):
        layer_avg: Dict[str, np.ndarray] = {}
        for name in weight_sets[0][layer_idx]:
            layer_avg[name] = sum(
                ws[layer_idx][name] * (size / total)
                for ws, size in zip(weight_sets, sizes)
            )
        averaged.append(layer_avg)
    return averaged


@dataclass
class FedAvgRound:
    round_index: int
    participating: List[int]
    loss: float


class FedAvgTrainer:
    """Iterative model averaging over distributed clients.

    Args:
        model_factory: Builds a fresh network (same architecture) — used
            once for the global model and per-client for local copies.
        client_datasets: One private dataset per client.
        client_fraction: Fraction of clients sampled each round.
        local_epochs: Local passes per selected client per round.
    """

    def __init__(self, model_factory: Callable[[], Network],
                 client_datasets: Sequence[Dataset], rng: RngStream,
                 client_fraction: float = 1.0, local_epochs: int = 1,
                 batch_size: int = 32, learning_rate: float = 0.05,
                 momentum: float = 0.9) -> None:
        if not client_datasets:
            raise ConfigurationError("FedAvg needs at least one client")
        if not 0.0 < client_fraction <= 1.0:
            raise ConfigurationError("client_fraction must be in (0, 1]")
        self.model_factory = model_factory
        self.client_datasets = list(client_datasets)
        self.rng = rng
        self.client_fraction = client_fraction
        self.local_epochs = local_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.global_model = model_factory()
        self.history: List[FedAvgRound] = []

    def _client_update(self, client_idx: int, round_idx: int) -> tuple:
        dataset = self.client_datasets[client_idx]
        local = self.model_factory()
        local.set_weights(self.global_model.get_weights())
        local.set_dropout_rng(
            self.rng.child(f"dropout/{round_idx}/{client_idx}").generator
        )
        optimizer = Sgd(self.learning_rate, self.momentum)
        batch_rng = self.rng.child(f"batches/{round_idx}/{client_idx}").generator
        losses = []
        for _ in range(self.local_epochs):
            for xb, yb in iterate_minibatches(dataset.x, dataset.y,
                                              self.batch_size, rng=batch_rng):
                losses.append(local.train_batch(xb, yb, optimizer))
        return local.get_weights(), len(dataset), float(np.mean(losses))

    def run_round(self, round_idx: int) -> FedAvgRound:
        """One round: sample clients, local training, weighted averaging."""
        n_clients = len(self.client_datasets)
        count = max(1, int(round(self.client_fraction * n_clients)))
        chooser = self.rng.child(f"select/{round_idx}").generator
        selected = sorted(chooser.choice(n_clients, size=count, replace=False))
        updates, sizes, losses = [], [], []
        for client_idx in selected:
            weights, size, loss = self._client_update(client_idx, round_idx)
            updates.append(weights)
            sizes.append(size)
            losses.append(loss)
        self.global_model.set_weights(average_weights(updates, sizes))
        record = FedAvgRound(round_index=round_idx, participating=list(selected),
                             loss=float(np.mean(losses)))
        self.history.append(record)
        return record

    def train(self, rounds: int) -> Network:
        for round_idx in range(rounds):
            self.run_round(round_idx)
        return self.global_model
