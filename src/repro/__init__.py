"""CalTrain: confidential and accountable collaborative learning.

A full reproduction of *"Reaching Data Confidentiality and Model
Accountability on the CalTrain"* (Gu et al., DSN 2019): TEE-protected
centralized collaborative training with FrontNet/BackNet partitioning,
per-epoch information-exposure assessment, and fingerprint-based model
accountability.

See ``examples/quickstart.py`` for a complete runnable walkthrough.
"""

__version__ = "1.0.0"

from repro.core import (
    CalTrain,
    CalTrainConfig,
    ExposureAssessor,
    Fingerprinter,
    Investigator,
    LinkageDatabase,
    LinkageRecord,
    PartitionedNetwork,
    QueryService,
)

__all__ = [
    "__version__",
    "CalTrain",
    "CalTrainConfig",
    "PartitionedNetwork",
    "ExposureAssessor",
    "Fingerprinter",
    "Investigator",
    "LinkageDatabase",
    "LinkageRecord",
    "QueryService",
]
