"""Exception hierarchy for the CalTrain reproduction.

Every subsystem raises subclasses of :class:`CalTrainError` so callers can
catch failures at the granularity they care about (a whole pipeline, one
subsystem, or one specific condition such as a failed authentication tag).
"""

from __future__ import annotations


class CalTrainError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(CalTrainError):
    """A component was constructed or configured with invalid parameters."""


class CryptoError(CalTrainError):
    """Base class for failures in the cryptographic substrate."""


class AuthenticationError(CryptoError):
    """An AEAD authentication tag or MAC did not verify.

    In CalTrain this is the signal that a training batch was forged,
    corrupted in transit, or injected from an unregistered source; the
    training server discards such batches (paper, Section IV-A).
    """


class HandshakeError(CryptoError):
    """A TLS-like secure-channel handshake failed or was misused."""


class AggregationError(CryptoError):
    """Secure aggregation could not produce an exact, unbiased sum.

    Raised fail-closed whenever a cohort member is unaccounted for, a
    declared dropout's masks cannot be reconstructed from enough escrowed
    Shamir shares, or reconstruction yields a key that contradicts the
    cohort directory. Silently summing in any of these states would leave
    orphaned pairwise masks in the aggregate — a biased model update that
    no caller can detect after the fact."""


class EnclaveError(CalTrainError):
    """Base class for failures in the SGX enclave simulator."""


class EnclaveLifecycleError(EnclaveError):
    """An enclave operation was attempted in the wrong lifecycle state."""


class EnclaveMemoryError(EnclaveError):
    """The Enclave Page Cache could not satisfy an allocation."""


class EnclaveAbort(EnclaveError):
    """The enclave was torn down out from under its host process.

    SGX enclaves die without warning on EPC eviction under memory
    pressure, power transitions, and microcode updates; every secret and
    all in-enclave state are lost and the enclave must be re-created and
    re-attested before work can continue."""


class EpcPressureError(EnclaveMemoryError):
    """EPC paging escalated into an enclave-fatal thrashing storm."""


class TransferIntegrityError(EnclaveError):
    """An IR or delta tensor failed its transfer checksum while crossing
    the enclave boundary (corruption in the untrusted copy path)."""


class AttestationError(EnclaveError):
    """A remote-attestation quote failed verification."""


class SealingError(EnclaveError):
    """Sealed data could not be unsealed (wrong identity or tampered blob)."""


class NetworkDefinitionError(CalTrainError):
    """A neural-network architecture definition is malformed."""


class ShapeError(NetworkDefinitionError):
    """Tensor shapes do not line up between consecutive layers."""


class TrainingError(CalTrainError):
    """Training-time failure (divergence, bad batch, misuse of the API)."""


class DuplicateSubmissionError(TrainingError):
    """A source re-submitted a dataset, or a dataset carries colliding
    record indices — either would silently double records' weight in
    training, so both are rejected at the transport layer."""


class PartitionError(CalTrainError):
    """A FrontNet/BackNet partition point is invalid for the network."""


class ProvisioningError(CalTrainError):
    """Secret or data provisioning to the training enclave failed."""


class LinkageError(CalTrainError):
    """The fingerprint linkage database rejected an operation."""


class QueryError(CalTrainError):
    """A misprediction accountability query could not be answered."""


class QueryRejected(QueryError):
    """The serving engine refused a query because it is overloaded.

    Raised at submission time when the bounded request queue is full, so
    callers get typed backpressure instead of silently dropped queries.
    ``retry_after_s`` (when not ``None``) is the server's backoff hint —
    derived from the current queue depth and the worker poll interval —
    so callers and the cluster router can wait exactly as long as the
    backlog warrants instead of guessing.
    """

    def __init__(self, message: str, retry_after_s: "float | None" = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class StaleIndexError(QueryError):
    """The index's committed history diverged from the store it serves.

    With the incremental segment index, benign growth no longer raises
    this — a query pins the generation it started on and ingest appends
    are adopted by ``refresh()``. It is reserved for *genuine* digest
    mismatch: a store segment the index already covers no longer matches
    the digest it was built against (history rewrite, not growth), so
    the index fails closed and the cluster evicts the replica."""


class ServingError(CalTrainError):
    """Base class for failures in the query-serving subsystem."""


class StoreError(ServingError):
    """The persistent linkage store rejected an operation or failed an
    integrity check against its content-addressed segment digests."""


class CompactionCrash(ServingError):
    """Injected (or real) failure of a background compaction step.

    Raised after a merged segment is built but before the new generation
    is adopted — the atomicity window fault drills exercise. The live
    generation must be unaffected."""


class IndexIntegrityError(ServingError):
    """A served answer (or a replica's index shard) disagrees with the
    authoritative linkage store — a hit whose recomputed distance does
    not match, or a shard matrix whose checksum drifted from its build.
    The answer is discarded and the replica is evicted fail-closed."""


class ClusterError(ServingError):
    """Base class for failures in the replicated serving cluster."""


class DeadlineExceeded(ClusterError):
    """A query's end-to-end deadline expired before any replica (or the
    degraded fallback) produced a verified answer."""


class NoHealthyReplica(ClusterError):
    """Every replica is evicted or circuit-broken and degraded serving
    is disabled (or itself failed verification) — the cluster refuses
    rather than serve unverifiable answers."""


class IngestError(CalTrainError):
    """Base class for failures in the data-ingestion subsystem."""


class UploadRejected(IngestError):
    """The ingest gateway refused work because of backpressure, a
    per-contributor quota, or rate limiting.

    Raised at submission time (mirroring :class:`QueryRejected` on the
    serving plane) so contributors get typed backpressure and can retry
    with backoff instead of having chunks silently dropped."""


class TransferError(IngestError):
    """A chunked upload violated the transfer protocol: an out-of-order
    chunk, a digest conflict on a replayed sequence number, or records
    whose nonces were already journaled."""


class LedgerError(IngestError):
    """The contribution ledger rejected an operation or failed an
    integrity check against its content-addressed segment digests."""


class ResilienceError(CalTrainError):
    """Base class for failures in the fault-tolerant training runtime."""


class CheckpointError(ResilienceError):
    """A checkpoint is torn, tampered with, or bound to a different
    enclave identity/architecture than the one trying to restore it."""


class CheckpointWriteCrash(CheckpointError):
    """A (possibly injected) crash interrupted a checkpoint write; the
    partial checkpoint must never be trusted on recovery."""


class TrainingAborted(ResilienceError):
    """The supervised training runtime exhausted its retry budget and
    failed closed rather than continue on unverifiable state."""


class GovernanceError(CalTrainError):
    """Base class for failures in the accountability control plane."""


class GovernanceLogError(GovernanceError):
    """The governance event log is truncated, bit-flipped, or its chain
    head sidecar disagrees with the entries on disk — the accountability
    record can no longer be trusted and every gated operation must fail
    closed."""


class PromotionError(GovernanceError):
    """A model's lineage did not verify end-to-end (ledger manifest →
    checkpoint chain → linkage-store snapshot), its promotion record is
    missing or forged, or the artifacts changed after promotion. The
    serving plane refuses to load such a model."""


class AttributionError(GovernanceError):
    """A contributor-attribution report could not be assembled with a
    complete, chain-verified evidence path — a linkage hit that resolves
    to no committed ledger record, a quarantined contributor in the
    evidence chain, or a governance log that fails verification."""


class DistributedError(CalTrainError):
    """Base class for failures in the multi-enclave training runtime."""


class ChannelIntegrityError(DistributedError):
    """A record crossing an attested worker/aggregator channel failed its
    boundary checksum after the AEAD layer opened it — corruption in the
    untrusted marshalling path between the enclave boundary and the
    channel, detected before the payload could poison aggregation."""


class WorkerFault(DistributedError):
    """One enclave worker failed mid-round and was excluded from the
    round's aggregate (crash, corrupted channel record, or a straggle
    past the deadline). The round itself continues via partial
    aggregation; only the worker is at fault."""


class RoundAborted(DistributedError):
    """A distributed training round could not complete safely: no worker
    survived to aggregate, replicas diverged, or dropout masks could not
    be reconstructed. The coordinator fails closed rather than publish a
    biased or inconsistent model update."""
