"""`repro.serving` — the production-scale accountability query plane.

The paper's accountability workflow ends in a runtime query stage: every
misprediction triggers a same-class nearest-fingerprint search over the
Omega = [F, Y, S, H] linkage database. :mod:`repro.core.query` implements
that stage faithfully but as a single-process, in-memory service. This
package grows it into a serving subsystem that can absorb heavy traffic:

* :mod:`repro.serving.store` — a persistent, versioned, append-only
  segment store with memory-mapped fingerprint matrices and
  content-addressed segment digests. The manifest digest is sealable via
  :mod:`repro.enclave.sealing`, so the fingerprinting enclave can attest
  exactly what the out-of-enclave index serves (the Citadel-style narrow
  attested interface between enclave and bulk data plane).
* :mod:`repro.serving.segments` — immutable, content-addressed index
  segments (LSM-style): each covers a contiguous run of store segments
  and is identified by a digest over the covered store digests plus the
  build parameters; a generation of segments commits to one
  ``index-snapshot`` digest and answers with snapshot isolation.
* :mod:`repro.serving.index` — a per-label sharded ANN index over a
  generation of segments: coarse k-means bucketing with exact L2
  re-ranking. In its default (exact) mode, triangle-inequality bounds
  guarantee top-k results identical to brute force; a probing mode
  trades a documented recall floor for speed. Store growth is adopted
  incrementally (:meth:`ShardedAnnIndex.refresh` builds segments only
  for new store segments) and a background merge/compaction thread
  bounds segment fan-out.
* :mod:`repro.serving.engine` — a query engine with micro-batching, an
  LRU result cache, a worker pool, bounded-queue backpressure (typed
  :class:`~repro.errors.QueryRejected` on overload), and a hash-chained
  audit trail so every forensic query is itself accountable.
* :mod:`repro.serving.telemetry` — per-stage latency / hit-rate /
  occupancy counters for the whole plane.
* :mod:`repro.serving.cluster` — the self-healing replicated layer:
  N engine replicas over one sealed store, fronted by a router with
  per-request deadlines, jittered-backoff retry, p99-triggered hedging,
  per-replica circuit breakers, load shedding, per-answer verification
  against the store, background eviction/revival, and an audited exact
  brute-force degraded mode.
"""

from repro.serving.cluster import (CircuitBreaker, ClusterConfig,
                                   ClusterResult, ServingCluster,
                                   ServingReplica)
from repro.serving.engine import EngineAnswer, EngineConfig, ServingEngine
from repro.serving.index import IndexHit, ShardedAnnIndex
from repro.serving.segments import (IndexGeneration, IndexSegment,
                                    SegmentBuildParams, ShardSearchResult,
                                    generation_lineage_error, merge_segments,
                                    plan_merge)
from repro.serving.store import LinkageStore, SegmentInfo
from repro.serving.telemetry import ClusterTelemetry, ServingTelemetry

__all__ = [
    "EngineAnswer",
    "EngineConfig",
    "ServingEngine",
    "IndexHit",
    "ShardedAnnIndex",
    "IndexGeneration",
    "IndexSegment",
    "SegmentBuildParams",
    "ShardSearchResult",
    "generation_lineage_error",
    "merge_segments",
    "plan_merge",
    "LinkageStore",
    "SegmentInfo",
    "ServingTelemetry",
    "ClusterTelemetry",
    "ClusterConfig",
    "ClusterResult",
    "CircuitBreaker",
    "ServingCluster",
    "ServingReplica",
]
