"""Persistent, versioned on-disk linkage store.

The in-memory :class:`~repro.core.linkage.LinkageDatabase` holds every
Omega tuple as a Python object — fine for the paper's experiments, fatal
at millions of fingerprints. :class:`LinkageStore` keeps the bulk data on
disk instead:

* **append-only segments** — every :meth:`LinkageStore.append` writes one
  immutable segment: a fingerprint matrix (``.npy``, reopened
  memory-mapped) plus a canonical-JSON metadata sidecar with the labels,
  sources, instance digests, source indices, and kinds;
* **content addressing** — each segment is identified by a SHA-256 digest
  over its matrix and metadata; the manifest lists segments in order and
  the whole store state is committed by :meth:`manifest_digest`;
* **sealing boundary** — the fingerprinting enclave can seal the manifest
  digest to its identity (:meth:`seal_manifest`), so a verifier can later
  check that the out-of-enclave serving plane answers queries from
  exactly the database the enclave produced (:meth:`verify_sealed_manifest`).

Integrity checks are fail-closed: :meth:`verify` raises
:class:`~repro.errors.StoreError` on the first digest mismatch.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.errors import SealingError, StoreError
from repro.utils.fileio import atomic_write_text
from repro.utils.serialization import (canonical_digest, canonical_json,
                                       stable_hash)

__all__ = ["SegmentInfo", "LinkageStore"]

_MANIFEST = "manifest.json"
_FORMAT = 1


@dataclass(frozen=True)
class SegmentInfo:
    """One manifest entry: an immutable, content-addressed segment."""

    name: str
    records: int
    digest: str  # hex SHA-256 over (fingerprint matrix, metadata JSON)


class _Segment:
    """A loaded segment: memory-mapped matrix plus decoded metadata."""

    def __init__(self, info: SegmentInfo, fingerprints: np.ndarray,
                 meta: Dict[str, list], offset: int) -> None:
        self.info = info
        self.fingerprints = fingerprints  # (n, d) float32, usually a memmap
        self.labels = np.asarray(meta["labels"], dtype=np.int64)
        self.sources: List[str] = meta["sources"]
        self.digests: List[str] = meta["digests"]
        self.source_indices: List[int] = meta["source_indices"]
        self.kinds: List[str] = meta["kinds"]
        self.offset = offset  # global index of this segment's first record


class LinkageStore:
    """Append-only segment store for Omega tuples, mmap-backed for queries.

    Use :meth:`create` to start a store, :meth:`open` to load one, and
    :meth:`append` to add records; already-written segments are never
    modified. ``version`` increases by one per append, so index layers can
    cheaply detect growth.
    """

    def __init__(self, path: Path, manifest: dict,
                 segments: List[_Segment]) -> None:
        self.path = path
        self._manifest = manifest
        self._segments = segments
        self._offsets = [s.offset for s in segments]
        self._by_label: Dict[int, List[Tuple[int, int]]] = {}
        # Serialises append against concurrent readers: the incremental
        # index refreshes while the serving plane keeps answering, so
        # `_segments`/`_offsets` must never be observed mid-append.
        self._lock = threading.RLock()
        for seg_pos, segment in enumerate(segments):
            self._index_segment(seg_pos, segment)

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(cls, path: os.PathLike) -> "LinkageStore":
        """Initialise an empty store at ``path`` (created if missing)."""
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        if (root / _MANIFEST).exists():
            raise StoreError(f"a linkage store already exists at {root}")
        manifest = {"format": _FORMAT, "version": 0, "dimension": None,
                    "segments": []}
        store = cls(root, manifest, [])
        store._write_manifest()
        return store

    @classmethod
    def open(cls, path: os.PathLike, verify: bool = True) -> "LinkageStore":
        """Load a store, memory-mapping every segment matrix.

        ``verify=True`` (the default) recomputes every segment digest
        against the manifest before serving anything — fail-closed.
        """
        root = Path(path)
        manifest_path = root / _MANIFEST
        if not manifest_path.exists():
            raise StoreError(f"no linkage store at {root}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != _FORMAT:
            raise StoreError(
                f"unsupported store format {manifest.get('format')!r}"
            )
        segments: List[_Segment] = []
        offset = 0
        for entry in manifest["segments"]:
            info = SegmentInfo(name=entry["name"], records=entry["records"],
                               digest=entry["digest"])
            segment = cls._load_segment(root, info, offset)
            segments.append(segment)
            offset += info.records
        store = cls(root, manifest, segments)
        if verify:
            store.verify()
        return store

    @classmethod
    def _load_segment(cls, root: Path, info: SegmentInfo,
                      offset: int) -> _Segment:
        matrix_path = root / f"{info.name}.npy"
        meta_path = root / f"{info.name}.meta.json"
        if not matrix_path.exists() or not meta_path.exists():
            raise StoreError(f"segment {info.name} is missing on disk")
        fingerprints = np.load(matrix_path, mmap_mode="r")
        meta = json.loads(meta_path.read_text())
        if fingerprints.shape[0] != info.records:
            raise StoreError(
                f"segment {info.name} has {fingerprints.shape[0]} rows, "
                f"manifest says {info.records}"
            )
        return _Segment(info, fingerprints, meta, offset)

    def _index_segment(self, seg_pos: int, segment: _Segment) -> None:
        for row, label in enumerate(segment.labels):
            self._by_label.setdefault(int(label), []).append((seg_pos, row))

    def _write_manifest(self) -> None:
        payload = json.dumps(self._manifest, indent=2, sort_keys=True)
        atomic_write_text(self.path / _MANIFEST, payload)

    # -- writes ------------------------------------------------------------------

    def append(self, fingerprints: np.ndarray, labels: Sequence[int],
               sources: Sequence[str], digests: Sequence[bytes],
               source_indices: Optional[Sequence[int]] = None,
               kinds: Optional[Sequence[str]] = None) -> SegmentInfo:
        """Write one immutable segment; returns its manifest entry."""
        matrix = np.ascontiguousarray(
            np.asarray(fingerprints, dtype=np.float32)
        )
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise StoreError("a segment needs a non-empty (n, d) matrix")
        n = matrix.shape[0]
        if not (len(labels) == len(sources) == len(digests) == n):
            raise StoreError("segment columns have mismatched lengths")
        if source_indices is not None and len(source_indices) != n:
            raise StoreError(
                f"source_indices has {len(source_indices)} entries "
                f"for {n} records"
            )
        if kinds is not None and len(kinds) != n:
            raise StoreError(f"kinds has {len(kinds)} entries for {n} records")
        with self._lock:
            dimension = self._manifest["dimension"]
            if dimension is None:
                self._manifest["dimension"] = int(matrix.shape[1])
            elif matrix.shape[1] != dimension:
                raise StoreError(
                    f"fingerprint dimension {matrix.shape[1]} does not match "
                    f"store dimension {dimension}"
                )
        meta = {
            "labels": [int(label) for label in labels],
            "sources": [str(s) for s in sources],
            "digests": [bytes(d).hex() for d in digests],
            "source_indices": (
                [int(i) for i in source_indices]
                if source_indices is not None else [-1] * n
            ),
            "kinds": [str(k) for k in kinds] if kinds is not None
                     else ["normal"] * n,
        }
        meta_bytes = canonical_json(meta)
        with self._lock:
            name = f"segment-{len(self._segments):06d}"
            np.save(self.path / f"{name}.npy", matrix)
            (self.path / f"{name}.meta.json").write_bytes(meta_bytes)
            info = SegmentInfo(
                name=name, records=n,
                digest=stable_hash(matrix, meta_bytes).hex(),
            )
            self._manifest["segments"].append(
                {"name": info.name, "records": info.records,
                 "digest": info.digest}
            )
            self._manifest["version"] += 1
            self._write_manifest()
            offset = len(self)
            segment = self._load_segment(self.path, info, offset)
            self._segments.append(segment)
            self._offsets.append(offset)
            self._index_segment(len(self._segments) - 1, segment)
        return info

    @classmethod
    def from_database(cls, path: os.PathLike, database: LinkageDatabase,
                      segment_records: int = 65536) -> "LinkageStore":
        """Persist an in-memory database, chunked into segments."""
        store = cls.create(path)
        records = database.records()
        for start in range(0, len(records), segment_records):
            chunk = records[start : start + segment_records]
            store.append(
                np.stack([r.fingerprint for r in chunk]).astype(np.float32),
                [r.label for r in chunk],
                [r.source for r in chunk],
                [r.digest for r in chunk],
                source_indices=[r.source_index for r in chunk],
                kinds=[r.kind for r in chunk],
            )
        return store

    # -- reads -------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return sum(s.info.records for s in self._segments)

    @property
    def version(self) -> int:
        return self._manifest["version"]

    @property
    def dimension(self) -> Optional[int]:
        return self._manifest["dimension"]

    @property
    def segments(self) -> List[SegmentInfo]:
        with self._lock:
            return [s.info for s in self._segments]

    @property
    def segment_count(self) -> int:
        """Committed segment count — the cheap form of
        ``len(segment_digests())`` for per-query scale checks."""
        with self._lock:
            return len(self._segments)

    def segment_digests(self) -> List[str]:
        """Ordered hex digests of every committed segment — the store's
        authoritative history prefix, read atomically."""
        with self._lock:
            return [s.info.digest for s in self._segments]

    def segment_slice(self, start: int, stop: int
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                 List[str]]:
        """Rows of store segments ``[start, stop)`` for index builds.

        Returns ``(matrix, labels, global_indices, digests)`` with rows
        in commit order — global indices ascend, so per-label slices
        preserve the insertion-order tie-break the index depends on.
        """
        with self._lock:
            segs = list(self._segments[start:stop])
        if len(segs) != stop - start:
            raise StoreError(
                f"segment slice [{start}, {stop}) exceeds the "
                f"{start + len(segs)} committed segments"
            )
        if not segs:
            dim = self.dimension or 0
            return (np.zeros((0, dim), dtype=np.float32),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64), [])
        matrix = np.concatenate([
            np.ascontiguousarray(np.asarray(s.fingerprints, dtype=np.float32))
            for s in segs
        ])
        labels = np.concatenate([s.labels for s in segs])
        indices = np.concatenate([
            np.arange(s.offset, s.offset + s.info.records, dtype=np.int64)
            for s in segs
        ])
        return matrix, labels, indices, [s.info.digest for s in segs]

    def labels(self) -> List[int]:
        with self._lock:
            return sorted(self._by_label)

    def count(self, label: int) -> int:
        with self._lock:
            return len(self._by_label.get(int(label), []))

    def by_label(self, label: int) -> Tuple[np.ndarray, List[int]]:
        """(fingerprint matrix, global record indices) for one label.

        Rows are gathered from the memory-mapped segments in insertion
        order, matching :meth:`LinkageDatabase.by_label` semantics.
        """
        with self._lock:
            locations = list(self._by_label.get(int(label), []))
            segments = list(self._segments)
        if not locations:
            return np.zeros((0, self.dimension or 0), dtype=np.float32), []
        matrix = np.empty((len(locations), self.dimension), dtype=np.float32)
        indices: List[int] = []
        for out_row, (seg_pos, row) in enumerate(locations):
            segment = segments[seg_pos]
            matrix[out_row] = segment.fingerprints[row]
            indices.append(segment.offset + row)
        return matrix, indices

    def fingerprint_at(self, index: int) -> np.ndarray:
        """One fingerprint row by global index, straight off the mmap.

        Much cheaper than :meth:`record` (no metadata decode, no
        LinkageRecord construction) — this is the authoritative-read
        primitive the cluster router uses to re-verify every served
        hit's distance against the store the enclave sealed.
        """
        with self._lock:
            if not 0 <= index < len(self):
                raise StoreError(f"record index {index} out of range")
            seg_pos = bisect.bisect_right(self._offsets, index) - 1
            segment = self._segments[seg_pos]
        return np.asarray(segment.fingerprints[index - segment.offset],
                          dtype=np.float32)

    def fingerprints_at(self, indices: Sequence[int]) -> np.ndarray:
        """Many fingerprint rows by global index, one gather per segment.

        The batched form of :meth:`fingerprint_at`: the cluster router
        re-verifies every hit of a whole ``query_many`` batch in a
        single vectorised pass, so the per-row bisect/copy cost of the
        scalar primitive would dominate the routing overhead budget.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return np.zeros((0, self.dimension or 0), dtype=np.float32)
        with self._lock:
            offsets = list(self._offsets)
            segments = list(self._segments)
            total = sum(s.info.records for s in segments)
        if int(idx.min()) < 0 or int(idx.max()) >= total:
            raise StoreError("record index out of range")
        out = np.empty((idx.size, self.dimension), dtype=np.float32)
        seg_pos = np.searchsorted(offsets, idx, side="right") - 1
        for pos in np.unique(seg_pos):
            segment = segments[pos]
            mask = seg_pos == pos
            out[mask] = np.asarray(segment.fingerprints, dtype=np.float32)[
                idx[mask] - segment.offset]
        return out

    def record(self, index: int) -> LinkageRecord:
        """Materialise one Omega tuple by its global record index."""
        with self._lock:
            if not 0 <= index < len(self):
                raise StoreError(f"record index {index} out of range")
            seg_pos = bisect.bisect_right(self._offsets, index) - 1
            segment = self._segments[seg_pos]
        row = index - segment.offset
        return LinkageRecord(
            fingerprint=np.array(segment.fingerprints[row], dtype=np.float32),
            label=int(segment.labels[row]),
            source=segment.sources[row],
            digest=bytes.fromhex(segment.digests[row]),
            source_index=segment.source_indices[row],
            kind=segment.kinds[row],
        )

    def to_database(self) -> LinkageDatabase:
        """Load the whole store back into an in-memory database."""
        database = LinkageDatabase()
        for index in range(len(self)):
            database.add(self.record(index))
        return database

    # -- integrity and the sealing boundary --------------------------------------

    def verify(self) -> bool:
        """Recompute every segment digest from disk bytes; fail-closed."""
        with self._lock:
            segments = list(self._segments)
        for segment in segments:
            matrix = np.ascontiguousarray(
                np.asarray(segment.fingerprints, dtype=np.float32)
            )
            meta_bytes = (
                self.path / f"{segment.info.name}.meta.json"
            ).read_bytes()
            actual = stable_hash(matrix, meta_bytes).hex()
            if actual != segment.info.digest:
                raise StoreError(
                    f"segment {segment.info.name} failed its digest check "
                    f"(tampered or corrupted)"
                )
        return True

    def manifest_digest(self) -> bytes:
        """A content address for the entire store state.

        Commits to the ordered segment digests, the dimension, and the
        version — two stores with the same manifest digest serve
        byte-identical fingerprint data.
        """
        with self._lock:
            return canonical_digest({
                "format": self._manifest["format"],
                "version": self._manifest["version"],
                "dimension": self._manifest["dimension"],
                "segments": [s["digest"] for s in self._manifest["segments"]],
            })

    def seal_manifest(self, enclave):
        """Seal the manifest digest to ``enclave``'s identity.

        The fingerprinting enclave calls this after producing the store;
        anyone holding the sealed blob can later prove (via
        :meth:`verify_sealed_manifest` inside the same enclave identity)
        that the serving plane still answers from that exact database.
        """
        from repro.enclave.sealing import seal

        return seal(enclave, self.manifest_digest())

    def verify_sealed_manifest(self, enclave, blob) -> bool:
        """Check the current store state against a sealed manifest digest."""
        from repro.enclave.sealing import unseal

        try:
            return unseal(enclave, blob) == self.manifest_digest()
        except SealingError:
            return False
