"""The batched, cached, audited query engine.

This is the traffic-facing layer: callers submit (fingerprint, label, k)
queries and get futures back. Internally the engine

* **micro-batches** — worker threads drain the bounded request queue and
  coalesce concurrent same-(label, k) queries into one vectorized
  distance computation against the sharded index;
* **caches** — an LRU keyed by (fingerprint digest, label, k) absorbs
  repeated queries (the same viral misprediction queried by thousands of
  users) without touching the index at all;
* **applies backpressure** — the request queue is bounded; when it is
  full, :meth:`ServingEngine.submit` raises the typed
  :class:`~repro.errors.QueryRejected` *at submission time* rather than
  silently dropping work (fail-closed, like the audited control plane
  exemplar this subsystem follows);
* **audits itself** — every answered query (cache hit or miss) appends a
  hash-chained event to an :class:`~repro.core.audit.AuditLog`, recording
  the query digest, the result digest, and how it was served. Forensic
  queries are thereby themselves accountable: a verifier can replay the
  chain and detect any retroactively altered answer.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from queue import Empty, Full, Queue
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.audit import AuditLog
from repro.errors import (ConfigurationError, QueryError, QueryRejected,
                          ServingError)
from repro.serving.index import IndexHit, ShardedAnnIndex
from repro.serving.telemetry import ServingTelemetry
from repro.utils.serialization import stable_hash

__all__ = ["EngineConfig", "EngineAnswer", "ServingEngine"]


class EngineAnswer(tuple):
    """An answered query: a tuple of hits plus answer provenance.

    Behaves exactly like the legacy ``Tuple[IndexHit, ...]`` (equality,
    length, iteration, indexing) while carrying three attributes the
    cluster's per-answer verification checks end-to-end:

    * ``snapshot`` — index-snapshot hex digest of the generation that
      answered (which committed store prefix the answer saw);
    * ``label_rows`` — rows the label held in that snapshot, making a
      short answer (``label_rows < requested_k``) explicit instead of
      indistinguishable from a truncated one;
    * ``requested_k`` — the caller's ``k``.
    """

    def __new__(cls, hits, snapshot: Optional[str] = None,
                label_rows: Optional[int] = None,
                requested_k: Optional[int] = None) -> "EngineAnswer":
        self = super().__new__(cls, hits)
        self.snapshot = snapshot
        self.label_rows = label_rows
        self.requested_k = requested_k
        return self


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs for the serving engine."""

    workers: int = 2            # worker threads draining the queue
    max_batch: int = 64         # micro-batch coalescing bound
    queue_depth: int = 256      # bounded queue = the backpressure limit
    cache_size: int = 4096      # LRU entries; 0 disables the cache
    poll_interval: float = 0.02  # worker wait for the first queue item
    drain_timeout: Optional[float] = None  # stop(drain=True) bound; None = wait

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if self.queue_depth < 1:
            raise ConfigurationError("queue_depth must be >= 1")
        if self.cache_size < 0:
            raise ConfigurationError("cache_size must be >= 0")
        if self.drain_timeout is not None and self.drain_timeout <= 0:
            raise ConfigurationError("drain_timeout must be positive or None")


class _LruCache:
    """A small thread-safe LRU for query results."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    def get(self, key: tuple) -> Optional[tuple]:
        if self.capacity == 0:
            return None
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: tuple, value: tuple) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass
class _Pending:
    key: tuple
    fingerprint: np.ndarray
    label: int
    k: int
    future: "Future[Tuple[IndexHit, ...]]"
    enqueued_at: float = field(default_factory=time.perf_counter)


class ServingEngine:
    """Micro-batching, caching, audited front end over a sharded index.

    Use as a context manager (``with ServingEngine(index) as engine:``) or
    call :meth:`start` / :meth:`stop` explicitly. Results are tuples of
    :class:`~repro.serving.index.IndexHit`; resolve them to full Omega
    tuples through the store when building a forensics report.
    """

    def __init__(self, index: ShardedAnnIndex,
                 config: Optional[EngineConfig] = None,
                 audit: Optional[AuditLog] = None,
                 telemetry: Optional[ServingTelemetry] = None,
                 promotion=None, promotion_verifier=None) -> None:
        self.index = index
        self.config = config or EngineConfig()
        self.audit = audit if audit is not None else AuditLog()
        self.telemetry = telemetry if telemetry is not None else ServingTelemetry()
        #: Optional :class:`~repro.governance.gate.PromotionRecord` this
        #: engine serves under; its ``run_key`` is stamped into every
        #: query audit event so answers are attributable to one run.
        self.promotion = promotion
        #: Optional guard (:meth:`PromotionGate.serving_verifier`) run at
        #: :meth:`start`. When set, the engine refuses to accept traffic
        #: — typed :class:`~repro.errors.PromotionError` — unless the
        #: promotion record verifies against the current artifacts.
        self.promotion_verifier = promotion_verifier
        self._audit_lock = threading.Lock()
        self._cache = _LruCache(self.config.cache_size)
        self._queue: "Queue[_Pending]" = Queue(maxsize=self.config.queue_depth)
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False
        self._crashed = False
        # Batches currently being answered, per worker thread — so a
        # bounded-drain stop can fail their futures instead of leaving
        # callers blocked on work a wedged worker will never finish.
        self._in_flight_lock = threading.Lock()
        self._in_flight: Dict[int, List[_Pending]] = {}

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ServingEngine":
        """Start (or restart) the worker pool.

        A stopped engine may be restarted; its snapshot-keyed cache
        carries over safely because every cache key embeds the per-label
        content digest (or, for legacy indexes, the build + store
        versions), so entries cached before a stop can never answer for
        a label that has since gained rows — they simply never match
        again (see :meth:`_key`).
        """
        if self._started:
            raise ServingError("engine already started")
        if self.promotion_verifier is not None:
            # Fail-closed model load: no worker thread starts unless the
            # promoted lineage verifies right now (raises PromotionError).
            self.promotion_verifier(self.promotion)
        self._stopping.clear()
        self._crashed = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"serving-worker-{i}", daemon=True)
            for i in range(self.config.workers)
        ]
        for thread in self._threads:
            thread.start()
        self._started = True
        return self

    def _drain_join(self, timeout: Optional[float]) -> bool:
        """``queue.join()`` with a deadline; True if the queue drained."""
        if timeout is None:
            self._queue.join()
            return True
        deadline = time.perf_counter() + timeout
        with self._queue.all_tasks_done:
            while self._queue.unfinished_tasks:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return False
                self._queue.all_tasks_done.wait(remaining)
        return True

    def _fail_abandoned(self, message: str) -> None:
        """Resolve queued + in-flight futures so no caller blocks forever."""
        while True:
            try:
                pending = self._queue.get_nowait()
            except Empty:
                break
            self.telemetry.count("abandoned")
            if not pending.future.done():
                pending.future.set_exception(ServingError(message))
            self._queue.task_done()
        with self._in_flight_lock:
            stuck = [p for batch in self._in_flight.values() for p in batch]
        for pending in stuck:
            if not pending.future.done():
                self.telemetry.count("abandoned")
                pending.future.set_exception(ServingError(message))

    def stop(self, drain: bool = True,
             drain_timeout: Optional[float] = None) -> None:
        """Stop the workers; with ``drain`` (default) answer queued work first.

        The drain wait is bounded by ``drain_timeout`` (or the config's
        ``drain_timeout`` when unset): a wedged worker can no longer
        hang shutdown forever. On a drain deadline the engine still
        shuts down — queued *and* in-flight futures are resolved with a
        typed :class:`ServingError` — and then raises ``ServingError``
        so the operator knows work was abandoned.

        Without ``drain``, requests still sitting in the queue are not
        dropped silently: their futures fail with :class:`ServingError`
        so no caller blocks forever on an abandoned query.
        """
        if not self._started:
            return
        timeout = (drain_timeout if drain_timeout is not None
                   else self.config.drain_timeout)
        drained = self._drain_join(timeout) if drain else True
        self._stopping.set()
        join_deadline = (None if timeout is None
                         else time.perf_counter() + timeout)
        for thread in self._threads:
            if join_deadline is None:
                thread.join()
            else:
                thread.join(max(0.0, join_deadline - time.perf_counter()))
        # Wedged threads are daemons: they cannot block interpreter exit,
        # and every future they still hold is failed below (resolution is
        # guarded, so a late un-wedge cannot double-resolve).
        self._threads = []
        self._started = False
        self._fail_abandoned("engine stopped before serving this query")
        if drain and not drained:
            raise ServingError(
                f"drain timed out after {timeout:.3f}s with work pending; "
                "abandoned queries failed with ServingError"
            )

    def kill(self) -> None:
        """Simulate an abrupt replica crash (chaos hook, used by tests,
        the fault plan, and the CLI ``serve-cluster --inject`` drill).

        Like a real process death: new submissions fail fast (connection
        refused), while work already queued or in flight is simply lost
        — callers discover it through their own deadlines, which is
        exactly what the cluster router's hedging exists for. A later
        :meth:`stop` (the cluster does this on eviction) resolves the
        lost futures with a typed error.
        """
        self._crashed = True
        self._stopping.set()

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- growth ------------------------------------------------------------------

    def refresh(self) -> bool:
        """Adopt newly committed store segments into the serving index.

        Delegates to :meth:`ShardedAnnIndex.refresh` — incremental, no
        full rebuild — and records the generation adoption in the same
        hash-chained audit log as the queries it will affect, so the
        chain shows exactly when answers started covering the new rows.
        In-flight queries are untouched (they pinned the old
        generation); returns ``True`` when a new generation was adopted.
        """
        refresher = getattr(self.index, "refresh", None)
        if refresher is None:
            return False
        before = getattr(self.index, "snapshot_digest", None)
        started = time.perf_counter()
        changed = refresher()
        self.telemetry.observe("refresh", time.perf_counter() - started)
        if changed:
            self.telemetry.count("refreshes")
            with self._audit_lock:
                self.audit.append(
                    "index-refresh",
                    snapshot_before=before,
                    snapshot_after=getattr(self.index, "snapshot_digest",
                                           None),
                    built_version=getattr(self.index, "built_version", None),
                )
        return changed

    # -- submission --------------------------------------------------------------

    def _key(self, fingerprint: np.ndarray, label: int, k: int) -> tuple:
        # Keyed by the *per-label* content digest: growth in other labels
        # leaves these entries warm, while a label that actually gains
        # rows gets a new digest, so its old entries simply never match
        # again. Indexes without per-label identity fall back to the
        # coarse (build version, store version) pair, which invalidates
        # everything on any append — correct, just colder.
        return (stable_hash(fingerprint), int(label), int(k),
                self._label_scope(label))

    def _label_scope(self, label: int):
        """The content scope :meth:`_key` embeds for ``label`` right now."""
        getter = getattr(self.index, "label_digest", None)
        scope = getter(int(label)) if callable(getter) else None
        if scope is None:
            scope = (getattr(self.index, "built_version", None),
                     getattr(getattr(self.index, "store", None),
                             "version", None))
        return scope

    def _revalidate(self, key: tuple,
                    cached: Tuple[IndexHit, ...]
                    ) -> Optional[Tuple[IndexHit, ...]]:
        """Re-stamp a cache hit with the live generation's snapshot.

        Cached answers cite the snapshot of the generation that filled
        them, but the index keeps only a bounded generation history —
        after enough refresh/compaction adoptions a hot entry would cite
        a pruned snapshot and fail the cluster's per-answer provenance
        check, evicting a healthy replica for a correct answer. The cache
        key already embeds the per-label content scope, so a hit proves
        the label's row set is unchanged in the live generation: the live
        snapshot is an equally true citation. Returns ``None`` (treat as
        a miss) when an adoption raced in and moved the label's scope
        between key computation and now."""
        snapshot = getattr(cached, "snapshot", None)
        live = getattr(self.index, "snapshot_digest", None)
        if snapshot is None or live is None or live == snapshot:
            return cached
        if self._label_scope(key[1]) != key[3]:
            return None
        answer = EngineAnswer(tuple(cached), snapshot=live,
                              label_rows=getattr(cached, "label_rows", None),
                              requested_k=getattr(cached, "requested_k",
                                                  None))
        self._cache.put(key, answer)
        return answer

    def _audit_event(self, key: tuple, served_by: str,
                     hits: Tuple[IndexHit, ...]) -> None:
        result_digest = stable_hash(
            [[hit.index, hit.distance] for hit in hits]
        )
        details = dict(
            query_digest=key[0].hex(),
            label=key[1],
            k=key[2],
            served_by=served_by,
            results=result_digest.hex(),
            num_results=len(hits),
        )
        snapshot = getattr(hits, "snapshot", None)
        if snapshot is not None:
            # Which data generation answered — the audit chain commits to
            # the exact index snapshot, so a verifier can replay the
            # answer against that committed store prefix.
            details["index_snapshot"] = snapshot
            details["label_rows"] = getattr(hits, "label_rows", None)
        if self.promotion is not None:
            # Promoted deployments stamp the run identity into every
            # answer: the audit chain proves which run served it.
            details["run_key"] = self.promotion.run_key
        with self._audit_lock:
            self.audit.append("serving-query", **details)

    def submit(self, fingerprint: np.ndarray, label: int,
               k: int = 9) -> "Future[Tuple[IndexHit, ...]]":
        """Enqueue one query; returns a future of the hit tuple.

        Raises :class:`QueryRejected` immediately if the engine is
        overloaded — rejected queries are counted, never silently dropped.
        """
        if self._crashed:
            # Crashed replicas refuse instantly — the router's analogue of
            # ECONNREFUSED — so callers fail over instead of queueing work
            # no worker will ever drain.
            raise ServingError("engine crashed — replica is down")
        if not self._started:
            raise ServingError("engine is not running — call start()")
        fingerprint = np.ascontiguousarray(
            np.asarray(fingerprint, dtype=np.float32).ravel()
        )
        dimension = getattr(self.index, "dimension", None)
        if dimension is not None and fingerprint.shape[0] != dimension:
            raise QueryError(
                f"fingerprint dimension {fingerprint.shape[0]} does not "
                f"match index dimension {dimension}"
            )
        key = self._key(fingerprint, label, k)
        self.telemetry.count("queries")
        future: "Future[Tuple[IndexHit, ...]]" = Future()
        cached = self._cache.get(key)
        if cached is not None:
            cached = self._revalidate(key, cached)
        if cached is not None:
            self.telemetry.count("cache_hits")
            self._audit_event(key, "cache", cached)
            future.set_result(cached)
            return future
        self.telemetry.count("cache_misses")
        pending = _Pending(key=key, fingerprint=fingerprint,
                           label=int(label), k=int(k), future=future)
        try:
            self._queue.put_nowait(pending)
        except Full:
            self.telemetry.count("rejected")
            raise QueryRejected(
                f"serving queue full ({self.config.queue_depth} pending); "
                f"retry after {self._retry_after():.3f}s",
                retry_after_s=self._retry_after(),
            ) from None
        return future

    def _retry_after(self) -> float:
        # How long until the backlog plausibly clears: full queue drained
        # by `workers` threads that each pick up a batch per poll tick.
        # Clamped below by one poll interval — retrying sooner than the
        # workers can even wake up is guaranteed to bounce again.
        depth = self._queue.qsize()
        drain_rate = self.config.workers * self.config.max_batch
        ticks = max(1.0, depth / max(1, drain_rate))
        return max(self.config.poll_interval,
                   ticks * self.config.poll_interval)

    def query(self, fingerprint: np.ndarray, label: int,
              k: int = 9, timeout: Optional[float] = None
              ) -> Tuple[IndexHit, ...]:
        """Blocking single query."""
        return self.submit(fingerprint, label, k).result(timeout=timeout)

    def query_many(self, fingerprints: np.ndarray, labels: Sequence[int],
                   k: int = 9, timeout: Optional[float] = None
                   ) -> List[Tuple[IndexHit, ...]]:
        """Submit a batch and gather results in submission order.

        ``timeout`` is one overall deadline for the whole batch, not a
        per-future allowance: each future is waited with the *remaining*
        time, so the total wait is bounded by ``timeout`` rather than
        by N × timeout.
        """
        fingerprints = np.asarray(fingerprints, dtype=np.float32)
        n = fingerprints.shape[0]
        fingerprints = fingerprints.reshape(n, -1)
        if len(labels) != n:
            raise ServingError(
                f"{n} fingerprints but {len(labels)} labels"
            )
        futures = [
            self.submit(fingerprints[i], int(labels[i]), k) for i in range(n)
        ]
        deadline = (None if timeout is None
                    else time.perf_counter() + timeout)
        results = []
        for future in futures:
            remaining = (None if deadline is None
                         else deadline - time.perf_counter())
            if remaining is not None and remaining <= 0:
                raise FuturesTimeoutError(
                    f"query_many deadline of {timeout}s expired with "
                    f"{len(futures) - len(results)} queries unanswered"
                )
            results.append(future.result(timeout=remaining))
        return results

    # -- the worker side ---------------------------------------------------------

    def _drain_batch(self) -> List[_Pending]:
        try:
            first = self._queue.get(timeout=self.config.poll_interval)
        except Empty:
            return []
        started = time.perf_counter()
        batch = [first]
        while len(batch) < self.config.max_batch:
            try:
                batch.append(self._queue.get_nowait())
            except Empty:
                break
        # Coalescing time only — the blocking wait for the first request is
        # idle time, not assembly work.
        self.telemetry.observe("assemble", time.perf_counter() - started)
        return batch

    def _worker_loop(self) -> None:
        # Fail-closed worker: whatever happens while answering a batch, every
        # future is resolved and task_done() runs, so one malformed query can
        # neither kill the worker nor wedge stop(drain=True) on queue.join().
        ident = threading.get_ident()
        while not self._stopping.is_set():
            batch = self._drain_batch()
            if not batch:
                continue
            with self._in_flight_lock:
                self._in_flight[ident] = batch
            try:
                self.telemetry.count("batches")
                self.telemetry.count("batched_queries", len(batch))
                self.telemetry.observe("queue_occupancy", self._queue.qsize())
                groups: Dict[Tuple[int, int], List[_Pending]] = {}
                for pending in batch:
                    groups.setdefault((pending.label, pending.k),
                                      []).append(pending)
                for (label, k), members in groups.items():
                    self._answer_group(label, k, members)
            except Exception as exc:
                for pending in batch:
                    if not pending.future.done():
                        self.telemetry.count("errors")
                        pending.future.set_exception(exc)
            finally:
                with self._in_flight_lock:
                    self._in_flight.pop(ident, None)
                for _ in batch:
                    self._queue.task_done()

    def _answer_group(self, label: int, k: int,
                      members: List[_Pending]) -> None:
        started = time.perf_counter()
        try:
            matrix = np.stack([m.fingerprint for m in members])
            result = self.index.search_batch(matrix, label, k)
        except Exception as exc:  # typed errors propagate to each caller
            for member in members:
                if member.future.done():
                    continue  # already failed by a bounded-drain stop
                self.telemetry.count("errors")
                member.future.set_exception(exc)
            return
        elapsed = time.perf_counter() - started
        self.telemetry.observe("search", elapsed)
        self.telemetry.count("candidates_scanned", result.candidates_scanned)
        self.telemetry.count("brute_equivalent_rows",
                             result.shard_rows * len(members))
        now = time.perf_counter()
        snapshot = getattr(result, "snapshot", None)
        label_rows = getattr(result, "shard_rows", None)
        for member, hits in zip(members, result.hits):
            answer = EngineAnswer(hits, snapshot=snapshot,
                                  label_rows=label_rows,
                                  requested_k=member.k)
            self._cache.put(member.key, answer)
            self._audit_event(member.key, "index", answer)
            self.telemetry.observe("total", now - member.enqueued_at)
            if not member.future.done():
                # A bounded-drain stop may have already failed this future
                # while the worker was wedged; a late completion must not
                # raise InvalidStateError.
                member.future.set_result(answer)

    # -- verification ------------------------------------------------------------

    def verify_audit_chain(self) -> bool:
        """Validate the hash chain over every served query so far."""
        with self._audit_lock:
            return self.audit.verify_chain()
