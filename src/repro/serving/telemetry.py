"""Per-stage counters for the serving plane.

A serving system is only operable if you can see it: how many queries
arrived, how many the cache absorbed, how many the backpressure bound
rejected, how big the coalesced batches run, how long each stage takes,
and what fraction of each shard the ANN index actually scanned. All
counters are thread-safe; :meth:`ServingTelemetry.snapshot` returns a
plain dict and :meth:`render` a human-readable table for the CLI.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["StageStats", "ServingTelemetry"]


class StageStats:
    """Streaming latency statistics for one pipeline stage."""

    __slots__ = ("count", "total", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean,
                "max": self.maximum, "total": self.total}


class ServingTelemetry:
    """Counters + per-stage latency for the query engine."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._stages: Dict[str, StageStats] = {}

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, stage: str, value: float) -> None:
        with self._lock:
            stats = self._stages.get(stage)
            if stats is None:
                stats = self._stages[stage] = StageStats()
            stats.observe(value)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def stage(self, name: str) -> Optional[StageStats]:
        with self._lock:
            return self._stages.get(name)

    # -- derived rates -----------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        with self._lock:
            hits = self._counters.get("cache_hits", 0)
            misses = self._counters.get("cache_misses", 0)
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            batches = self._counters.get("batches", 0)
            batched = self._counters.get("batched_queries", 0)
        return batched / batches if batches else 0.0

    @property
    def scan_fraction(self) -> float:
        """Candidate rows actually scanned vs. a full brute-force scan."""
        with self._lock:
            scanned = self._counters.get("candidates_scanned", 0)
            full = self._counters.get("brute_equivalent_rows", 0)
        return scanned / full if full else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            stages = {name: stats.as_dict()
                      for name, stats in self._stages.items()}
        snapshot: Dict[str, object] = {"counters": counters, "stages": stages}
        snapshot["cache_hit_rate"] = self.cache_hit_rate
        snapshot["mean_batch_size"] = self.mean_batch_size
        snapshot["scan_fraction"] = self.scan_fraction
        return snapshot

    def render(self) -> str:
        snapshot = self.snapshot()
        lines = ["serving telemetry"]
        for name in sorted(snapshot["counters"]):
            lines.append(f"  {name:<24} {snapshot['counters'][name]:>10}")
        lines.append(f"  {'cache_hit_rate':<24} {snapshot['cache_hit_rate']:>10.2%}")
        lines.append(f"  {'mean_batch_size':<24} {snapshot['mean_batch_size']:>10.2f}")
        lines.append(f"  {'scan_fraction':<24} {snapshot['scan_fraction']:>10.2%}")
        for name in sorted(snapshot["stages"]):
            stage = snapshot["stages"][name]
            if name.endswith("occupancy"):
                lines.append(
                    f"  stage {name:<16} n={stage['count']:<7} "
                    f"mean={stage['mean']:8.1f}   max={stage['max']:8.1f}"
                )
            else:
                lines.append(
                    f"  stage {name:<16} n={stage['count']:<7} "
                    f"mean={stage['mean'] * 1e3:8.3f}ms max={stage['max'] * 1e3:8.3f}ms"
                )
        return "\n".join(lines)
