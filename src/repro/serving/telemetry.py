"""Per-stage counters for the serving plane.

A serving system is only operable if you can see it: how many queries
arrived, how many the cache absorbed, how many the backpressure bound
rejected, how big the coalesced batches run, how long each stage takes
(now with p50/p95/p99, not just mean/max), and what fraction of each
shard the ANN index actually scanned.

:class:`ServingTelemetry` is a thin adapter over the shared
:class:`~repro.observability.MetricsRegistry` (metric namespace
``repro_serving_*``); pass an existing registry to aggregate serving
metrics with other subsystems into one export. :meth:`snapshot` returns
a plain dict, :meth:`render` a human-readable table for the CLI, and
:meth:`ServingTelemetry.stage` an *immutable* statistics snapshot —
never the live object, so readers can no longer race worker
``observe()`` calls into torn count/total pairs.
"""

from __future__ import annotations

from typing import Dict

from repro.observability.adapter import StageStats, SubsystemTelemetry

__all__ = ["StageStats", "ServingTelemetry", "ClusterTelemetry"]


class ServingTelemetry(SubsystemTelemetry):
    """Counters + per-stage latency for the query engine."""

    subsystem = "serving"

    # -- derived rates -----------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        hits = self.counter("cache_hits")
        misses = self.counter("cache_misses")
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def mean_batch_size(self) -> float:
        batches = self.counter("batches")
        batched = self.counter("batched_queries")
        return batched / batches if batches else 0.0

    @property
    def scan_fraction(self) -> float:
        """Candidate rows actually scanned vs. a full brute-force scan."""
        scanned = self.counter("candidates_scanned")
        full = self.counter("brute_equivalent_rows")
        return scanned / full if full else 0.0

    def snapshot(self) -> Dict[str, object]:
        snapshot = super().snapshot()
        snapshot["cache_hit_rate"] = self.cache_hit_rate
        snapshot["mean_batch_size"] = self.mean_batch_size
        snapshot["scan_fraction"] = self.scan_fraction
        return snapshot

    def render(self) -> str:
        snapshot = self.snapshot()
        lines = ["serving telemetry"]
        for name in sorted(snapshot["counters"]):
            lines.append(f"  {name:<24} {snapshot['counters'][name]:>10}")
        lines.append(f"  {'cache_hit_rate':<24} {snapshot['cache_hit_rate']:>10.2%}")
        lines.append(f"  {'mean_batch_size':<24} {snapshot['mean_batch_size']:>10.2f}")
        lines.append(f"  {'scan_fraction':<24} {snapshot['scan_fraction']:>10.2%}")
        lines.extend(self._render_stage_lines(snapshot["stages"], width=16))
        return "\n".join(lines)


class ClusterTelemetry(SubsystemTelemetry):
    """Counters + stage latency for the replicated serving cluster.

    Metric namespace ``repro_serving_cluster_*``. Counters cover every
    routing outcome the availability story depends on: successes and
    failures, retries, hedges (launched and won), failovers, degraded
    answers, shed load, breaker trips, evictions, revivals, hit
    verifications (with failures), and — since the incremental-index
    work — benign-growth handling: ``benign_stale``, ``replica_refreshes``,
    ``refresh_failures``, ``growth_segments``/``growth_records`` (chaos
    bursts), and ``snapshot_verifications``/``snapshot_failures`` for the
    cached per-answer lineage walks. Pass the cluster's registry into each
    replica's :class:`ServingTelemetry` to export one combined surface.
    """

    subsystem = "serving_cluster"

    @property
    def success_rate(self) -> float:
        ok = self.counter("queries_ok")
        failed = self.counter("queries_failed")
        total = ok + failed
        return ok / total if total else 0.0

    @property
    def refresh_eviction_ratio(self) -> float:
        """Refreshes per eviction — the headline number for this PR's
        contract: benign growth should drive this toward infinity (all
        refreshes, no evictions); return 0.0 when neither happened."""
        refreshes = self.counter("replica_refreshes")
        evictions = self.counter("evictions")
        if not refreshes:
            return 0.0
        return refreshes / evictions if evictions else float("inf")

    @property
    def degraded_fraction(self) -> float:
        ok = self.counter("queries_ok")
        return self.counter("degraded_answers") / ok if ok else 0.0

    @property
    def hedge_win_rate(self) -> float:
        launched = self.counter("hedges_launched")
        return self.counter("hedges_won") / launched if launched else 0.0

    def snapshot(self) -> Dict[str, object]:
        snapshot = super().snapshot()
        snapshot["success_rate"] = self.success_rate
        snapshot["degraded_fraction"] = self.degraded_fraction
        snapshot["hedge_win_rate"] = self.hedge_win_rate
        snapshot["refresh_eviction_ratio"] = self.refresh_eviction_ratio
        return snapshot

    def render(self) -> str:
        snapshot = self.snapshot()
        lines = ["serving cluster telemetry"]
        for name in sorted(snapshot["counters"]):
            lines.append(f"  {name:<24} {snapshot['counters'][name]:>10}")
        lines.append(f"  {'success_rate':<24} {snapshot['success_rate']:>10.2%}")
        lines.append(
            f"  {'degraded_fraction':<24} {snapshot['degraded_fraction']:>10.2%}")
        lines.append(
            f"  {'hedge_win_rate':<24} {snapshot['hedge_win_rate']:>10.2%}")
        lines.extend(self._render_stage_lines(snapshot["stages"], width=16))
        return "\n".join(lines)
