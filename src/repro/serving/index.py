"""Per-label sharded ANN index with exact L2 re-ranking.

Every query is label-scoped (the paper only searches within class ``Y``),
so the natural sharding key is the label. Each shard is either:

* a **brute shard** (below ``shard_threshold`` records): one dense matrix,
  exact distances — small classes don't deserve index overhead; or
* a **clustered shard**: coarse k-means buckets with per-bucket centroids
  and radii. A query first ranks buckets by centroid distance, then
  re-ranks candidate rows with exact L2 distances.

Two candidate-selection modes:

* ``probes=None`` (the default, *exact* mode) — triangle-inequality
  pruning. A bucket with centroid ``c`` and radius ``r`` can only contain
  a top-k hit if ``d(q, c) - r <= ub_k``, where ``ub_k`` is a proven
  upper bound on the k-th nearest distance (from the buckets whose
  ``d(q, c) + r`` is smallest and that jointly hold >= k points). Any
  pruned point is *strictly* farther than the k-th neighbour, so the
  returned top-k membership — and, with the stable insertion-order
  tie-break, the exact ordering — is identical to brute force. Recall is
  1.0 by construction at this default re-rank width.
* ``probes=p`` (approximate mode) — scan only the ``p`` buckets with the
  nearest centroids (expanding while fewer than ``k`` candidates are
  reachable). Recall depends on how clustered the fingerprints are; the
  documented floor, enforced by the test suite on clustered and random
  data, is ``RECALL_FLOOR``.

Batched searches (:meth:`ShardedAnnIndex.search_batch`) compute one
vectorized distance evaluation over the union of every query's candidate
rows — this is what the engine's micro-batching coalesces into.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

import numpy as np
from scipy.spatial.distance import cdist

from repro.errors import (ConfigurationError, IndexIntegrityError, QueryError,
                          StaleIndexError)

__all__ = ["IndexHit", "ShardSearchResult", "ShardedAnnIndex", "RECALL_FLOOR"]

# The documented recall floor for approximate (probing) mode with the
# default build parameters, enforced by tests/serving/test_index.py.
RECALL_FLOOR = 0.9


class IndexHit(NamedTuple):
    """One nearest-neighbour hit: global record index + exact L2 distance."""

    index: int
    distance: float


@dataclass
class ShardSearchResult:
    """Results for one batched shard search plus work accounting."""

    hits: List[List[IndexHit]]
    candidates_scanned: int  # exact distance evaluations performed
    shard_rows: int          # rows a brute-force scan would have touched


class _BruteShard:
    def __init__(self, matrix: np.ndarray, indices: np.ndarray) -> None:
        self.matrix = matrix
        self.indices = indices

    @property
    def rows(self) -> int:
        return self.matrix.shape[0]

    def search(self, batch: np.ndarray, k: int) -> ShardSearchResult:
        k_eff = min(k, self.rows)
        distances = cdist(batch, self.matrix)
        order = np.argsort(distances, axis=1, kind="stable")[:, :k_eff]
        hits = [
            [IndexHit(int(self.indices[column]), float(distances[row, column]))
             for column in order[row]]
            for row in range(batch.shape[0])
        ]
        return ShardSearchResult(
            hits=hits,
            candidates_scanned=batch.shape[0] * self.rows,
            shard_rows=self.rows,
        )


class _ClusteredShard:
    """Coarse k-means buckets over one label's fingerprints.

    ``row_order`` sorts rows ascending by global index inside the
    concatenated bucket layout, so a stable argsort over candidate
    distances tie-breaks identically to brute force over the full shard.
    """

    def __init__(self, matrix: np.ndarray, indices: np.ndarray,
                 centroids: np.ndarray, buckets: List[np.ndarray],
                 radii: np.ndarray) -> None:
        self.matrix = matrix
        self.indices = indices
        self.centroids = centroids
        self.buckets = buckets  # per bucket: row ids into matrix, ascending
        self.radii = radii
        self.sizes = np.array([len(b) for b in buckets], dtype=np.int64)

    @property
    def rows(self) -> int:
        return self.matrix.shape[0]

    def _candidate_mask(self, dc: np.ndarray, k: int,
                        probes: Optional[int]) -> np.ndarray:
        """(q, m) bool — which buckets each query must scan."""
        q = dc.shape[0]
        m = len(self.buckets)
        k_eff = min(k, self.rows)
        if probes is not None:
            # Approximate: the `probes` nearest centroids, expanded per
            # query until at least k candidates are reachable.
            order = np.argsort(dc, axis=1, kind="stable")
            mask = np.zeros((q, m), dtype=bool)
            for row in range(q):
                needed = 0
                taken = 0
                for bucket in order[row]:
                    if taken >= probes and needed >= k_eff:
                        break
                    mask[row, bucket] = True
                    needed += self.sizes[bucket]
                    taken += 1
            return mask
        # Exact: bound the k-th nearest distance from above with the
        # smallest-upper-bound buckets jointly holding >= k points, then
        # keep every bucket whose lower bound does not exceed it.
        upper = dc + self.radii[None, :]
        lower = np.maximum(dc - self.radii[None, :], 0.0)
        order = np.argsort(upper, axis=1, kind="stable")
        cum = np.cumsum(self.sizes[order], axis=1)
        # First column where the cumulative bucket population reaches k.
        first = np.argmax(cum >= k_eff, axis=1)
        ub_k = upper[np.arange(q), order[np.arange(q), first]]
        return lower <= ub_k[:, None]

    def search(self, batch: np.ndarray, k: int,
               probes: Optional[int]) -> ShardSearchResult:
        k_eff = min(k, self.rows)
        dc = cdist(batch, self.centroids)
        mask = self._candidate_mask(dc, k, probes)
        union_buckets = np.flatnonzero(mask.any(axis=0))
        # One vectorized distance computation over the union of candidates,
        # with rows sorted ascending so stable ties match brute force.
        union_rows = np.sort(
            np.concatenate([self.buckets[b] for b in union_buckets])
        )
        bucket_of_row = np.empty(self.rows, dtype=np.int64)
        for bucket, rows in enumerate(self.buckets):
            bucket_of_row[rows] = bucket
        union_bucket_ids = bucket_of_row[union_rows]
        distances = cdist(batch, self.matrix[union_rows])
        hits: List[List[IndexHit]] = []
        scanned = 0
        for row in range(batch.shape[0]):
            columns = np.flatnonzero(mask[row][union_bucket_ids])
            scanned += columns.shape[0]
            own = distances[row, columns]
            take = min(k_eff, columns.shape[0])
            order = np.argsort(own, kind="stable")[:take]
            rows_hit = union_rows[columns[order]]
            hits.append([
                IndexHit(int(self.indices[r]), float(d))
                for r, d in zip(rows_hit, own[order])
            ])
        return ShardSearchResult(hits=hits, candidates_scanned=scanned,
                                 shard_rows=self.rows)


class ShardedAnnIndex:
    """The per-label sharded index over a linkage store (or database).

    Args:
        store: anything exposing ``labels()``, ``count(label)``, and
            ``by_label(label)`` — both :class:`~repro.serving.store.LinkageStore`
            and :class:`~repro.core.linkage.LinkageDatabase` qualify.
        shard_threshold: labels with fewer records stay brute-force.
        buckets_per_shard: number of k-means buckets, or ``None`` for
            ``ceil(sqrt(n))`` per shard.
        probes: ``None`` for the exact bound-pruned mode (recall 1.0);
            an integer for approximate probing (recall >= ``RECALL_FLOOR``
            on clustered data with default build parameters).
        seed: k-means initialisation seed (build is deterministic).
    """

    def __init__(self, store, shard_threshold: int = 2048,
                 buckets_per_shard: Optional[int] = None,
                 probes: Optional[int] = None, seed: int = 0,
                 kmeans_iterations: int = 6,
                 kmeans_sample: int = 20000) -> None:
        if probes is not None and probes < 1:
            raise ConfigurationError("probes must be >= 1 (or None for exact)")
        if shard_threshold < 1:
            raise ConfigurationError("shard_threshold must be >= 1")
        self.store = store
        self.shard_threshold = shard_threshold
        self.buckets_per_shard = buckets_per_shard
        self.probes = probes
        self.seed = seed
        self.kmeans_iterations = kmeans_iterations
        self.kmeans_sample = kmeans_sample
        self._shards: Dict[int, object] = {}
        self.built_version: Optional[int] = None
        self._built = False
        # crc32 over every shard matrix, recorded at build time. The
        # matrices are private float32 copies (not the mmap store), so any
        # later drift is memory corruption local to this replica; the
        # cluster's health sweep re-verifies these cheaply.
        self._shard_checksums: Dict[int, int] = {}

    # -- build -------------------------------------------------------------------

    def build(self) -> "ShardedAnnIndex":
        """(Re)build every label shard from the store; returns self."""
        self._shards = {}
        for label in self.store.labels():
            matrix, indices = self.store.by_label(label)
            matrix = np.ascontiguousarray(matrix, dtype=np.float32)
            index_array = np.asarray(indices, dtype=np.int64)
            if matrix.shape[0] <= self.shard_threshold:
                self._shards[label] = _BruteShard(matrix, index_array)
            else:
                self._shards[label] = self._cluster(label, matrix, index_array)
        self.built_version = getattr(self.store, "version", None)
        self._shard_checksums = {
            label: self._checksum(shard.matrix)
            for label, shard in self._shards.items()
        }
        self._built = True
        return self

    @staticmethod
    def _checksum(matrix: np.ndarray) -> int:
        return zlib.crc32(np.ascontiguousarray(matrix).tobytes())

    def verify_checksums(self) -> None:
        """Re-verify every shard matrix against its build-time checksum.

        Raises :class:`~repro.errors.IndexIntegrityError` on drift. This
        is the replica-side defence against silent in-memory corruption:
        the mmap store has content-addressed segment digests, but the
        index's private matrix copies do not — a flipped byte here would
        otherwise shift distances and quietly reorder top-k answers."""
        for label, shard in self._shards.items():
            recorded = self._shard_checksums.get(label)
            if recorded is None or self._checksum(shard.matrix) != recorded:
                raise IndexIntegrityError(
                    f"index shard for label {label} failed its checksum — "
                    "matrix drifted since build"
                )

    @property
    def dimension(self) -> Optional[int]:
        """Fingerprint dimension this index serves (None before build)."""
        dim = getattr(self.store, "dimension", None)
        if dim is not None:
            return int(dim)
        for shard in self._shards.values():
            return int(shard.matrix.shape[1])
        return None

    def _cluster(self, label: int, matrix: np.ndarray,
                 indices: np.ndarray) -> _ClusteredShard:
        n = matrix.shape[0]
        m = self.buckets_per_shard or int(np.ceil(np.sqrt(n)))
        m = max(1, min(m, n))
        rng = np.random.default_rng(self.seed + int(label))
        # Lloyd iterations on a subsample keep builds linear-ish in n.
        fit_rows = (
            rng.choice(n, size=self.kmeans_sample, replace=False)
            if n > self.kmeans_sample else np.arange(n)
        )
        fit = matrix[fit_rows]
        m = min(m, fit.shape[0])
        centroids = fit[rng.choice(fit.shape[0], size=m, replace=False)].copy()
        for _ in range(self.kmeans_iterations):
            assign = np.argmin(cdist(fit, centroids), axis=1)
            for bucket in range(m):
                members = fit[assign == bucket]
                if members.shape[0]:
                    centroids[bucket] = members.mean(axis=0)
                else:
                    centroids[bucket] = fit[rng.integers(fit.shape[0])]
        assign = np.argmin(cdist(matrix, centroids), axis=1)
        buckets: List[np.ndarray] = []
        radii = np.zeros(m, dtype=np.float64)
        keep: List[int] = []
        for bucket in range(m):
            rows = np.flatnonzero(assign == bucket)
            if rows.shape[0] == 0:
                continue
            keep.append(bucket)
            buckets.append(rows)
            deltas = matrix[rows] - centroids[bucket]
            radii[bucket] = float(np.sqrt((deltas * deltas).sum(axis=1)).max())
        centroids = centroids[keep]
        radii = radii[keep]
        return _ClusteredShard(matrix, indices, centroids, buckets, radii)

    # -- search ------------------------------------------------------------------

    def shard_kind(self, label: int) -> str:
        shard = self._shards.get(int(label))
        if shard is None:
            return "missing"
        return "brute" if isinstance(shard, _BruteShard) else "clustered"

    def labels(self) -> List[int]:
        return sorted(self._shards)

    def _shard_for(self, label: int):
        shard = self._shards.get(int(label))
        if shard is None:
            raise QueryError(
                f"no training fingerprints indexed for label {label}"
            )
        return shard

    def search_batch(self, batch: np.ndarray, label: int,
                     k: int = 9) -> ShardSearchResult:
        """Answer a coalesced same-label batch with one vectorized pass."""
        if not self._built:
            raise QueryError("index not built — call build() first")
        store_version = getattr(self.store, "version", None)
        if store_version is not None and store_version != self.built_version:
            raise StaleIndexError(
                f"index is stale: built at store version {self.built_version} "
                f"but the store is now at {store_version} — call build() again"
            )
        if k < 1:
            raise QueryError("k must be >= 1")
        shard = self._shard_for(label)
        batch = np.asarray(batch, dtype=np.float32)
        batch = batch.reshape(batch.shape[0] if batch.ndim > 1 else 1, -1)
        if batch.shape[1] != shard.matrix.shape[1]:
            raise QueryError(
                f"fingerprint dimension {batch.shape[1]} does not match "
                f"index dimension {shard.matrix.shape[1]}"
            )
        if isinstance(shard, _BruteShard):
            return shard.search(batch, k)
        return shard.search(batch, k, self.probes)

    def search(self, fingerprint: np.ndarray, label: int,
               k: int = 9) -> List[IndexHit]:
        """Single-query convenience wrapper around :meth:`search_batch`."""
        return self.search_batch(
            np.asarray(fingerprint, dtype=np.float32).reshape(1, -1), label, k
        ).hits[0]

    def stats(self) -> Dict[str, object]:
        """Per-shard composition summary (for CLI / telemetry surfaces)."""
        shards = {}
        for label, shard in sorted(self._shards.items()):
            entry = {"rows": shard.rows,
                     "kind": "brute" if isinstance(shard, _BruteShard)
                             else "clustered"}
            if isinstance(shard, _ClusteredShard):
                entry["buckets"] = len(shard.buckets)
                entry["mean_radius"] = float(np.mean(shard.radii))
            shards[int(label)] = entry
        return {
            "labels": len(self._shards),
            "mode": "exact" if self.probes is None else f"probes={self.probes}",
            "built_version": self.built_version,
            "shards": shards,
        }
