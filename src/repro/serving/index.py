"""Per-label sharded ANN index — a generation of immutable segments.

Every query is label-scoped (the paper only searches within class ``Y``),
so the natural sharding key is the label. The leaf structures live in
:mod:`repro.serving.segments`: each label shard is either a **brute
shard** (below ``shard_threshold`` records: one dense matrix, exact
distances) or a **clustered shard** (coarse k-means buckets with
per-bucket centroids and radii; a query ranks buckets by centroid
distance and re-ranks candidates with exact L2).

Two candidate-selection modes:

* ``probes=None`` (the default, *exact* mode) — triangle-inequality
  pruning. A bucket with centroid ``c`` and radius ``r`` can only contain
  a top-k hit if ``d(q, c) - r <= ub_k``, where ``ub_k`` is a proven
  upper bound on the k-th nearest distance. Pruned points are *strictly*
  farther than the k-th neighbour, so top-k membership — and, with the
  stable insertion-order tie-break, the exact ordering — is identical to
  brute force. Recall is 1.0 by construction.
* ``probes=p`` (approximate mode) — scan only the ``p`` buckets with the
  nearest centroids (expanding while fewer than ``k`` candidates are
  reachable). The documented floor, enforced by the test suite, is
  ``RECALL_FLOOR``.

What changed with the incremental rewrite: the index no longer fails
closed when the store grows. :meth:`ShardedAnnIndex.build` makes one
full-coverage segment; :meth:`ShardedAnnIndex.refresh` builds segments
only for *newly committed* store segments and atomically adopts a new
:class:`~repro.serving.segments.IndexGeneration`; ``search_batch`` pins
the generation it starts on (snapshot isolation), and a background
compactor (:meth:`start_compaction`) keeps per-query segment fan-out
bounded with rate-limited merges. :class:`~repro.errors.StaleIndexError`
is reserved for genuine digest mismatch — a covered store segment whose
content no longer matches what the index was built against.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import (CompactionCrash, ConfigurationError, QueryError,
                          StaleIndexError)
from repro.serving.segments import (IndexGeneration, IndexHit, IndexSegment,
                                    SegmentBuildParams, ShardSearchResult,
                                    _BruteShard, _ClusteredShard,
                                    generation_lineage_error, merge_segments,
                                    plan_merge)

__all__ = ["IndexHit", "ShardSearchResult", "ShardedAnnIndex", "RECALL_FLOOR"]

# The documented recall floor for approximate (probing) mode with the
# default build parameters, enforced by tests/serving/test_index.py.
RECALL_FLOOR = 0.9

# How many adopted generations to keep addressable by snapshot digest —
# enough for the cluster to verify answers produced just before an
# adoption without re-deriving anything.
_GENERATION_HISTORY = 16


class ShardedAnnIndex:
    """The per-label sharded index over a linkage store (or database).

    Args:
        store: anything exposing ``labels()``, ``count(label)``, and
            ``by_label(label)`` — both :class:`~repro.serving.store.LinkageStore`
            and :class:`~repro.core.linkage.LinkageDatabase` qualify;
            incremental :meth:`refresh` additionally needs the store's
            ``segment_slice``/``segment_digests`` surface.
        shard_threshold: labels with fewer records stay brute-force.
        buckets_per_shard: number of k-means buckets, or ``None`` for
            ``ceil(sqrt(n))`` per shard.
        probes: ``None`` for the exact bound-pruned mode (recall 1.0);
            an integer for approximate probing (recall >= ``RECALL_FLOOR``
            on clustered data with default build parameters).
        seed: k-means initialisation seed (build is deterministic).
        max_segments: per-query segment fan-out bound; the compactor
            merges the cheapest adjacent pair whenever it is exceeded.
        compaction_interval_s: background compactor poll interval.
        compaction_rows_per_s: optional rate limit on compaction work so
            merges never starve foreground queries of CPU.
    """

    def __init__(self, store, shard_threshold: int = 2048,
                 buckets_per_shard: Optional[int] = None,
                 probes: Optional[int] = None, seed: int = 0,
                 kmeans_iterations: int = 6,
                 kmeans_sample: int = 20000,
                 max_segments: int = 8,
                 compaction_interval_s: float = 0.05,
                 compaction_rows_per_s: Optional[float] = None) -> None:
        if probes is not None and probes < 1:
            raise ConfigurationError("probes must be >= 1 (or None for exact)")
        if shard_threshold < 1:
            raise ConfigurationError("shard_threshold must be >= 1")
        if max_segments < 1:
            raise ConfigurationError("max_segments must be >= 1")
        self.store = store
        self.shard_threshold = shard_threshold
        self.buckets_per_shard = buckets_per_shard
        self.probes = probes
        self.seed = seed
        self.kmeans_iterations = kmeans_iterations
        self.kmeans_sample = kmeans_sample
        self.max_segments = max_segments
        self.compaction_interval_s = compaction_interval_s
        self.compaction_rows_per_s = compaction_rows_per_s
        self.built_version: Optional[int] = None
        self._built = False
        # The live generation: one attribute read pins a consistent
        # snapshot for a whole query — adoption swaps the reference
        # atomically under _mutate_lock, never mutates in place.
        self._generation: Optional[IndexGeneration] = None
        self._generations: "OrderedDict[str, IndexGeneration]" = OrderedDict()
        self._mutate_lock = threading.RLock()
        self._next_ordinal = 0
        # Work accounting the growth benchmarks assert on.
        self.full_builds = 0
        self.refreshes = 0
        self.compactions = 0
        self.compaction_crashes = 0
        self.compaction_failures = 0
        self.generation_adoptions = 0
        self.segments_built = 0
        self._crash_next_compaction = False
        self._compactor: Optional[threading.Thread] = None
        self._compact_stop = threading.Event()

    # -- build / refresh ---------------------------------------------------------

    def _build_params(self) -> SegmentBuildParams:
        return SegmentBuildParams(
            shard_threshold=self.shard_threshold,
            buckets_per_shard=self.buckets_per_shard,
            probes=self.probes,
            seed=self.seed,
            kmeans_iterations=self.kmeans_iterations,
            kmeans_sample=self.kmeans_sample,
        )

    def _segment_backed(self) -> bool:
        return hasattr(self.store, "segment_slice")

    def _adopt(self, segments, params: SegmentBuildParams) -> IndexGeneration:
        with self._mutate_lock:
            if self._segment_backed():
                store_version = (segments[-1].stop if segments else 0)
            else:
                store_version = getattr(self.store, "version", None)
            generation = IndexGeneration(
                segments, params, store_version=store_version,
                ordinal=self._next_ordinal,
            )
            self._next_ordinal += 1
            self._generations[generation.snapshot] = generation
            while len(self._generations) > _GENERATION_HISTORY:
                self._generations.popitem(last=False)
            self._generation = generation
            self.built_version = generation.store_version
            self._built = True
            self.generation_adoptions += 1
            return generation

    def build(self) -> "ShardedAnnIndex":
        """(Re)build from scratch: one segment covering the whole store.

        Kept for bootstrap and for genuine history rewrites; steady-state
        growth goes through :meth:`refresh` instead.
        """
        params = self._build_params()
        with self._mutate_lock:
            if self._segment_backed():
                total = len(self.store.segment_digests())
                segment = IndexSegment.build(self.store, 0, total, params)
                segments = (segment,) if total else ()
            else:
                segments = (self._database_segment(params),)
            self._adopt(segments, params)
            self.full_builds += 1
            self.segments_built += len(segments)
        return self

    def _database_segment(self, params: SegmentBuildParams) -> IndexSegment:
        """Monolithic pseudo-segment for in-memory LinkageDatabase stores."""
        shards: Dict[int, object] = {}
        rows = 0
        from repro.serving.segments import _cluster
        for label in self.store.labels():
            matrix, indices = self.store.by_label(label)
            matrix = np.ascontiguousarray(matrix, dtype=np.float32)
            index_array = np.asarray(indices, dtype=np.int64)
            if matrix.shape[0] <= params.shard_threshold:
                shards[int(label)] = _BruteShard(matrix, index_array)
            else:
                shards[int(label)] = _cluster(
                    matrix, index_array, params, params.seed + int(label)
                )
            rows += matrix.shape[0]
        return IndexSegment(
            start=0, stop=0, params=params, store_digests=(),
            shards=shards,
            label_presence={label: () for label in shards},
            rows=rows,
        )

    def refresh(self) -> bool:
        """Adopt newly committed store segments without a full rebuild.

        Verifies the covered history prefix first — a digest mismatch is
        a genuine rewrite and raises :class:`StaleIndexError`; benign
        growth builds index segments for the new store segments only and
        atomically adopts the extended generation. Returns ``True`` when
        a new generation was adopted.
        """
        if not self._segment_backed():
            raise ConfigurationError(
                "incremental refresh needs a segment-backed LinkageStore — "
                "rebuild in-memory database indexes with build()"
            )
        with self._mutate_lock:
            generation = self._generation
            if generation is None:
                raise QueryError("index not built — call build() first")
            problem = generation_lineage_error(generation, self.store)
            if problem is not None:
                raise StaleIndexError(problem)
            covered = generation.covered_store_segments
            total = len(self.store.segment_digests())
            if total == covered:
                return False
            segment = IndexSegment.build(
                self.store, covered, total, generation.params
            )
            self._adopt(generation.segments + (segment,), generation.params)
            self.refreshes += 1
            self.segments_built += 1
        return True

    def store_prefix_ok(self) -> bool:
        """Is the covered history still a committed prefix of the store?

        ``True`` means any staleness is benign growth (refresh repairs
        it); ``False`` means genuine divergence (integrity failure)."""
        generation = self._generation
        if generation is None or not self._segment_backed():
            return True
        try:
            return generation_lineage_error(generation, self.store) is None
        except Exception:
            return False

    # -- compaction --------------------------------------------------------------

    def _throttle(self) -> Optional[Callable[[int], None]]:
        rate = self.compaction_rows_per_s
        if not rate:
            return None
        state = {"start": time.perf_counter(), "rows": 0}

        def pace(rows: int) -> None:
            state["rows"] += rows
            target = state["start"] + state["rows"] / rate
            while not self._compact_stop.is_set():
                delay = target - time.perf_counter()
                if delay <= 0:
                    break
                time.sleep(min(delay, 0.05))

        return pace

    def _compact_step(self) -> bool:
        """One bounded unit of compaction; returns True if work was done.

        The merged segment is built *outside* the mutate lock (it can be
        rate-limited for seconds) and adopted under it only if the pair
        is still live — refresh appends at the tail, so positions of
        existing segments never shift underneath the build.
        """
        with self._mutate_lock:
            generation = self._generation
            if generation is None:
                return False
            pos = plan_merge(generation.segments, self.max_segments)
            if pos is None:
                return False
            left, right = generation.segments[pos], generation.segments[pos + 1]
            params = generation.params
        merged = merge_segments(self.store, left, right, params,
                                throttle=self._throttle())
        if self._crash_next_compaction:
            self._crash_next_compaction = False
            self.compaction_crashes += 1
            raise CompactionCrash(
                "injected compaction crash: merged segment built but not "
                "adopted — the live generation must be unaffected"
            )
        with self._mutate_lock:
            current = self._generation
            segs = list(current.segments)
            try:
                i = segs.index(left)
            except ValueError:
                return True  # pair superseded by a concurrent adoption
            if i + 1 >= len(segs) or segs[i + 1] is not right:
                return True
            segs[i:i + 2] = [merged]
            self._adopt(tuple(segs), params)
            self.compactions += 1
            self.segments_built += 1
        return True

    def compact_now(self, max_steps: Optional[int] = None) -> int:
        """Run compaction steps until fan-out is bounded; returns steps."""
        steps = 0
        while max_steps is None or steps < max_steps:
            if not self._compact_step():
                break
            steps += 1
        return steps

    def start_compaction(self) -> None:
        """Start the background merge thread (idempotent)."""
        with self._mutate_lock:
            if self._compactor is not None and self._compactor.is_alive():
                return
            self._compact_stop = threading.Event()
            self._compactor = threading.Thread(
                target=self._compaction_loop, name="index-compactor",
                daemon=True,
            )
            self._compactor.start()

    def stop_compaction(self) -> None:
        thread = self._compactor
        if thread is None:
            return
        self._compact_stop.set()
        thread.join(timeout=5.0)
        self._compactor = None

    def _compaction_loop(self) -> None:
        while not self._compact_stop.wait(self.compaction_interval_s):
            try:
                while not self._compact_stop.is_set():
                    if not self._compact_step():
                        break
            except CompactionCrash:
                # Counted at the raise site; the old generation is still
                # live, so the compactor simply tries again next tick.
                continue
            except Exception:
                self.compaction_failures += 1

    def inject_compaction_crash(self) -> None:
        """Arm a one-shot crash in the next compaction step (fault drill)."""
        self._crash_next_compaction = True

    # -- identity / integrity ----------------------------------------------------

    @property
    def snapshot_digest(self) -> Optional[str]:
        """Hex index-snapshot digest of the live generation."""
        generation = self._generation
        return None if generation is None else generation.snapshot

    @property
    def covered_store_segments(self) -> Optional[int]:
        """Store segments the live generation covers (None before build).

        This — not the store's manifest version counter — is the scale
        growth and rewrite checks compare on: the two coincide today only
        because ``version`` increments exactly once per append, and any
        future non-append manifest bump would silently skew a
        version-based comparison."""
        generation = self._generation
        return (None if generation is None
                else generation.covered_store_segments)

    def generation(self, snapshot: str) -> Optional[IndexGeneration]:
        """Look up a recently adopted generation by its snapshot digest."""
        # _adopt move_to_end/popitem()s this OrderedDict under the mutate
        # lock; take the same (re-entrant) lock here rather than leaning
        # on CPython GIL atomicity for a concurrent get.
        with self._mutate_lock:
            return self._generations.get(snapshot)

    def label_digest(self, label: int) -> Optional[str]:
        """Per-label content digest (cache key), or None if unindexed.

        Derived from the store segments holding the label — compaction
        re-partitions index segments without moving it, so cached answers
        for labels that gained no rows stay warm across growth."""
        generation = self._generation
        if generation is None:
            return None
        return generation.label_digests.get(int(label))

    def verify_checksums(self) -> None:
        """Re-verify every shard matrix against its build-time checksum.

        Raises :class:`~repro.errors.IndexIntegrityError` on drift. This
        is the replica-side defence against silent in-memory corruption:
        the mmap store has content-addressed segment digests, but the
        index's private matrix copies do not — a flipped byte here would
        otherwise shift distances and quietly reorder top-k answers."""
        generation = self._generation
        if generation is not None:
            generation.verify_checksums()

    @property
    def dimension(self) -> Optional[int]:
        """Fingerprint dimension this index serves (None before build)."""
        dim = getattr(self.store, "dimension", None)
        if dim is not None:
            return int(dim)
        generation = self._generation
        if generation is not None:
            for seg in generation.segments:
                for shard in seg.shards.values():
                    return int(shard.matrix.shape[1])
        return None

    # -- search ------------------------------------------------------------------

    def shard_kind(self, label: int) -> str:
        generation = self._generation
        if generation is None:
            return "missing"
        kinds = set()
        for seg in generation.segments:
            shard = seg.shards.get(int(label))
            if shard is not None:
                kinds.add("brute" if isinstance(shard, _BruteShard)
                          else "clustered")
        if not kinds:
            return "missing"
        return kinds.pop() if len(kinds) == 1 else "mixed"

    def labels(self) -> List[int]:
        generation = self._generation
        return [] if generation is None else generation.labels()

    def _shard_for(self, label: int):
        generation = self._generation
        if generation is None:
            raise QueryError(
                f"no training fingerprints indexed for label {label}"
            )
        return generation.shard_for(label)

    def search_batch(self, batch: np.ndarray, label: int,
                     k: int = 9) -> ShardSearchResult:
        """Answer a coalesced same-label batch with one vectorized pass.

        Snapshot-isolated: the generation is pinned by a single atomic
        read, so concurrent refresh/compaction cannot change this
        query's answer set mid-flight. Benign growth never raises —
        only a store history *rewrite* under the covered prefix does,
        and that is detected at refresh/health-sweep time."""
        generation = self._generation
        if generation is None:
            raise QueryError("index not built — call build() first")
        if k < 1:
            raise QueryError("k must be >= 1")
        if self._segment_backed():
            # Compare covered-segment counts, not the manifest version
            # counter: a non-append version bump (format migration,
            # reseal, metadata rewrite) must neither strand the index as
            # permanently "behind" nor mask a genuine history truncation.
            total = getattr(self.store, "segment_count", None)
            if total is None:
                total = len(self.store.segment_digests())
            if int(total) < generation.covered_store_segments:
                raise StaleIndexError(
                    f"store history went backwards under the index: the "
                    f"generation covers {generation.covered_store_segments} "
                    f"store segments but the store holds {int(total)} — "
                    "rewrite, not growth"
                )
        else:
            store_version = getattr(self.store, "version", None)
            if (store_version is not None
                    and generation.store_version is not None
                    and store_version < generation.store_version):
                raise StaleIndexError(
                    f"store history went backwards under the index: built "
                    f"against version {generation.store_version} but the "
                    f"store reports {store_version} — rewrite, not growth"
                )
        batch = np.asarray(batch, dtype=np.float32)
        batch = batch.reshape(batch.shape[0] if batch.ndim > 1 else 1, -1)
        dimension = self.dimension
        if dimension is not None and batch.shape[1] != dimension:
            raise QueryError(
                f"fingerprint dimension {batch.shape[1]} does not match "
                f"index dimension {dimension}"
            )
        return generation.search_batch(batch, label, k, self.probes)

    def search(self, fingerprint: np.ndarray, label: int,
               k: int = 9) -> List[IndexHit]:
        """Single-query convenience wrapper around :meth:`search_batch`."""
        return self.search_batch(
            np.asarray(fingerprint, dtype=np.float32).reshape(1, -1), label, k
        ).hits[0]

    def stats(self) -> Dict[str, object]:
        """Per-shard composition summary (for CLI / telemetry surfaces)."""
        generation = self._generation
        shards: Dict[int, Dict[str, object]] = {}
        if generation is not None:
            for label in generation.labels():
                per = [seg.shards[label] for seg in generation.segments
                       if label in seg.shards]
                kind = self.shard_kind(label)
                entry: Dict[str, object] = {
                    "rows": generation.count(label),
                    "kind": kind,
                    "segments": len(per),
                }
                clustered = [s for s in per
                             if isinstance(s, _ClusteredShard)]
                if clustered and kind in ("clustered", "mixed"):
                    entry["buckets"] = sum(len(s.buckets) for s in clustered)
                    entry["mean_radius"] = float(np.mean(
                        np.concatenate([s.radii for s in clustered])
                    ))
                shards[int(label)] = entry
        return {
            "labels": len(shards),
            "mode": "exact" if self.probes is None else f"probes={self.probes}",
            "built_version": self.built_version,
            "segments": 0 if generation is None else generation.segment_count,
            "generation": None if generation is None else generation.ordinal,
            "snapshot": None if generation is None else generation.snapshot,
            "shards": shards,
        }
