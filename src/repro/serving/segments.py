"""Immutable LSM-style index segments and snapshot-isolated generations.

The monolithic ``ShardedAnnIndex`` rebuild punished benign ingest growth
exactly like corruption: one committed store segment bumped
``LinkageStore.version`` and every replica failed closed with
:class:`~repro.errors.StaleIndexError`. This module makes the index
incremental instead:

* an :class:`IndexSegment` is an immutable per-label shard set built from
  a contiguous run of committed :class:`~repro.serving.store.LinkageStore`
  segments, content-addressed over the store-segment digests it covers
  plus the :class:`SegmentBuildParams` that shaped it;
* an :class:`IndexGeneration` is an ordered, contiguous tuple of index
  segments committed by an **index-snapshot digest**
  (ordered covered store digests ⊕ ordered index-segment digests ⊕ build
  params) — the serving-side analogue of the content-addressed
  ``dataset_id`` idiom: a replica can prove exactly which data generation
  answered a query, and the cluster can re-derive the digest from the
  authoritative store without trusting the replica;
* queries pin the generation they started on (snapshot isolation — a
  concurrent refresh or compaction never changes an in-flight answer),
  and :func:`plan_merge` + :func:`merge_segments` give the background
  compactor bounded, rate-limitable work units that keep per-query
  segment fan-out — and therefore p99 — bounded during growth storms.

Exact-mode parity with a from-scratch build is structural, not
statistical: per-pair L2 distances do not depend on how the row matrix is
partitioned, each shard returns its top-k sorted stably by (distance,
ascending global index), and the k-way merge re-sorts by the same key —
so membership *and* tie-break ordering are bitwise identical to brute
force over the union.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial.distance import cdist

from repro.errors import ConfigurationError, IndexIntegrityError, QueryError
from repro.utils.serialization import canonical_digest

__all__ = [
    "IndexHit", "ShardSearchResult", "SegmentBuildParams", "IndexSegment",
    "IndexGeneration", "plan_merge", "merge_segments",
    "generation_lineage_error",
]


class IndexHit(NamedTuple):
    """One nearest-neighbour hit: global record index + exact L2 distance."""

    index: int
    distance: float


@dataclass
class ShardSearchResult:
    """Results for one batched search plus work accounting.

    ``shard_rows`` is the number of rows a brute-force scan of the label
    would have touched *in the answering snapshot* — when a label holds
    fewer than ``requested_k`` rows the answer is legitimately short, and
    carrying both numbers makes that explicit instead of leaving callers
    to assume ``len(hits) == k``. ``snapshot`` is the index-snapshot hex
    digest of the generation that answered (``None`` for bare shards).
    """

    hits: List[List[IndexHit]]
    candidates_scanned: int  # exact distance evaluations performed
    shard_rows: int          # label rows in the answering snapshot
    requested_k: Optional[int] = None
    snapshot: Optional[str] = None


@dataclass(frozen=True)
class SegmentBuildParams:
    """Everything that shapes a build, hashed into every segment digest.

    Two segments over the same store rows with the same params are
    byte-equivalent answers; a params change is a new content address,
    never a silent in-place change.
    """

    shard_threshold: int = 2048
    buckets_per_shard: Optional[int] = None
    probes: Optional[int] = None
    seed: int = 0
    kmeans_iterations: int = 6
    kmeans_sample: int = 20000

    def __post_init__(self) -> None:
        if self.probes is not None and self.probes < 1:
            raise ConfigurationError("probes must be >= 1 (or None for exact)")
        if self.shard_threshold < 1:
            raise ConfigurationError("shard_threshold must be >= 1")

    def payload(self) -> Dict[str, object]:
        return {
            "shard_threshold": int(self.shard_threshold),
            "buckets_per_shard": (None if self.buckets_per_shard is None
                                  else int(self.buckets_per_shard)),
            "probes": None if self.probes is None else int(self.probes),
            "seed": int(self.seed),
            "kmeans_iterations": int(self.kmeans_iterations),
            "kmeans_sample": int(self.kmeans_sample),
        }

    def digest(self) -> str:
        return canonical_digest({"index-build-params": self.payload()}).hex()


# -- per-label shards (the leaf search structures) ------------------------------


class _BruteShard:
    def __init__(self, matrix: np.ndarray, indices: np.ndarray) -> None:
        self.matrix = matrix
        self.indices = indices

    @property
    def rows(self) -> int:
        return self.matrix.shape[0]

    def search(self, batch: np.ndarray, k: int) -> ShardSearchResult:
        k_eff = min(k, self.rows)
        distances = cdist(batch, self.matrix)
        order = np.argsort(distances, axis=1, kind="stable")[:, :k_eff]
        hits = [
            [IndexHit(int(self.indices[column]), float(distances[row, column]))
             for column in order[row]]
            for row in range(batch.shape[0])
        ]
        return ShardSearchResult(
            hits=hits,
            candidates_scanned=batch.shape[0] * self.rows,
            shard_rows=self.rows,
            requested_k=k,
        )


class _ClusteredShard:
    """Coarse k-means buckets over one label's fingerprints.

    Rows inside the concatenated bucket layout are scanned ascending by
    global index, so a stable argsort over candidate distances tie-breaks
    identically to brute force over the full shard.
    """

    def __init__(self, matrix: np.ndarray, indices: np.ndarray,
                 centroids: np.ndarray, buckets: List[np.ndarray],
                 radii: np.ndarray) -> None:
        self.matrix = matrix
        self.indices = indices
        self.centroids = centroids
        self.buckets = buckets  # per bucket: row ids into matrix, ascending
        self.radii = radii
        self.sizes = np.array([len(b) for b in buckets], dtype=np.int64)

    @property
    def rows(self) -> int:
        return self.matrix.shape[0]

    def _candidate_mask(self, dc: np.ndarray, k: int,
                        probes: Optional[int]) -> np.ndarray:
        """(q, m) bool — which buckets each query must scan."""
        q = dc.shape[0]
        m = len(self.buckets)
        k_eff = min(k, self.rows)
        if probes is not None:
            # Approximate: the `probes` nearest centroids, expanded per
            # query until at least k candidates are reachable.
            order = np.argsort(dc, axis=1, kind="stable")
            mask = np.zeros((q, m), dtype=bool)
            for row in range(q):
                needed = 0
                taken = 0
                for bucket in order[row]:
                    if taken >= probes and needed >= k_eff:
                        break
                    mask[row, bucket] = True
                    needed += self.sizes[bucket]
                    taken += 1
            return mask
        # Exact: bound the k-th nearest distance from above with the
        # smallest-upper-bound buckets jointly holding >= k points, then
        # keep every bucket whose lower bound does not exceed it.
        upper = dc + self.radii[None, :]
        lower = np.maximum(dc - self.radii[None, :], 0.0)
        order = np.argsort(upper, axis=1, kind="stable")
        cum = np.cumsum(self.sizes[order], axis=1)
        # First column where the cumulative bucket population reaches k.
        first = np.argmax(cum >= k_eff, axis=1)
        ub_k = upper[np.arange(q), order[np.arange(q), first]]
        return lower <= ub_k[:, None]

    def search(self, batch: np.ndarray, k: int,
               probes: Optional[int]) -> ShardSearchResult:
        k_eff = min(k, self.rows)
        dc = cdist(batch, self.centroids)
        mask = self._candidate_mask(dc, k, probes)
        union_buckets = np.flatnonzero(mask.any(axis=0))
        # One vectorized distance computation over the union of candidates,
        # with rows sorted ascending so stable ties match brute force.
        union_rows = np.sort(
            np.concatenate([self.buckets[b] for b in union_buckets])
        )
        bucket_of_row = np.empty(self.rows, dtype=np.int64)
        for bucket, rows in enumerate(self.buckets):
            bucket_of_row[rows] = bucket
        union_bucket_ids = bucket_of_row[union_rows]
        distances = cdist(batch, self.matrix[union_rows])
        hits: List[List[IndexHit]] = []
        scanned = 0
        for row in range(batch.shape[0]):
            columns = np.flatnonzero(mask[row][union_bucket_ids])
            scanned += columns.shape[0]
            own = distances[row, columns]
            take = min(k_eff, columns.shape[0])
            order = np.argsort(own, kind="stable")[:take]
            rows_hit = union_rows[columns[order]]
            hits.append([
                IndexHit(int(self.indices[r]), float(d))
                for r, d in zip(rows_hit, own[order])
            ])
        return ShardSearchResult(hits=hits, candidates_scanned=scanned,
                                 shard_rows=self.rows, requested_k=k)


def _cluster(matrix: np.ndarray, indices: np.ndarray,
             params: SegmentBuildParams, seed: int) -> _ClusteredShard:
    n = matrix.shape[0]
    m = params.buckets_per_shard or int(np.ceil(np.sqrt(n)))
    m = max(1, min(m, n))
    rng = np.random.default_rng(seed)
    # Lloyd iterations on a subsample keep builds linear-ish in n.
    fit_rows = (
        rng.choice(n, size=params.kmeans_sample, replace=False)
        if n > params.kmeans_sample else np.arange(n)
    )
    fit = matrix[fit_rows]
    m = min(m, fit.shape[0])
    centroids = fit[rng.choice(fit.shape[0], size=m, replace=False)].copy()
    for _ in range(params.kmeans_iterations):
        assign = np.argmin(cdist(fit, centroids), axis=1)
        for bucket in range(m):
            members = fit[assign == bucket]
            if members.shape[0]:
                centroids[bucket] = members.mean(axis=0)
            else:
                centroids[bucket] = fit[rng.integers(fit.shape[0])]
    assign = np.argmin(cdist(matrix, centroids), axis=1)
    buckets: List[np.ndarray] = []
    radii = np.zeros(m, dtype=np.float64)
    keep: List[int] = []
    for bucket in range(m):
        rows = np.flatnonzero(assign == bucket)
        if rows.shape[0] == 0:
            continue
        keep.append(bucket)
        buckets.append(rows)
        deltas = matrix[rows] - centroids[bucket]
        radii[bucket] = float(np.sqrt((deltas * deltas).sum(axis=1)).max())
    centroids = centroids[keep]
    radii = radii[keep]
    return _ClusteredShard(matrix, indices, centroids, buckets, radii)


def _checksum(matrix: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(matrix).tobytes())


# -- immutable index segments ---------------------------------------------------


class IndexSegment:
    """Per-label shards over store segments ``[start, stop)``, immutable.

    Content-addressed: ``digest`` commits to the ordered store-segment
    digests covered and the build params, so two replicas that built the
    same rows the same way produce the same address — and a replica
    cannot claim coverage it does not have without the cluster's
    recomputation catching it.
    """

    __slots__ = ("start", "stop", "params", "store_digests", "shards",
                 "label_presence", "rows", "digest", "checksums")

    def __init__(self, start: int, stop: int, params: SegmentBuildParams,
                 store_digests: Tuple[str, ...],
                 shards: Dict[int, object],
                 label_presence: Dict[int, Tuple[str, ...]],
                 rows: int) -> None:
        self.start = start
        self.stop = stop
        self.params = params
        self.store_digests = store_digests
        self.shards = shards
        self.label_presence = label_presence
        self.rows = rows
        self.digest = canonical_digest({
            "index-segment": {
                "store": list(store_digests),
                "params": params.payload(),
            }
        }).hex()
        self.checksums = {label: _checksum(shard.matrix)
                          for label, shard in shards.items()}

    @classmethod
    def build(cls, store, start: int, stop: int, params: SegmentBuildParams,
              throttle: Optional[Callable[[int], None]] = None
              ) -> "IndexSegment":
        """Build one immutable segment from store segments ``[start, stop)``.

        ``throttle`` (rows-processed callback) lets the background
        compactor pace itself so foreground query latency stays bounded.
        """
        parts = [store.segment_slice(pos, pos + 1)
                 for pos in range(start, stop)]
        store_digests = tuple(p[3][0] for p in parts)
        presence: Dict[int, List[str]] = {}
        for (_, part_labels, _, part_digests) in parts:
            for label in np.unique(part_labels):
                presence.setdefault(int(label), []).append(part_digests[0])
        if parts:
            matrix = np.concatenate([p[0] for p in parts])
            labels = np.concatenate([p[1] for p in parts])
            indices = np.concatenate([p[2] for p in parts])
        else:
            dim = getattr(store, "dimension", None) or 0
            matrix = np.zeros((0, dim), dtype=np.float32)
            labels = np.zeros(0, dtype=np.int64)
            indices = np.zeros(0, dtype=np.int64)
        shards: Dict[int, object] = {}
        for label in np.unique(labels):
            rows = np.flatnonzero(labels == label)
            sub = np.ascontiguousarray(matrix[rows], dtype=np.float32)
            idx = np.ascontiguousarray(indices[rows])
            if sub.shape[0] <= params.shard_threshold:
                shards[int(label)] = _BruteShard(sub, idx)
            else:
                # Seeded by (base seed, label, covering start) so a full
                # build starting at 0 reproduces the legacy clustering
                # bit-for-bit while distinct segments stay decorrelated.
                shards[int(label)] = _cluster(
                    sub, idx, params, params.seed + int(label) + start
                )
            if throttle is not None:
                throttle(int(sub.shape[0]))
        return cls(
            start=start, stop=stop, params=params,
            store_digests=store_digests, shards=shards,
            label_presence={lab: tuple(d) for lab, d in presence.items()},
            rows=int(matrix.shape[0]),
        )

    def count(self, label: int) -> int:
        shard = self.shards.get(int(label))
        return 0 if shard is None else shard.rows

    def labels(self) -> List[int]:
        return sorted(self.shards)

    def search_label(self, batch: np.ndarray, label: int, k: int,
                     probes: Optional[int]) -> Optional[ShardSearchResult]:
        shard = self.shards.get(int(label))
        if shard is None:
            return None
        if isinstance(shard, _BruteShard):
            return shard.search(batch, k)
        return shard.search(batch, k, probes)

    def verify_checksums(self) -> None:
        """Raise :class:`IndexIntegrityError` if any shard matrix drifted."""
        for label, shard in self.shards.items():
            recorded = self.checksums.get(label)
            if recorded is None or _checksum(shard.matrix) != recorded:
                raise IndexIntegrityError(
                    f"index segment [{self.start},{self.stop}) shard for "
                    f"label {label} failed its checksum — matrix drifted "
                    "since build"
                )


# -- generations (the snapshot-isolation unit) ----------------------------------


def _snapshot_digest(covered: Sequence[str], segment_digests: Sequence[str],
                     params: SegmentBuildParams) -> str:
    return canonical_digest({
        "index-snapshot": {
            "store": list(covered),
            "segments": list(segment_digests),
            "params": params.payload(),
        }
    }).hex()


class IndexGeneration:
    """An immutable, ordered, contiguous set of index segments.

    A query pins the generation it started on — refresh/compaction adopt
    a *new* generation object atomically, never mutate this one — so an
    in-flight answer is always consistent with exactly one committed
    store prefix, named by ``snapshot``.
    """

    __slots__ = ("segments", "params", "store_version", "ordinal",
                 "covered_digests", "snapshot", "label_rows",
                 "label_digests", "rows")

    def __init__(self, segments: Sequence[IndexSegment],
                 params: SegmentBuildParams,
                 store_version: Optional[int], ordinal: int = 0) -> None:
        segs = tuple(segments)
        expected = 0
        for seg in segs:
            if seg.start != expected:
                raise ConfigurationError(
                    f"index segments are not contiguous: expected start "
                    f"{expected}, got [{seg.start},{seg.stop})"
                )
            expected = seg.stop
        self.segments = segs
        self.params = params
        self.store_version = store_version
        self.ordinal = ordinal
        self.covered_digests: Tuple[str, ...] = tuple(
            d for seg in segs for d in seg.store_digests
        )
        self.snapshot = _snapshot_digest(
            self.covered_digests, [seg.digest for seg in segs], params
        )
        rows_by_label: Dict[int, int] = {}
        sources: Dict[int, List[str]] = {}
        for seg in segs:
            for label, shard in seg.shards.items():
                rows_by_label[label] = rows_by_label.get(label, 0) + shard.rows
            for label, digests in seg.label_presence.items():
                sources.setdefault(label, []).extend(digests)
        self.label_rows = rows_by_label
        # Per-label content digest: derived from the *store* segments
        # holding the label (not the index segmentation), so compaction
        # re-partitions segments without disturbing cache keys, and a
        # label's digest moves only when that label actually gains rows.
        self.label_digests = {
            label: canonical_digest({
                "index-label": {
                    "label": int(label),
                    "store": digests,
                    "params": params.payload(),
                }
            }).hex()
            for label, digests in sources.items()
        }
        self.rows = sum(seg.rows for seg in segs)

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    @property
    def covered_store_segments(self) -> int:
        return self.segments[-1].stop if self.segments else 0

    def labels(self) -> List[int]:
        return sorted(self.label_rows)

    def count(self, label: int) -> int:
        return self.label_rows.get(int(label), 0)

    def search_batch(self, batch: np.ndarray, label: int, k: int,
                     probes: Optional[int]) -> ShardSearchResult:
        """Search every segment holding ``label`` and k-way merge.

        Exactness of the merge: each per-segment result is the stable
        top-k of its own rows sorted by (distance, ascending global
        index); global indices are disjoint across segments and ascend
        within each, so re-sorting the union of per-segment top-k by the
        same key reproduces brute force over all rows — membership and
        tie-break order both.
        """
        label = int(label)
        results = [r for r in (seg.search_label(batch, label, k, probes)
                               for seg in self.segments) if r is not None]
        if not results:
            raise QueryError(
                f"no training fingerprints indexed for label {label}"
            )
        total_rows = self.label_rows[label]
        if len(results) == 1:
            only = results[0]
            only.shard_rows = total_rows
            only.requested_k = k
            only.snapshot = self.snapshot
            return only
        k_eff = min(k, total_rows)
        merged: List[List[IndexHit]] = []
        for row in range(batch.shape[0] if batch.ndim > 1 else 1):
            per_segment = [r.hits[row] for r in results]
            best = heapq.merge(
                *per_segment, key=lambda hit: (hit.distance, hit.index)
            )
            merged.append([IndexHit(int(h.index), float(h.distance))
                           for _, h in zip(range(k_eff), best)])
        return ShardSearchResult(
            hits=merged,
            candidates_scanned=sum(r.candidates_scanned for r in results),
            shard_rows=total_rows,
            requested_k=k,
            snapshot=self.snapshot,
        )

    def shard_for(self, label: int):
        """First shard holding ``label`` (chaos/corruption drills poke it)."""
        for seg in self.segments:
            shard = seg.shards.get(int(label))
            if shard is not None:
                return shard
        raise QueryError(f"no training fingerprints indexed for label {label}")

    def verify_checksums(self) -> None:
        for seg in self.segments:
            seg.verify_checksums()


# -- compaction planning --------------------------------------------------------


def plan_merge(segments: Sequence[IndexSegment],
               max_segments: int) -> Optional[int]:
    """Pick the adjacent pair to merge, or ``None`` if fan-out is fine.

    Returns the left position ``i`` of the cheapest adjacent pair
    ``(i, i+1)`` by combined row count — classic LSM smallest-first, one
    bounded unit of work per call so the compactor stays preemptible.
    """
    if max_segments < 1:
        raise ConfigurationError("max_segments must be >= 1")
    if len(segments) <= max_segments:
        return None
    costs = [segments[i].rows + segments[i + 1].rows
             for i in range(len(segments) - 1)]
    return int(np.argmin(costs))


def merge_segments(store, left: IndexSegment, right: IndexSegment,
                   params: SegmentBuildParams,
                   throttle: Optional[Callable[[int], None]] = None
                   ) -> IndexSegment:
    """Rebuild ``[left.start, right.stop)`` as one segment from the store."""
    if left.stop != right.start:
        raise ConfigurationError(
            f"cannot merge non-adjacent segments [{left.start},{left.stop}) "
            f"and [{right.start},{right.stop})"
        )
    return IndexSegment.build(store, left.start, right.stop, params,
                              throttle=throttle)


# -- lineage verification (shared by the cluster and the promotion gate) --------


def generation_lineage_error(generation: IndexGeneration,
                             store) -> Optional[str]:
    """Walk a generation's lineage against the authoritative store.

    Returns ``None`` when the generation is exactly a committed prefix of
    the store's history and its snapshot digest recomputes from its
    parts; otherwise a human-readable description of the first problem.
    The caller chooses the failure type (cluster: integrity eviction;
    promotion gate: refusal)."""
    if hasattr(store, "segment_digests"):
        authoritative = list(store.segment_digests())
    else:
        authoritative = [info.digest for info in store.segments]
    covered = generation.covered_digests
    if len(covered) > len(authoritative):
        return (f"index covers {len(covered)} store segments but the store "
                f"has only {len(authoritative)}")
    for pos, (claimed, actual) in enumerate(zip(covered, authoritative)):
        if claimed != actual:
            return (f"store segment {pos} digest mismatch: index built "
                    f"against {claimed[:12]}… but the store holds "
                    f"{actual[:12]}… (history rewrite, not growth)")
    recomputed = _snapshot_digest(
        covered, [seg.digest for seg in generation.segments],
        generation.params,
    )
    if recomputed != generation.snapshot:
        return ("index-snapshot digest does not recompute from its parts — "
                "forged or corrupted generation identity")
    return None
