"""Self-healing replicated serving: deadlines, hedging, breakers, failover.

One :class:`~repro.serving.engine.ServingEngine` is a single point of
failure on an untrusted host: the process can crash, a worker can wedge,
the in-memory index can rot, and a caller has no recourse beyond waiting.
:class:`ServingCluster` runs N engine replicas over the *same* promoted
:class:`~repro.serving.store.LinkageStore` and fronts them with a router
whose job is to keep the accountability plane answering — correctly —
while the host misbehaves:

* **per-request deadlines** — every query carries one end-to-end budget;
  all retries, hedges, and fallbacks spend from it;
* **bounded retry with jittered backoff** — retryable failures (crash,
  wedge, staleness, backpressure) move the query to another replica;
  backpressure honours the engine's ``retry_after_s`` hint;
* **hedged requests** — when a reply takes longer than the rolling p99,
  a second replica gets the same query and the first answer wins;
* **per-replica circuit breakers** — repeated failures open the breaker
  so a sick replica stops eating deadline budget; a half-open probe lets
  it back in once it recovers;
* **load shedding** — a cluster-wide in-flight bound rejects excess
  work with a typed, ``retry_after_s``-carrying
  :class:`~repro.errors.QueryRejected` instead of letting queues melt;
* **answer verification** — every hit a replica returns is re-checked
  against the authoritative mmap store (distance recomputation via
  :meth:`LinkageStore.fingerprint_at`), and every answer's provenance
  claims (hit count vs label rows, cited index snapshot) are verified
  with a cached lineage walk; a mismatch is index corruption and evicts
  the replica fail-closed;
* **incremental refresh, not eviction, on benign growth** — appends to
  the shared store leave each replica's pinned generation valid for the
  prefix it covers; the health sweep adopts new segments via staggered
  :meth:`ServingCluster.refresh` (at most ``refresh_stagger`` replicas
  per sweep), and eviction for staleness is reserved for genuine history
  rewrites (:meth:`ShardedAnnIndex.store_prefix_ok` returning False);
* **health sweeps + self-healing** — a background monitor re-verifies
  each replica's audit-chain suffix and index shard checksums, evicts
  failed replicas, and revives them: re-open the store from disk
  (fail-closed on torn manifests), re-run the promotion
  ``serving_verifier`` walk, rebuild the index, probe, rejoin;
* **audited graceful degradation** — with no healthy replica the router
  answers by exact brute-force over the verified store, flags the result
  ``degraded=True``, and records it in the cluster's hash-chained audit
  log. Wrong or stale answers are never an option; refusing
  (:class:`~repro.errors.NoHealthyReplica`) is the last resort.

The degraded path matters for the trust story: replicas are *untrusted*
accelerators over the sealed store — the store's content-addressed
segments are the root of trust. Degraded mode drops the accelerator and
reads the sealed bytes directly (after a fail-closed ``verify()``), so
availability never comes at the price of integrity.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import wait as futures_wait
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.audit import AuditLog
from repro.errors import (ConfigurationError, DeadlineExceeded,
                          IndexIntegrityError, NoHealthyReplica, QueryError,
                          QueryRejected, ServingError, StaleIndexError,
                          StoreError)
from repro.serving.engine import EngineConfig, ServingEngine
from repro.serving.index import IndexHit, ShardedAnnIndex
from repro.serving.segments import generation_lineage_error
from repro.serving.store import LinkageStore
from repro.serving.telemetry import ClusterTelemetry, ServingTelemetry
from repro.utils.serialization import canonical_digest

__all__ = ["ClusterConfig", "CircuitBreaker", "ClusterResult",
           "ServingReplica", "ServingCluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Tuning knobs for the replicated serving cluster."""

    deadline_s: float = 2.0        # default end-to-end budget per query
    max_retries: int = 2           # failovers per query beyond the first try
    backoff_base_s: float = 0.02   # exponential backoff base
    backoff_cap_s: float = 0.25    # backoff ceiling
    jitter_seed: int = 0           # deterministic backoff jitter
    hedge_min_s: float = 0.05      # hedge delay floor (and pre-warm value)
    latency_window: int = 512      # rolling latencies for the p99 estimate
    hedging: bool = True           # launch p99-triggered hedged requests
    breaker_threshold: int = 3     # consecutive failures that open a breaker
    breaker_reset_s: float = 1.0   # open -> half-open probe interval
    max_in_flight: int = 256       # cluster-wide load-shedding bound
    health_interval_s: float = 0.25  # background health-sweep period
    probe_timeout_s: float = 1.0   # revival probe budget
    verify_hits: bool = True       # recompute each hit against the store
    verify_tolerance: float = 1e-3  # relative distance tolerance
    degraded_allowed: bool = True  # audited brute-force fallback
    revive: bool = True            # background revival of evicted replicas
    stop_timeout_s: float = 1.0    # bound on per-engine eviction/stop drains
    auto_refresh: bool = True      # health sweeps adopt store growth
    refresh_stagger: int = 1       # replicas refreshed per sweep (at most)

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base_s <= 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ConfigurationError(
                "backoff_base_s must be positive and <= backoff_cap_s")
        if self.hedge_min_s <= 0:
            raise ConfigurationError("hedge_min_s must be positive")
        if self.latency_window < 1:
            raise ConfigurationError("latency_window must be >= 1")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")
        if self.breaker_reset_s <= 0:
            raise ConfigurationError("breaker_reset_s must be positive")
        if self.max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be >= 1")
        if self.health_interval_s <= 0:
            raise ConfigurationError("health_interval_s must be positive")
        if self.probe_timeout_s <= 0:
            raise ConfigurationError("probe_timeout_s must be positive")
        if self.verify_tolerance <= 0:
            raise ConfigurationError("verify_tolerance must be positive")
        if self.stop_timeout_s <= 0:
            raise ConfigurationError("stop_timeout_s must be positive")
        if self.refresh_stagger < 1:
            raise ConfigurationError("refresh_stagger must be >= 1")


class CircuitBreaker:
    """Per-replica breaker: closed -> open on consecutive failures,
    half-open single probe after ``reset_s``, closed again on success."""

    def __init__(self, threshold: int, reset_s: float,
                 clock: Callable[[], float]) -> None:
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.reset_s:
                    self._state = "half-open"
                    self._probing = True
                    return True
                return False
            # half-open: exactly one in-flight probe at a time
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"
            self._probing = False

    def record_failure(self) -> bool:
        """Returns True if this failure (re)opened the breaker."""
        with self._lock:
            self._failures += 1
            was_open = self._state == "open"
            if self._state == "half-open" or self._failures >= self.threshold:
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False
            return self._state == "open" and not was_open

    def reset(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"
            self._probing = False


class _ReplicaIndex:
    """Fault-injectable wrapper around one replica's private index.

    This is the chaos surface: the cluster's fault plan can add latency,
    wedge searches until released, or flip bytes in a shard matrix —
    all scoped to one replica, never the shared store. Delegates every
    other attribute to the wrapped :class:`ShardedAnnIndex`, so the
    engine cannot tell the difference.
    """

    def __init__(self, inner: ShardedAnnIndex) -> None:
        self.inner = inner
        self._delay_s = 0.0
        self._wedged = False
        self._release = threading.Event()
        self._release.set()
        # Snapshot the three attributes the engine reads on EVERY submit
        # (dimension/staleness checks) as plain attributes: property-hop
        # delegation on the submit hot path is measurable router
        # overhead. build() refreshes them; the store handle is stable
        # for the life of the wrapper (store.version stays a live read).
        self.store = inner.store
        self._sync_snapshot()

    # -- chaos controls ----------------------------------------------------------

    def set_delay(self, delay_s: float) -> None:
        self._delay_s = max(0.0, float(delay_s))

    def wedge(self) -> None:
        self._wedged = True
        self._release.clear()

    def release_faults(self) -> None:
        self._delay_s = 0.0
        self._wedged = False
        self._release.set()

    def corrupt_row(self, label: int, row: int,
                    value: Optional[Sequence[float]] = None) -> None:
        """Flip one index row in place (replica-private matrix copy)."""
        shard = self.inner._shard_for(int(label))
        matrix = shard.matrix
        row = int(row) % matrix.shape[0]
        if value is not None:
            matrix[row] = np.asarray(value, dtype=np.float32)
        else:
            matrix[row] = matrix[row] + np.float32(1.0)

    # -- delegation --------------------------------------------------------------

    def search_batch(self, batch, label, k=9):
        if self._delay_s:
            time.sleep(self._delay_s)
        if self._wedged:
            self._release.wait()
        return self.inner.search_batch(batch, label, k)

    def build(self) -> "_ReplicaIndex":
        self.inner.build()
        self._sync_snapshot()
        return self

    def refresh(self) -> bool:
        changed = self.inner.refresh()
        self._sync_snapshot()
        return changed

    def _sync_snapshot(self) -> None:
        self.dimension = getattr(self.inner, "dimension", None)
        self.built_version = getattr(self.inner, "built_version", None)

    def verify_checksums(self) -> None:
        self.inner.verify_checksums()

    def __getattr__(self, name):
        return getattr(self.inner, name)


@dataclass
class ClusterResult:
    """One routed answer plus how the cluster obtained it."""

    hits: Tuple[IndexHit, ...]
    replica: Optional[str]     # None when served degraded
    degraded: bool = False
    hedged: bool = False       # a hedge was launched for this query
    failed_over: bool = False  # answered by other than the first replica
    retries: int = 0
    latency_s: float = 0.0


class ServingReplica:
    """One engine replica plus its health state, breaker, and audit mark."""

    def __init__(self, name: str, store: LinkageStore, index: _ReplicaIndex,
                 engine: ServingEngine, breaker: CircuitBreaker) -> None:
        self.name = name
        self.store = store
        self.index = index
        self.engine = engine
        self.breaker = breaker
        self.state = "healthy"          # healthy | evicted | reviving
        self.evicted_reason: Optional[str] = None
        self.last_revive_attempt = 0.0
        # Incremental audit verification mark: (events seen, chain head).
        self.audit_mark: Tuple[int, bytes] = (0, engine.audit.head)
        self.lock = threading.Lock()

    @property
    def healthy(self) -> bool:
        return self.state == "healthy"


class ServingCluster:
    """N replicated engines + the self-healing query router (see module
    docstring for the full availability contract)."""

    def __init__(self, store: LinkageStore, replicas: int = 3,
                 config: Optional[ClusterConfig] = None,
                 engine_config: Optional[EngineConfig] = None,
                 index_factory: Optional[Callable[..., ShardedAnnIndex]] = None,
                 promotion=None, promotion_verifier=None,
                 telemetry: Optional[ClusterTelemetry] = None,
                 tracer=None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if replicas < 1:
            raise ConfigurationError("a cluster needs at least one replica")
        self.store = store
        self.config = config or ClusterConfig()
        self.engine_config = engine_config or EngineConfig()
        self.index_factory = index_factory or (
            lambda s: ShardedAnnIndex(s)
        )
        self.promotion = promotion
        self.promotion_verifier = promotion_verifier
        self.telemetry = telemetry if telemetry is not None else ClusterTelemetry()
        self.tracer = tracer
        self.audit = AuditLog()  # notable routing events, hash-chained
        self._audit_lock = threading.Lock()
        self._clock = clock
        self._rng = random.Random(self.config.jitter_seed)
        self._rng_lock = threading.Lock()
        self._rr = itertools.count()
        self._latencies: "deque[float]" = deque(maxlen=self.config.latency_window)
        self._latency_lock = threading.Lock()
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        self._started = False
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        # Degraded-path cache: per-(label, store version) matrices, plus a
        # once-per-version fail-closed store verification flag.
        self._degraded_lock = threading.Lock()
        self._degraded_cache: Dict[Tuple[int, int], Tuple[np.ndarray, List[int]]] = {}
        self._degraded_verified_version: Optional[int] = None
        # Index snapshots whose lineage already verified against the
        # authoritative store — the per-answer check then costs one dict
        # hit instead of a digest walk. Content-addressed, so one entry
        # covers every replica serving the same generation.
        self._trusted_lock = threading.Lock()
        self._trusted_snapshots: "OrderedDict[str, bool]" = OrderedDict()
        self.replicas: List[ServingReplica] = [
            self._make_replica(f"replica-{i}", store) for i in range(replicas)
        ]

    # -- construction / lifecycle ------------------------------------------------

    def _make_replica(self, name: str, store: LinkageStore) -> ServingReplica:
        index = _ReplicaIndex(self.index_factory(store))
        engine = ServingEngine(
            index, config=self.engine_config,
            telemetry=ServingTelemetry(registry=self.telemetry.registry),
            promotion=self.promotion,
            promotion_verifier=self.promotion_verifier,
        )
        breaker = CircuitBreaker(self.config.breaker_threshold,
                                 self.config.breaker_reset_s, self._clock)
        return ServingReplica(name, store, index, engine, breaker)

    def _span(self, name: str, kind: str, **attrs):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, kind=kind, **attrs)

    def start(self) -> "ServingCluster":
        if self._started:
            raise ServingError("cluster already started")
        for replica in self.replicas:
            replica.index.build()
            replica.engine.start()
            self._start_compaction(replica)
            replica.audit_mark = (len(replica.engine.audit),
                                  replica.engine.audit.head)
        self._started = True
        self._monitor_stop.clear()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-health", daemon=True
        )
        self._monitor.start()
        self._audit_event("cluster-started", replicas=len(self.replicas))
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.config.stop_timeout_s * 2)
            self._monitor = None
        for replica in self.replicas:
            replica.index.release_faults()
            self._stop_compaction(replica)
            try:
                replica.engine.stop(
                    drain=True, drain_timeout=self.config.stop_timeout_s
                )
            except ServingError:
                pass  # abandoned futures already resolved with typed errors
        self._started = False
        self._audit_event("cluster-stopped")

    @staticmethod
    def _start_compaction(replica: ServingReplica) -> None:
        starter = getattr(replica.index, "start_compaction", None)
        if callable(starter):
            starter()

    @staticmethod
    def _stop_compaction(replica: ServingReplica) -> None:
        stopper = getattr(replica.index, "stop_compaction", None)
        if callable(stopper):
            stopper()

    def __enter__(self) -> "ServingCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- small shared helpers ----------------------------------------------------

    def _audit_event(self, kind: str, **details) -> None:
        with self._audit_lock:
            self.audit.append(kind, **details)

    def verify_audit_chain(self) -> bool:
        with self._audit_lock:
            return self.audit.verify_chain()

    def _record_latency(self, seconds: float) -> None:
        with self._latency_lock:
            self._latencies.append(seconds)

    def _hedge_delay(self) -> float:
        with self._latency_lock:
            n = len(self._latencies)
            if n < 20:
                return self.config.hedge_min_s
            ordered = sorted(self._latencies)
            p99 = ordered[min(n - 1, int(0.99 * (n - 1)) + 1)]
        return max(self.config.hedge_min_s, p99)

    def _backoff(self, attempt: int, hint: Optional[float] = None) -> float:
        base = min(self.config.backoff_cap_s,
                   self.config.backoff_base_s * (2 ** attempt))
        with self._rng_lock:
            jittered = base * (0.5 + 0.5 * self._rng.random())
        if hint is not None:
            jittered = max(jittered, hint)
        return min(jittered, self.config.backoff_cap_s)

    def _pick(self, exclude: frozenset) -> Optional[ServingReplica]:
        """Round-robin over healthy replicas whose breaker admits traffic."""
        candidates = [r for r in self.replicas
                      if r.healthy and r.name not in exclude]
        if not candidates:
            return None
        start = next(self._rr)
        for offset in range(len(candidates)):
            replica = candidates[(start + offset) % len(candidates)]
            if replica.breaker.allow():
                return replica
        return None

    # -- answer verification -----------------------------------------------------

    def _verify_snapshot_lineage(self, generation) -> None:
        """Walk a generation's lineage against the authoritative store.

        Verified snapshots are cached by digest (content-addressed, so
        one entry covers every replica serving the same generation);
        the walk itself recomputes the snapshot digest and checks the
        covered store digests are a committed prefix of the manifest."""
        snapshot = generation.snapshot
        with self._trusted_lock:
            if snapshot in self._trusted_snapshots:
                self._trusted_snapshots.move_to_end(snapshot)
                return
        problem = generation_lineage_error(generation, self.store)
        if problem is not None:
            self.telemetry.count("snapshot_failures")
            raise IndexIntegrityError(
                f"index snapshot failed the lineage walk: {problem}"
            )
        self.telemetry.count("snapshot_verifications")
        with self._trusted_lock:
            self._trusted_snapshots[snapshot] = True
            while len(self._trusted_snapshots) > 128:
                self._trusted_snapshots.popitem(last=False)

    def _verify_answer_meta(self, replica: ServingReplica, hits,
                            label: int, k: int) -> None:
        """Check an answer's provenance claims, not just its distances.

        * explicit hit count: ``len(hits)`` must equal
          ``min(k, label_rows)`` — a short shard is legitimate only when
          the answer *says* the label held fewer than ``k`` rows;
        * the claimed ``label_rows`` must match the cited generation and
          never exceed what the authoritative store holds;
        * the cited index snapshot must exist on the replica and pass
          the lineage walk against the store manifest."""
        label_rows = getattr(hits, "label_rows", None)
        if label_rows is not None and len(hits) != min(int(k),
                                                       int(label_rows)):
            self.telemetry.count("verify_failures")
            raise IndexIntegrityError(
                f"answer carries {len(hits)} hits but claims "
                f"{label_rows} rows for label {label} at k={k} — "
                "short or padded answer"
            )
        snapshot = getattr(hits, "snapshot", None)
        if snapshot is None:
            return
        lookup = getattr(replica.index, "generation", None)
        generation = lookup(snapshot) if callable(lookup) else None
        if generation is None:
            # The replica keeps only a bounded generation history, so an
            # answer produced just before many rapid adoptions can cite a
            # legitimately pruned snapshot. If the cluster already
            # lineage-verified that snapshot against the authoritative
            # store, the citation is proven without the replica — the
            # remaining claims (hit count above, label_rows bound and
            # distances elsewhere) are checked against the store itself.
            # Only an unknown AND unverifiable snapshot is an integrity
            # failure.
            with self._trusted_lock:
                trusted = snapshot in self._trusted_snapshots
                if trusted:
                    self._trusted_snapshots.move_to_end(snapshot)
            if not trusted:
                self.telemetry.count("verify_failures")
                raise IndexIntegrityError(
                    "answer cites an index snapshot the replica cannot "
                    "produce and the cluster has never verified"
                )
            if label_rows is not None and int(label_rows) > self.store.count(
                    int(label)):
                self.telemetry.count("verify_failures")
                raise IndexIntegrityError(
                    f"answer claims more label-{label} rows than the "
                    "authoritative store holds"
                )
            self.telemetry.count("trusted_snapshot_answers")
            return
        if label_rows is not None and generation.count(label) != int(
                label_rows):
            self.telemetry.count("verify_failures")
            raise IndexIntegrityError(
                f"answer claims {label_rows} rows for label {label} but "
                f"its cited generation holds {generation.count(label)}"
            )
        if label_rows is not None and int(label_rows) > self.store.count(
                int(label)):
            self.telemetry.count("verify_failures")
            raise IndexIntegrityError(
                f"answer claims more label-{label} rows than the "
                "authoritative store holds"
            )
        self._verify_snapshot_lineage(generation)

    def _verify_hits(self, fingerprint: np.ndarray,
                     hits: Tuple[IndexHit, ...],
                     label: Optional[int] = None, k: Optional[int] = None,
                     replica: Optional[ServingReplica] = None) -> None:
        """Recompute every hit's distance against the authoritative store.

        The replicas' in-memory matrices are untrusted copies; the mmap
        store (content-addressed, sealable) is the ground truth. Any
        mismatch means the replica's index drifted — the answer is
        discarded and the caller evicts the replica. When the caller
        passes ``label``/``k``/``replica``, the answer's provenance
        claims (hit count, label rows, index snapshot) are verified too."""
        if replica is not None and label is not None and k is not None:
            self._verify_answer_meta(replica, hits, int(label), int(k))
        if not hits:
            return
        self.telemetry.count("hit_verifications")
        rows = self.store.fingerprints_at([h.index for h in hits])
        actual = np.sqrt(((rows - fingerprint[None, :]) ** 2).sum(axis=1))
        claimed = np.array([h.distance for h in hits], dtype=np.float64)
        tolerance = self.config.verify_tolerance * np.maximum(1.0, actual)
        if np.any(np.abs(actual - claimed) > tolerance):
            self.telemetry.count("verify_failures")
            raise IndexIntegrityError(
                "served hit distance disagrees with the authoritative store "
                "— replica index corruption"
            )

    def _verify_hits_many(self, fingerprints: np.ndarray,
                          hit_lists: Sequence[Tuple[IndexHit, ...]]
                          ) -> List[bool]:
        """Vectorised :meth:`_verify_hits` for a gathered batch.

        One store gather + one distance pass for every hit of every
        answer; returns a per-answer pass/fail list with the same
        metering as the scalar path (one verification per non-empty
        answer, one failure per bad answer).
        """
        counts = [len(hits) for hits in hit_lists]
        checked = sum(1 for c in counts if c)
        if checked:
            self.telemetry.count("hit_verifications", checked)
        if not sum(counts):
            return [True] * len(hit_lists)
        rows = self.store.fingerprints_at(
            [h.index for hits in hit_lists for h in hits])
        owner = np.repeat(np.arange(len(hit_lists)), counts)
        deltas = rows - fingerprints[owner]
        actual = np.sqrt((deltas * deltas).sum(axis=1))
        claimed = np.array([h.distance for hits in hit_lists for h in hits],
                           dtype=np.float64)
        tolerance = self.config.verify_tolerance * np.maximum(1.0, actual)
        bad = np.abs(actual - claimed) > tolerance
        ok = [True] * len(hit_lists)
        if np.any(bad):
            for position in np.unique(owner[bad]):
                ok[int(position)] = False
            self.telemetry.count("verify_failures", ok.count(False))
        return ok

    # -- degraded path -----------------------------------------------------------

    def _degraded_answer(self, fingerprint: np.ndarray, label: int,
                         k: int) -> Tuple[IndexHit, ...]:
        """Exact brute force straight off the verified store (audited)."""
        with self._degraded_lock:
            version = self.store.version
            if self._degraded_verified_version != version:
                try:
                    # Fail-closed: degraded mode only serves from a store
                    # whose content-addressed digests verify right now.
                    self.store.verify()
                except StoreError as exc:
                    raise NoHealthyReplica(
                        f"degraded fallback refused: {exc}"
                    ) from exc
                self._degraded_cache.clear()
                self._degraded_verified_version = version
            key = (int(label), version)
            cached = self._degraded_cache.get(key)
            if cached is None:
                matrix, indices = self.store.by_label(int(label))
                cached = (np.ascontiguousarray(matrix, dtype=np.float32),
                          list(indices))
                self._degraded_cache[key] = cached
        matrix, indices = cached
        if matrix.shape[0] == 0:
            raise QueryError(
                f"no training fingerprints indexed for label {label}"
            )
        deltas = matrix - fingerprint[None, :]
        distances = np.sqrt((deltas * deltas).sum(axis=1))
        order = np.argsort(distances, kind="stable")[:min(k, len(indices))]
        return tuple(
            IndexHit(int(indices[i]), float(distances[i])) for i in order
        )

    # -- fault handling ----------------------------------------------------------

    def _evict(self, replica: ServingReplica, reason: str) -> None:
        with replica.lock:
            if replica.state == "evicted":
                return
            replica.state = "evicted"
            replica.evicted_reason = reason
        self.telemetry.count("evictions")
        self._audit_event("replica-evicted", replica=replica.name,
                          reason=reason)
        # Unwedge anything stuck in the chaos wrapper so the engine's
        # bounded stop can resolve its futures, then shut the engine down
        # without draining (an evicted replica's answers are not trusted).
        replica.index.release_faults()
        self._stop_compaction(replica)
        try:
            replica.engine.stop(drain=False,
                                drain_timeout=self.config.stop_timeout_s)
        except ServingError:
            pass

    def _replica_failure(self, replica: ServingReplica, exc: Exception) -> None:
        """Classify one failure: breaker bookkeeping + eviction triggers."""
        if replica.breaker.record_failure():
            self.telemetry.count("breaker_opens")
            self._audit_event("breaker-open", replica=replica.name,
                              error=type(exc).__name__)
        if isinstance(exc, IndexIntegrityError):
            self._evict(replica, "index-integrity")
        elif isinstance(exc, StaleIndexError):
            self._handle_stale(replica)
        elif isinstance(exc, ServingError) and replica.engine._crashed:
            self._evict(replica, "crash")

    def _handle_stale(self, replica: ServingReplica) -> None:
        """Distinguish benign-growth staleness from integrity staleness.

        The legacy cluster evicted on any ``StaleIndexError`` — a single
        benign ingest append took down every replica in the same sweep
        (a correlated availability cliff). Now: if the index's covered
        history is still a committed *prefix* of the store, the only
        thing wrong is growth — refresh in place, audit ``refreshed``
        not ``evicted``. Eviction is reserved for genuine divergence
        (a covered segment's digest no longer matches: history rewrite
        or store tampering)."""
        checker = getattr(replica.index, "store_prefix_ok", None)
        benign = bool(checker()) if callable(checker) else False
        if benign:
            self.telemetry.count("benign_stale")
            self._refresh_replica(replica, cause="stale-query")
            return
        self._evict(replica, "stale-index")

    def _refresh_replica(self, replica: ServingReplica,
                         cause: str = "growth") -> bool:
        """Adopt store growth on one replica, in place, without eviction.

        A growth-only cause can never evict: refresh failures (other
        than genuine divergence) leave the replica healthy and serving
        its pinned snapshot — stale-but-consistent beats unavailable,
        and the next sweep retries."""
        if not replica.healthy:
            return False
        before = getattr(replica.index, "snapshot_digest", None)
        started = self._clock()
        try:
            changed = bool(replica.engine.refresh())
        except StaleIndexError as exc:
            # Refresh itself proved genuine divergence — integrity.
            self._audit_event("replica-refresh-failed", replica=replica.name,
                              cause=cause, error=type(exc).__name__)
            self._evict(replica, "stale-index")
            return False
        except Exception as exc:  # noqa: BLE001 — growth must not evict
            self.telemetry.count("refresh_failures")
            self._audit_event("replica-refresh-failed", replica=replica.name,
                              cause=cause, error=type(exc).__name__)
            return False
        if changed:
            self.telemetry.count("replica_refreshes")
            self.telemetry.observe("refresh", self._clock() - started)
            self._audit_event(
                "replica-refreshed", replica=replica.name, cause=cause,
                snapshot_before=before,
                snapshot_after=getattr(replica.index, "snapshot_digest",
                                       None),
            )
        return changed

    def refresh(self, max_replicas: Optional[int] = None) -> int:
        """Staggered generation adoption across the cluster.

        Refreshes the most-behind healthy replicas, at most
        ``max_replicas`` (default ``config.refresh_stagger``) per call —
        so the cluster never takes the build cost on every replica at
        once and quorum keeps serving the prior snapshot. The health
        sweep calls this every interval; tests and the CLI may call it
        directly. Returns the number of replicas that adopted a new
        generation."""
        if not hasattr(self.store, "segment_digests"):
            return 0
        limit = (self.config.refresh_stagger if max_replicas is None
                 else int(max_replicas))
        # Compare covered-segment counts, not the manifest version
        # counter: the two coincide only while every version bump is an
        # append, and a future non-append bump (format migration, reseal)
        # must not make every replica look permanently behind.
        target = getattr(self.store, "segment_count", None)
        if target is None:
            target = len(self.store.segment_digests())

        def covered(replica: ServingReplica) -> int:
            count = getattr(replica.index, "covered_store_segments", None)
            return -1 if count is None else int(count)

        behind = [r for r in self.replicas
                  if r.healthy and covered(r) < int(target)]
        behind.sort(key=covered)
        refreshed = 0
        for replica in behind[:max(0, limit)]:
            if self._refresh_replica(replica, cause="growth"):
                refreshed += 1
        return refreshed

    # -- routing -----------------------------------------------------------------

    def _shed_check(self, n: int) -> None:
        with self._in_flight_lock:
            if self._in_flight + n > self.config.max_in_flight:
                self.telemetry.count("shed", n)
                retry_after = self.config.hedge_min_s
                self._audit_event("query-shed", queries=n,
                                  in_flight=self._in_flight)
                raise QueryRejected(
                    f"cluster at max_in_flight={self.config.max_in_flight}; "
                    f"retry after {retry_after:.3f}s",
                    retry_after_s=retry_after,
                )
            self._in_flight += n

    def _unshed(self, n: int) -> None:
        with self._in_flight_lock:
            self._in_flight -= n

    def query(self, fingerprint: np.ndarray, label: int, k: int = 9,
              deadline_s: Optional[float] = None) -> ClusterResult:
        """Route one query with deadline/retry/hedging/failover/degrade."""
        if not self._started:
            raise ServingError("cluster is not running — call start()")
        fingerprint = np.ascontiguousarray(
            np.asarray(fingerprint, dtype=np.float32).ravel()
        )
        self._shed_check(1)
        try:
            with self._span("cluster-route", "untrusted", label=int(label)):
                return self._route(fingerprint, int(label), int(k),
                                   deadline_s)
        finally:
            self._unshed(1)

    def _route(self, fingerprint: np.ndarray, label: int, k: int,
               deadline_s: Optional[float]) -> ClusterResult:
        budget = deadline_s if deadline_s is not None else self.config.deadline_s
        started = self._clock()
        deadline = started + budget
        self.telemetry.count("queries")
        exclude: frozenset = frozenset()
        first_replica: Optional[str] = None
        retries = 0
        hedged_any = False
        last_error: Optional[Exception] = None
        for attempt in range(self.config.max_retries + 1):
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            replica = self._pick(exclude)
            if replica is None:
                break  # nothing routable: fall through to degraded
            if first_replica is None:
                first_replica = replica.name
            if attempt:
                retries += 1
                self.telemetry.count("retries")
            try:
                future = replica.engine.submit(fingerprint, label, k)
            except QueryRejected as exc:
                # Backpressure is soft: honour the replica's hint, do not
                # punish its breaker, try again (possibly elsewhere).
                last_error = exc
                pause = min(self._backoff(attempt, exc.retry_after_s),
                            max(0.0, deadline - self._clock()))
                if pause > 0:
                    time.sleep(pause)
                continue
            except ServingError as exc:
                last_error = exc
                self._replica_failure(replica, exc)
                exclude = exclude | {replica.name}
                continue
            outcome = self._await_answer(fingerprint, label, k, replica,
                                         future, deadline, exclude)
            winner, hits, hedged, error = outcome
            hedged_any = hedged_any or hedged
            if hits is not None and winner is not None:
                latency = self._clock() - started
                self._record_latency(latency)
                self.telemetry.observe("route", latency)
                self.telemetry.count("queries_ok")
                failed_over = winner.name != first_replica
                if failed_over:
                    self.telemetry.count("failovers")
                    self._audit_event("failover-query", replica=winner.name,
                                      first=first_replica, label=label)
                return ClusterResult(
                    hits=hits, replica=winner.name, degraded=False,
                    hedged=hedged_any, failed_over=failed_over,
                    retries=retries, latency_s=latency,
                )
            last_error = error
            if isinstance(error, QueryError) and not isinstance(
                    error, (QueryRejected, StaleIndexError)):
                # Caller errors (unknown label, bad dimension) are not
                # replica faults — propagate without burning the budget.
                self.telemetry.count("caller_errors")
                raise error
            exclude = exclude | {replica.name}
        # -- every replica path exhausted: degrade or refuse -------------------
        remaining = deadline - self._clock()
        if remaining <= 0 and last_error is None:
            self.telemetry.count("queries_failed")
            raise DeadlineExceeded(
                f"query deadline of {budget:.3f}s expired before any replica "
                "answered"
            )
        if self.config.degraded_allowed and remaining > 0:
            try:
                with self._span("degraded-brute-force", "boundary-crossing",
                                label=label):
                    hits = self._degraded_answer(fingerprint, label, k)
            except NoHealthyReplica:
                self.telemetry.count("queries_failed")
                raise
            latency = self._clock() - started
            self.telemetry.observe("route", latency)
            self.telemetry.count("queries_ok")
            self.telemetry.count("degraded_answers")
            self._audit_event("degraded-query", label=label, k=k,
                              reason=type(last_error).__name__
                              if last_error else "no-healthy-replica")
            return ClusterResult(
                hits=hits, replica=None, degraded=True, hedged=hedged_any,
                failed_over=first_replica is not None, retries=retries,
                latency_s=latency,
            )
        self.telemetry.count("queries_failed")
        if remaining <= 0:
            raise DeadlineExceeded(
                f"query deadline of {budget:.3f}s expired "
                f"(last error: {type(last_error).__name__ if last_error else 'none'})"
            )
        raise NoHealthyReplica(
            "no healthy replica and degraded serving is disabled "
            f"(last error: {type(last_error).__name__ if last_error else 'none'})"
        )

    def _await_answer(self, fingerprint, label, k, replica, future,
                      deadline, exclude):
        """Wait on one submitted query, hedging past the rolling p99.

        Returns ``(winner, hits, hedged, error)``; ``hits`` is None on
        failure and ``error`` carries the decisive exception."""
        hedged = False
        hedge_future = None
        hedge_replica = None
        pending = {future: replica}
        # Phase 1: give the primary until the hedge trigger.
        if self.config.hedging:
            trigger = min(self._hedge_delay(),
                          max(0.0, deadline - self._clock()))
            done, _ = futures_wait([future], timeout=trigger)
            if not done and deadline - self._clock() > 0:
                hedge_replica = self._pick(
                    exclude | {replica.name})
                if hedge_replica is not None:
                    try:
                        hedge_future = hedge_replica.engine.submit(
                            fingerprint, label, k)
                        pending[hedge_future] = hedge_replica
                        hedged = True
                        self.telemetry.count("hedges_launched")
                        self._audit_event("hedged-query", label=label,
                                          primary=replica.name,
                                          hedge=hedge_replica.name)
                    except (QueryRejected, ServingError):
                        hedge_replica = None
        # Phase 2: first verified answer wins; failures drop out one by one.
        last_error: Optional[Exception] = None
        while pending:
            remaining = deadline - self._clock()
            if remaining <= 0:
                # Timed out: everyone still pending is too slow to trust.
                for straggler in pending.values():
                    self._replica_failure(
                        straggler, FuturesTimeoutError("deadline"))
                return None, None, hedged, last_error or FuturesTimeoutError(
                    "deadline expired waiting on replicas")
            done, _ = futures_wait(list(pending), timeout=remaining,
                                   return_when=FIRST_COMPLETED)
            if not done:
                continue
            for finished in done:
                owner = pending.pop(finished)
                try:
                    # Keep the engine's answer object intact: it may be an
                    # EngineAnswer carrying snapshot/label_rows provenance
                    # that the meta-verification below inspects.
                    hits = finished.result(timeout=0)
                    if self.config.verify_hits:
                        with self._span("verify-hits", "boundary-crossing",
                                        replica=owner.name):
                            self._verify_hits(fingerprint, hits,
                                              label=label, k=k,
                                              replica=owner)
                except Exception as exc:  # noqa: BLE001 — classified below
                    last_error = exc
                    self._replica_failure(owner, exc)
                    if isinstance(exc, QueryError) and not isinstance(
                            exc, (QueryRejected, StaleIndexError)):
                        return owner, None, hedged, exc  # permanent
                    continue
                owner.breaker.record_success()
                if hedged and owner is hedge_replica:
                    self.telemetry.count("hedges_won")
                return owner, hits, hedged, None
        return None, None, hedged, last_error

    def query_many(self, fingerprints: np.ndarray, labels: Sequence[int],
                   k: int = 9, deadline_s: Optional[float] = None
                   ) -> List[ClusterResult]:
        """Route a batch under one overall deadline.

        Fast path: submit everything up front (preserving each engine's
        micro-batch coalescing), then gather with the remaining budget.
        Any per-query failure falls back to the full single-query retry
        / hedge / degrade machinery with whatever budget is left.
        """
        if not self._started:
            raise ServingError("cluster is not running — call start()")
        fingerprints = np.asarray(fingerprints, dtype=np.float32)
        n = fingerprints.shape[0]
        fingerprints = fingerprints.reshape(n, -1)
        if len(labels) != n:
            raise ServingError(f"{n} fingerprints but {len(labels)} labels")
        budget = deadline_s if deadline_s is not None else self.config.deadline_s
        deadline = self._clock() + budget
        self._shed_check(n)
        try:
            # One rotation snapshot for the whole batch: per-query _pick
            # (and its breaker lock) measurably taxes the fault-free fast
            # path; replicas that sicken mid-batch fail into the slow
            # path below, which re-picks with full checks.
            candidates = [r for r in self.replicas
                          if r.healthy and r.breaker.allow()]
            rotation = next(self._rr)
            submitted: List[Optional[Tuple[object, ServingReplica]]] = []
            for i in range(n):
                entry = None
                if candidates:
                    replica = candidates[(rotation + i) % len(candidates)]
                    try:
                        entry = (replica.engine.submit(
                            fingerprints[i], int(labels[i]), k), replica)
                    except (QueryRejected, ServingError):
                        entry = None
                submitted.append(entry)
            # Gather raw answers with the remaining budget; verification
            # and bookkeeping run batched afterwards so the per-query
            # Python cost stays off the routing-overhead budget.
            answers: List[Optional[Tuple[Tuple[IndexHit, ...],
                                         ServingReplica, float]]] = [None] * n
            reroute: List[int] = []
            for i in range(n):
                started = self._clock()
                remaining = deadline - started
                entry = submitted[i]
                if entry is None or remaining <= 0:
                    reroute.append(i)
                    continue
                future, replica = entry
                try:
                    # Preserve EngineAnswer provenance attributes for the
                    # batched meta-verification below.
                    hits = future.result(timeout=remaining)
                except Exception as exc:  # noqa: BLE001 — reroute below
                    self._replica_failure(replica, exc)
                    if isinstance(exc, QueryError) and not isinstance(
                            exc, (QueryRejected, StaleIndexError)):
                        self.telemetry.count("queries")
                        self.telemetry.count("caller_errors")
                        raise
                    reroute.append(i)
                    continue
                answers[i] = (hits, replica, self._clock() - started)
            gathered = [i for i in range(n) if answers[i] is not None]
            if self.config.verify_hits and gathered:
                passed = self._verify_hits_many(
                    fingerprints[gathered],
                    [answers[i][0] for i in gathered])
                for keep, i in zip(passed, gathered):
                    if keep:
                        continue
                    _, replica, _ = answers[i]
                    answers[i] = None
                    self._replica_failure(replica, IndexIntegrityError(
                        "served hit distance disagrees with the "
                        "authoritative store — replica index corruption"))
                    reroute.append(i)
                gathered = [i for i in gathered if answers[i] is not None]
            if self.config.verify_hits and gathered:
                # Provenance pass: hit counts, label rows, and cited index
                # snapshots (lineage-walked once per digest, then cached).
                for i in list(gathered):
                    hits, replica, _ = answers[i]
                    try:
                        self._verify_answer_meta(replica, hits,
                                                 int(labels[i]), int(k))
                    except Exception as exc:  # noqa: BLE001 — reroute
                        answers[i] = None
                        self._replica_failure(replica, exc)
                        reroute.append(i)
                gathered = [i for i in gathered if answers[i] is not None]
            if gathered:
                self.telemetry.count("queries", len(gathered))
                self.telemetry.count("queries_ok", len(gathered))
                with self._latency_lock:
                    self._latencies.extend(answers[i][2] for i in gathered)
                for replica in {answers[i][1].name: answers[i][1]
                                for i in gathered}.values():
                    replica.breaker.record_success()
                self.telemetry.observe_many(
                    "route", [answers[i][2] for i in gathered])
            results: List[Optional[ClusterResult]] = [
                None if entry is None else ClusterResult(
                    hits=entry[0], replica=entry[1].name,
                    latency_s=entry[2])
                for entry in answers
            ]
            # Slow path: the single-query router owns retries/degrade.
            for i in sorted(reroute):
                results[i] = self._route(
                    np.ascontiguousarray(fingerprints[i]), int(labels[i]),
                    int(k), max(0.001, deadline - self._clock()))
            return results
        finally:
            self._unshed(n)

    # -- health + self-healing ---------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.config.health_interval_s):
            try:
                self.health_check_now()
            except Exception:  # noqa: BLE001 — the monitor must survive
                self.telemetry.count("monitor_errors")

    def health_check_now(self) -> Dict[str, str]:
        """One synchronous health sweep (the monitor calls this on a
        timer; tests and the CLI can call it directly)."""
        states: Dict[str, str] = {}
        for replica in self.replicas:
            if replica.state == "evicted":
                if self.config.revive:
                    self._maybe_revive(replica)
            elif replica.healthy:
                self._check_replica(replica)
            states[replica.name] = replica.state
        if self.config.auto_refresh and self._started:
            # Staggered catch-up: at most ``refresh_stagger`` replicas
            # adopt the grown store per sweep, so the cluster never
            # rebuilds everywhere at once.
            try:
                self.refresh()
            except Exception:  # noqa: BLE001 — the sweep must survive
                self.telemetry.count("refresh_failures")
        return states

    def _check_replica(self, replica: ServingReplica) -> None:
        self.telemetry.count("health_checks")
        if replica.engine._crashed:
            self._evict(replica, "crash")
            return
        # Incremental audit-chain verification: only the suffix since the
        # last sweep's mark (satellite: AuditLog.verify_from).
        mark_seq, mark_head = replica.audit_mark
        log = replica.engine.audit
        if not log.verify_from(mark_seq, mark_head):
            self._evict(replica, "audit-chain-break")
            return
        replica.audit_mark = (len(log), log.head)
        try:
            replica.index.verify_checksums()
        except IndexIntegrityError:
            self._evict(replica, "index-integrity")

    def _maybe_revive(self, replica: ServingReplica) -> None:
        now = self._clock()
        if now - replica.last_revive_attempt < self.config.breaker_reset_s:
            return
        replica.last_revive_attempt = now
        with replica.lock:
            if replica.state != "evicted":
                return
            replica.state = "reviving"
        try:
            self._revive(replica)
        except Exception as exc:  # noqa: BLE001 — revival is best-effort
            self.telemetry.count("revive_failures")
            self._audit_event("revive-failed", replica=replica.name,
                              error=type(exc).__name__)
            with replica.lock:
                replica.state = "evicted"

    def _revive(self, replica: ServingReplica) -> None:
        """Rebuild one evicted replica from the sealed truth on disk.

        Fail-closed at every step: re-open the store with digest
        verification (catches torn manifests and corrupted segments),
        re-run the promotion walk (the PR 8 ``serving_verifier``),
        rebuild the index fresh, and answer a probe query before the
        replica takes traffic again."""
        with self._span("replica-revive", "internal", replica=replica.name):
            fresh_store = LinkageStore.open(self.store.path, verify=True)
            if self.promotion_verifier is not None:
                self.promotion_verifier(self.promotion)
            index = _ReplicaIndex(self.index_factory(fresh_store))
            index.build()
            engine = ServingEngine(
                index, config=self.engine_config,
                telemetry=ServingTelemetry(registry=self.telemetry.registry),
                promotion=self.promotion,
                promotion_verifier=self.promotion_verifier,
            )
            engine.start()
            try:
                probe_label = fresh_store.labels()[0]
                probe_fp = fresh_store.fingerprint_at(0)
                engine.query(probe_fp, probe_label, k=1,
                             timeout=self.config.probe_timeout_s)
            except Exception:
                engine.stop(drain=False,
                            drain_timeout=self.config.stop_timeout_s)
                raise
            with replica.lock:
                replica.store = fresh_store
                replica.index = index
                replica.engine = engine
                replica.breaker.reset()
                replica.audit_mark = (len(engine.audit), engine.audit.head)
                replica.state = "healthy"
                replica.evicted_reason = None
            self._start_compaction(replica)
        self.telemetry.count("revivals")
        self._audit_event("replica-revived", replica=replica.name)

    # -- chaos surface (driven by ServingFaultPlan / tests / CLI) ----------------

    def _target(self, name: Optional[str]) -> ServingReplica:
        if name is None:
            for replica in self.replicas:
                if replica.healthy:
                    return replica
            return self.replicas[0]
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise ConfigurationError(f"no replica named {name!r}")

    def crash_replica(self, name: Optional[str] = None) -> str:
        replica = self._target(name)
        replica.engine.kill()
        self._audit_event("fault-injected", fault="replica-crash",
                          replica=replica.name)
        return replica.name

    def wedge_replica(self, name: Optional[str] = None) -> str:
        replica = self._target(name)
        replica.index.wedge()
        self._audit_event("fault-injected", fault="replica-hang",
                          replica=replica.name)
        return replica.name

    def delay_replica(self, delay_s: float,
                      name: Optional[str] = None) -> str:
        replica = self._target(name)
        replica.index.set_delay(delay_s)
        self._audit_event("fault-injected", fault="latency-inject",
                          replica=replica.name, delay_s=float(delay_s))
        return replica.name

    def corrupt_index(self, label: int, row: int,
                      value: Optional[Sequence[float]] = None,
                      name: Optional[str] = None) -> str:
        replica = self._target(name)
        replica.index.corrupt_row(label, row, value)
        self._audit_event("fault-injected", fault="index-corrupt",
                          replica=replica.name, label=int(label),
                          row=int(row))
        return replica.name

    def corrupt_store_segment(self, segment: int = 0) -> str:
        """Flip one byte in a store segment file on disk (shared fault)."""
        infos = self.store.segments
        if not infos:
            raise ConfigurationError("store has no segments to corrupt")
        info = infos[segment % len(infos)]
        path = self.store.path / f"{info.name}.npy"
        blob = bytearray(path.read_bytes())
        offset = len(blob) // 2
        blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        self._audit_event("fault-injected", fault="store-corrupt",
                          segment=info.name, offset=offset)
        return info.name

    def tear_manifest(self) -> None:
        """Truncate the store manifest mid-file (torn-write simulation)."""
        path = self.store.path / "manifest.json"
        text = path.read_text()
        path.write_text(text[: max(1, len(text) // 2)])
        self._audit_event("fault-injected", fault="torn-manifest")

    def grow_store(self, records: int = 256,
                   label: Optional[int] = None,
                   seed: Optional[int] = None) -> str:
        """Append a benign ingest burst to the shared store (growth storm).

        This is the load half of the growth-under-load drill: every
        replica's pinned generation instantly becomes behind the store,
        and the cluster must keep answering from pinned snapshots while
        staggered refreshes catch up — zero evictions, zero client-facing
        :class:`StaleIndexError`."""
        if records <= 0:
            raise ConfigurationError("growth burst needs records >= 1")
        known = list(self.store.labels())
        if not known or self.store.dimension is None:
            raise ConfigurationError(
                "growth storm needs a non-empty store"
            )
        rng = np.random.default_rng(
            self.store.version if seed is None else seed)
        if label is not None:
            targets = [int(label)] * records
        else:
            targets = [known[i % len(known)] for i in range(records)]
        version = self.store.version
        matrix = rng.standard_normal(
            (records, self.store.dimension)).astype(np.float32)
        digests = [
            canonical_digest({"growth-storm": [int(version), int(i)]})
            for i in range(records)
        ]
        info = self.store.append(
            matrix, targets, [f"growth-storm-{version}"] * records, digests)
        self.telemetry.count("growth_segments")
        self.telemetry.count("growth_records", records)
        self._audit_event("fault-injected", fault="growth-storm",
                          segment=info.name, records=int(records))
        return info.name

    def crash_compaction(self, name: Optional[str] = None) -> str:
        """Arm a one-shot crash inside the target replica's next merge."""
        replica = self._target(name)
        arm = getattr(replica.index, "inject_compaction_crash", None)
        if not callable(arm):
            raise ConfigurationError(
                "replica index does not support compaction-crash injection")
        arm()
        self._audit_event("fault-injected", fault="compaction-crash",
                          replica=replica.name)
        return replica.name

    def inject(self, spec) -> None:
        """Apply one :class:`~repro.resilience.faults.ServingFaultSpec`."""
        kind = spec.kind
        if kind == "replica-crash":
            self.crash_replica(spec.replica)
        elif kind == "replica-hang":
            self.wedge_replica(spec.replica)
        elif kind == "latency-inject":
            self.delay_replica(spec.delay_s, spec.replica)
        elif kind == "index-corrupt":
            self.corrupt_index(spec.label or 0, spec.row or 0,
                               spec.value, spec.replica)
        elif kind == "store-corrupt":
            self.corrupt_store_segment(spec.row or 0)
        elif kind == "torn-manifest":
            self.tear_manifest()
        elif kind == "growth-storm":
            self.grow_store(spec.records or 256, label=spec.label)
        elif kind == "compaction-crash":
            self.crash_compaction(spec.replica)
        else:
            raise ConfigurationError(f"unknown serving fault kind {kind!r}")

    # -- introspection -----------------------------------------------------------

    def status(self) -> Dict[str, object]:
        return {
            "started": self._started,
            "replicas": {
                r.name: {
                    "state": r.state,
                    "breaker": r.breaker.state,
                    "evicted_reason": r.evicted_reason,
                    "built_version": getattr(r.index, "built_version", None),
                    "snapshot": getattr(r.index, "snapshot_digest", None),
                }
                for r in self.replicas
            },
            "store_version": self.store.version,
            "in_flight": self._in_flight,
            "audit_events": len(self.audit),
        }
