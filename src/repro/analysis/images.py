"""Image tensor operations used by the exposure assessment."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["bilinear_resize", "to_ir_image"]


def bilinear_resize(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinearly resize an (H, W) or (H, W, C) image."""
    if image.ndim == 2:
        image = image[..., None]
        squeeze = True
    elif image.ndim == 3:
        squeeze = False
    else:
        raise ConfigurationError("expected a 2-D or 3-D image")
    h, w, _ = image.shape
    ys = np.linspace(0, h - 1, out_h)
    xs = np.linspace(0, w - 1, out_w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[:, None, None]
    wx = (xs - x0)[None, :, None]
    top = image[y0][:, x0] * (1 - wx) + image[y0][:, x1] * wx
    bottom = image[y1][:, x0] * (1 - wx) + image[y1][:, x1] * wx
    out = top * (1 - wy) + bottom * wy
    return out[..., 0] if squeeze else out


def to_ir_image(feature_map: np.ndarray, out_h: int, out_w: int,
                channels: int = 3) -> np.ndarray:
    """Project one IR feature map to an RGB-like image.

    Min-max normalizes a single (H, W) feature map to [0, 1], resizes it to
    the validation network's input resolution, and replicates it across
    ``channels`` — the paper's "feature maps are projected to IR images"
    step (Section IV-B).
    """
    fmin, fmax = float(feature_map.min()), float(feature_map.max())
    if fmax - fmin < 1e-12:
        normalized = np.zeros_like(feature_map, dtype=np.float64)
    else:
        normalized = (feature_map.astype(np.float64) - fmin) / (fmax - fmin)
    resized = bilinear_resize(normalized, out_h, out_w)
    return np.repeat(resized[..., None], channels, axis=-1).astype(np.float32)
