"""Locally linear embedding (Roweis & Saul), from scratch.

The paper projects 2622-dimensional face fingerprints to 2-D via LLE to
visualize how trojaned training/testing data cluster apart from normal
training data (Fig. 7).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import eigh
from scipy.spatial.distance import cdist

from repro.errors import ConfigurationError

__all__ = ["locally_linear_embedding"]


def locally_linear_embedding(points: np.ndarray, n_neighbors: int = 10,
                             n_components: int = 2,
                             regularization: float = 1e-3) -> np.ndarray:
    """Embed ``points`` (N, D) into ``n_components`` dimensions.

    Steps: (1) k-nearest neighbours per point; (2) local reconstruction
    weights by solving the constrained least squares on each neighbourhood
    Gram matrix; (3) bottom eigenvectors of ``(I - W)^T (I - W)`` (skipping
    the constant one) give the embedding.
    """
    points = np.asarray(points, dtype=np.float64)
    n, dim = points.shape
    if n_neighbors >= n:
        raise ConfigurationError("n_neighbors must be smaller than the point count")
    if n_components >= n:
        raise ConfigurationError("n_components must be smaller than the point count")

    distances = cdist(points, points)
    np.fill_diagonal(distances, np.inf)
    neighbor_idx = np.argsort(distances, axis=1)[:, :n_neighbors]

    weights = np.zeros((n, n))
    for i in range(n):
        neighbors = points[neighbor_idx[i]] - points[i]
        gram = neighbors @ neighbors.T
        # Regularize (essential when n_neighbors > D).
        trace = np.trace(gram)
        gram += np.eye(n_neighbors) * regularization * (trace if trace > 0 else 1.0)
        w = np.linalg.solve(gram, np.ones(n_neighbors))
        weights[i, neighbor_idx[i]] = w / w.sum()

    m = np.eye(n) - weights
    m = m.T @ m
    # The smallest eigenvalue's eigenvector is constant; take the next ones.
    eigenvalues, eigenvectors = eigh(m, subset_by_index=(0, n_components))
    return eigenvectors[:, 1 : n_components + 1]
