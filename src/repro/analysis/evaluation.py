"""Classification evaluation reports.

Per-class precision/recall/F1 and a rendered confusion matrix — the
standard post-training report a model consumer wants before deciding which
mispredictions to investigate through the accountability pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import confusion_matrix
from repro.errors import ConfigurationError

__all__ = ["ClassReport", "EvaluationReport", "evaluate_classifier",
           "render_confusion_matrix"]


@dataclass(frozen=True)
class ClassReport:
    label: int
    precision: float
    recall: float
    f1: float
    support: int


@dataclass
class EvaluationReport:
    accuracy: float
    per_class: List[ClassReport]
    matrix: np.ndarray

    def macro_f1(self) -> float:
        return float(np.mean([c.f1 for c in self.per_class]))

    def worst_class(self) -> ClassReport:
        return min(self.per_class, key=lambda c: c.f1)

    def render(self, class_names: Optional[Sequence[str]] = None) -> str:
        names = class_names or [str(c.label) for c in self.per_class]
        lines = [f"accuracy: {self.accuracy:.2%}   macro-F1: {self.macro_f1():.3f}",
                 f"{'class':>10} {'prec':>6} {'recall':>7} {'f1':>6} {'n':>5}"]
        for report, name in zip(self.per_class, names):
            lines.append(
                f"{name:>10} {report.precision:>6.3f} {report.recall:>7.3f} "
                f"{report.f1:>6.3f} {report.support:>5}"
            )
        return "\n".join(lines)


def evaluate_classifier(model, x: np.ndarray, y: np.ndarray,
                        num_classes: Optional[int] = None) -> EvaluationReport:
    """Full evaluation of a model (anything with ``predict``) on (x, y)."""
    if x.shape[0] != y.shape[0] or x.shape[0] == 0:
        raise ConfigurationError("x and y must be non-empty and aligned")
    predicted = model.predict(x).argmax(axis=1)
    classes = num_classes if num_classes is not None else int(y.max()) + 1
    matrix = confusion_matrix(predicted, y, classes)
    per_class: List[ClassReport] = []
    for label in range(classes):
        tp = int(matrix[label, label])
        fp = int(matrix[:, label].sum()) - tp
        fn = int(matrix[label, :].sum()) - tp
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        per_class.append(ClassReport(label=label, precision=precision,
                                     recall=recall, f1=f1,
                                     support=int(matrix[label, :].sum())))
    return EvaluationReport(
        accuracy=float(np.mean(predicted == y)),
        per_class=per_class,
        matrix=matrix,
    )


def render_confusion_matrix(matrix: np.ndarray,
                            class_names: Optional[Sequence[str]] = None) -> str:
    """Plain-text confusion matrix, rows = actual, columns = predicted."""
    n = matrix.shape[0]
    names = class_names or [str(i) for i in range(n)]
    width = max(5, max(len(str(name)) for name in names) + 1)
    header = " " * width + "".join(f"{name:>{width}}" for name in names)
    lines = [header]
    for i in range(n):
        row = f"{names[i]:>{width}}" + "".join(
            f"{int(matrix[i, j]):>{width}}" for j in range(n)
        )
        lines.append(row)
    return "\n".join(lines)
