"""Kullback-Leibler divergence helpers for the exposure assessment."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["kl_divergence", "kl_to_uniform"]


def kl_divergence(p: np.ndarray, q: np.ndarray, eps: float = 1e-10) -> float:
    """``D_KL(p || q)`` for discrete distributions (smoothed with ``eps``)."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ConfigurationError("distributions must have the same shape")
    p = (p + eps) / (p + eps).sum()
    q = (q + eps) / (q + eps).sum()
    return float(np.sum(p * np.log(p / q)))


def kl_to_uniform(p: np.ndarray) -> float:
    """``D_KL(p || U)`` — the paper's tight exposure bound ``delta_mu``.

    A uniform classification of an IR image means the adversary learns
    nothing about the original input, so IRs whose KL against the original's
    distribution is at or above this baseline no longer leak content.
    """
    p = np.asarray(p, dtype=np.float64)
    uniform = np.full_like(p, 1.0 / p.shape[-1])
    return kl_divergence(p, uniform)
