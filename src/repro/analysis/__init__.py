"""Analysis toolkit: KL divergence, LLE, metrics, image ops, reporting."""

from repro.analysis.evaluation import EvaluationReport, evaluate_classifier, render_confusion_matrix
from repro.analysis.images import bilinear_resize, to_ir_image
from repro.analysis.kl import kl_divergence, kl_to_uniform
from repro.analysis.lle import locally_linear_embedding
from repro.analysis.metrics import (
    confusion_matrix,
    precision_recall_f1,
    top_k_accuracy,
)
from repro.analysis.reporting import (
    render_epoch_series,
    render_kl_figure,
    render_neighbor_table,
    render_overhead_series,
)

__all__ = [
    "EvaluationReport",
    "evaluate_classifier",
    "render_confusion_matrix",
    "kl_divergence",
    "kl_to_uniform",
    "locally_linear_embedding",
    "top_k_accuracy",
    "precision_recall_f1",
    "confusion_matrix",
    "bilinear_resize",
    "to_ir_image",
    "render_epoch_series",
    "render_kl_figure",
    "render_neighbor_table",
    "render_overhead_series",
]
