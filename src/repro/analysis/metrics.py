"""Evaluation metrics."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["top_k_accuracy", "precision_recall_f1", "confusion_matrix", "auc_score"]


def top_k_accuracy(probs: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of instances whose true label is in the top-k predictions."""
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    top_k = np.argsort(probs, axis=1)[:, -k:]
    return float(np.mean([labels[i] in top_k[i] for i in range(labels.shape[0])]))


def precision_recall_f1(predicted: np.ndarray, actual: np.ndarray) -> Dict[str, float]:
    """Binary precision/recall/F1 for boolean masks."""
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    tp = int(np.sum(predicted & actual))
    fp = int(np.sum(predicted & ~actual))
    fn = int(np.sum(~predicted & actual))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall) if precision + recall else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1,
            "tp": tp, "fp": fp, "fn": fn}


def confusion_matrix(predicted: np.ndarray, actual: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """(num_classes, num_classes) counts, rows = actual, cols = predicted."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for a, p in zip(actual, predicted):
        matrix[a, p] += 1
    return matrix


def auc_score(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (ties averaged)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=bool)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ConfigurationError("AUC needs both positive and negative labels")
    order = np.argsort(scores)
    ranks = np.empty(scores.size, dtype=np.float64)
    # Average ranks over ties.
    sorted_scores = scores[order]
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return float((ranks[labels].sum() - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))
