"""Text renderers that print the paper's tables/figures as terminal output.

Every benchmark regenerates its table/figure through one of these, so the
benches emit the same rows/series the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "render_epoch_series",
    "render_kl_figure",
    "render_overhead_series",
    "render_neighbor_table",
]


def render_epoch_series(title: str, series: Mapping[str, Sequence[float]],
                        unit: str = "%") -> str:
    """Render named per-epoch series, one row per epoch (Figs. 3/4)."""
    names = list(series)
    epochs = max(len(v) for v in series.values())
    header = f"{'Epoch':>5} | " + " | ".join(f"{n:>24}" for n in names)
    lines = [title, header, "-" * len(header)]
    for e in range(epochs):
        cells = []
        for name in names:
            values = series[name]
            cells.append(
                f"{values[e] * 100:>23.2f}{unit}" if e < len(values) else " " * 24
            )
        lines.append(f"{e + 1:>5} | " + " | ".join(cells))
    return "\n".join(lines)


def render_kl_figure(per_epoch_ranges: Sequence[Sequence[Tuple[float, float]]],
                     uniform_baselines: Sequence[float],
                     chosen_layers: Sequence[int]) -> str:
    """Render Fig. 5: per-epoch, per-layer KL [min, max] plus delta_mu."""
    lines = []
    for epoch, (ranges, baseline, chosen) in enumerate(
        zip(per_epoch_ranges, uniform_baselines, chosen_layers), start=1
    ):
        lines.append(
            f"Epoch {epoch:>2}  delta_mu = {baseline:6.3f}  "
            f"optimal partition: first {chosen} layers in enclave"
        )
        for layer, (lo, hi) in enumerate(ranges, start=1):
            marker = "LEAKS" if lo < baseline else "safe "
            lines.append(
                f"  layer {layer:>2}: KL in [{lo:7.3f}, {hi:7.3f}]  {marker}"
            )
    return "\n".join(lines)


def render_overhead_series(points: Sequence[Tuple[int, float]]) -> str:
    """Render Fig. 6: overhead vs. number of in-enclave conv layers."""
    lines = ["In-enclave conv layers | performance overhead",
             "-----------------------+---------------------"]
    for conv_layers, overhead in points:
        bar = "#" * int(round(overhead * 200))
        lines.append(f"{conv_layers:>22} | {overhead * 100:6.2f}%  {bar}")
    return "\n".join(lines)


def render_neighbor_table(queries: Sequence[Dict]) -> str:
    """Render Fig. 8: per-query nearest training neighbours with distances.

    Each query dict needs: ``name``, and ``neighbors`` — a list of dicts
    with ``distance``, ``source`` and ``kind`` (normal/poisoned/mislabeled).
    """
    lines = []
    for query in queries:
        lines.append(f"query: {query['name']}")
        for rank, nb in enumerate(query["neighbors"], start=1):
            lines.append(
                f"  #{rank}: L2 = {nb['distance']:.3f}  source = {nb['source']:<14}"
                f" kind = {nb['kind']}"
            )
    return "\n".join(lines)
