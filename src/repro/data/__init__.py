"""Data substrate: synthetic datasets, augmentation, batching, encryption.

The paper trains on CIFAR-10 and evaluates accountability on VGG-Face; with
no network access this package generates deterministic synthetic stand-ins
with the same tensor shapes and class structure (see DESIGN.md for the
substitution rationale), plus the augmentation pipeline the paper applies
inside the enclave and the encrypted provisioning format participants use.
"""

from repro.data.augmentation import Augmenter
from repro.data.batching import iterate_minibatches
from repro.data.datasets import Dataset, synthetic_cifar, synthetic_faces
from repro.data.encryption import (
    EncryptedDataset,
    EncryptedRecord,
    decrypt_record,
    encrypt_dataset,
)

__all__ = [
    "Dataset",
    "synthetic_cifar",
    "synthetic_faces",
    "Augmenter",
    "iterate_minibatches",
    "EncryptedRecord",
    "EncryptedDataset",
    "encrypt_dataset",
    "decrypt_record",
]
