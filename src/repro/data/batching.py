"""Mini-batch iteration with shuffling."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["iterate_minibatches"]


def iterate_minibatches(x: np.ndarray, y: np.ndarray, batch_size: int,
                        rng: Optional[np.random.Generator] = None,
                        drop_last: bool = False,
                        start_batch: int = 0,
                        ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield shuffled ``(x, y)`` mini-batches.

    The paper shuffles and combines the *decrypted* training data from all
    participants into mini-batches inside the enclave; ``rng`` should then
    be the enclave's trusted generator.

    ``start_batch`` skips the first ``start_batch`` batches *after* the
    shuffle permutation is drawn: a resumed run that restores ``rng`` to
    its epoch-start state replays the identical order and continues at the
    exact batch an interrupted epoch reached.
    """
    if batch_size <= 0:
        raise ConfigurationError("batch_size must be positive")
    if start_batch < 0:
        raise ConfigurationError("start_batch must be >= 0")
    n = x.shape[0]
    order = rng.permutation(n) if rng is not None else np.arange(n)
    for start in range(start_batch * batch_size, n, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and idx.shape[0] < batch_size:
            return
        yield x[idx], y[idx]
