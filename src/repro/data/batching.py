"""Mini-batch iteration with shuffling."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["iterate_minibatches"]


def iterate_minibatches(x: np.ndarray, y: np.ndarray, batch_size: int,
                        rng: Optional[np.random.Generator] = None,
                        drop_last: bool = False,
                        ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield shuffled ``(x, y)`` mini-batches.

    The paper shuffles and combines the *decrypted* training data from all
    participants into mini-batches inside the enclave; ``rng`` should then
    be the enclave's trusted generator.
    """
    if batch_size <= 0:
        raise ConfigurationError("batch_size must be positive")
    n = x.shape[0]
    order = rng.permutation(n) if rng is not None else np.arange(n)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and idx.shape[0] < batch_size:
            return
        yield x[idx], y[idx]
