"""The encrypted provisioning format for training data.

Participants locally seal their private training data with their own
symmetric keys and submit the encrypted records to the training server
(paper, Section IV-A). Labels travel in the clear — the threat model says
participants "will release the training data labels attached to their
corresponding (encrypted) training instances" — but are *authenticated*: the
AEAD associated data binds (source id, record index, label), so relabelling
or splicing a record is detected exactly like a forged payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.crypto.aead import Aead, new_aead
from repro.crypto.keys import SymmetricKey
from repro.data.datasets import Dataset
from repro.utils.serialization import array_from_bytes, array_to_bytes, canonical_json

__all__ = [
    "EncryptedRecord",
    "EncryptedDataset",
    "encrypt_dataset",
    "iter_encrypted_records",
    "decrypt_record",
    "record_aad",
]


@dataclass(frozen=True)
class EncryptedRecord:
    """One encrypted training instance with its cleartext label."""

    source_id: str
    index: int
    label: int
    nonce: bytes
    sealed: bytes  # AEAD ciphertext || tag over the serialized image tensor


@dataclass
class EncryptedDataset:
    """All encrypted records from one participant."""

    source_id: str
    records: List[EncryptedRecord]

    def __len__(self) -> int:
        return len(self.records)


def record_aad(source_id: str, index: int, label: int) -> bytes:
    """Associated data binding a record to its source, index, and label."""
    return canonical_json({"source": source_id, "index": index, "label": label})


#: Records sealed per bulk-AEAD batch; bounds both the memory the batched
#: XOR touches and the latency before the first record streams out.
_BULK_CHUNK = 256


def iter_encrypted_records(dataset: Dataset, key: SymmetricKey, source_id: str,
                           cipher: str = "hmac-ctr", start_index: int = 0,
                           bulk_chunk: int = 1) -> Iterator[EncryptedRecord]:
    """Lazily seal ``dataset``, streaming records out as they are produced.

    Unlike :func:`encrypt_dataset`, nothing is materialised beyond one
    chunk: records are produced on demand, so a million-record dataset
    streams through a chunked upload with O(chunk) memory. The default
    ``bulk_chunk=1`` keeps the strict laziness contract — pulling one
    record consumes exactly one nonce. With ``bulk_chunk > 1`` and a
    cipher exposing ``seal_many`` (the HMAC-CTR bulk cipher), records are
    sealed in vectorised batches — byte-identical output, but each chunk's
    nonces are consumed when its first record is pulled. AES-GCM always
    takes the record-at-a-time path.

    ``start_index`` supports resuming an interrupted upload: records before
    it are skipped without being re-encrypted (the caller is responsible
    for advancing ``key`` past any already-spent nonces first — see
    :meth:`~repro.crypto.keys.SymmetricKey.advance_past`).
    """
    aead = new_aead(key.material, cipher=cipher)
    if bulk_chunk <= 1 or not hasattr(aead, "seal_many"):
        for i in range(start_index, len(dataset)):
            nonce = key.next_nonce()
            label = int(dataset.y[i])
            sealed = aead.seal(
                nonce, array_to_bytes(dataset.x[i]),
                record_aad(source_id, i, label),
            )
            yield EncryptedRecord(
                source_id=source_id, index=i, label=label, nonce=nonce,
                sealed=sealed,
            )
        return
    for chunk_start in range(start_index, len(dataset), bulk_chunk):
        chunk = range(chunk_start, min(chunk_start + bulk_chunk, len(dataset)))
        nonces = [key.next_nonce() for _ in chunk]
        labels = [int(dataset.y[i]) for i in chunk]
        sealed_chunk = aead.seal_many([
            (nonce, array_to_bytes(dataset.x[i]),
             record_aad(source_id, i, label))
            for nonce, label, i in zip(nonces, labels, chunk)
        ])
        for nonce, label, i, sealed in zip(nonces, labels, chunk, sealed_chunk):
            yield EncryptedRecord(
                source_id=source_id, index=i, label=label, nonce=nonce,
                sealed=sealed,
            )


def encrypt_dataset(dataset: Dataset, key: SymmetricKey, source_id: str,
                    cipher: str = "hmac-ctr") -> EncryptedDataset:
    """Seal every instance of ``dataset`` under the participant's key.

    Materialises everything anyway, so it always drives the bulk
    ``seal_many`` path when the cipher supports it.
    """
    return EncryptedDataset(
        source_id=source_id,
        records=list(iter_encrypted_records(dataset, key, source_id,
                                            cipher=cipher,
                                            bulk_chunk=_BULK_CHUNK)),
    )


def decrypt_record(record: EncryptedRecord, aead: Aead) -> Tuple[np.ndarray, int]:
    """Authenticate and decrypt one record; returns (image, label).

    Raises :class:`repro.errors.AuthenticationError` if the record was
    forged, tampered with, or relabelled.
    """
    aad = record_aad(record.source_id, record.index, record.label)
    plaintext = aead.open(record.nonce, record.sealed, aad)
    return array_from_bytes(plaintext), record.label
