"""The encrypted provisioning format for training data.

Participants locally seal their private training data with their own
symmetric keys and submit the encrypted records to the training server
(paper, Section IV-A). Labels travel in the clear — the threat model says
participants "will release the training data labels attached to their
corresponding (encrypted) training instances" — but are *authenticated*: the
AEAD associated data binds (source id, record index, label), so relabelling
or splicing a record is detected exactly like a forged payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.crypto.aead import Aead, new_aead
from repro.crypto.keys import SymmetricKey
from repro.data.datasets import Dataset
from repro.utils.serialization import array_from_bytes, array_to_bytes, canonical_json

__all__ = [
    "EncryptedRecord",
    "EncryptedDataset",
    "encrypt_dataset",
    "iter_encrypted_records",
    "decrypt_record",
    "record_aad",
]


@dataclass(frozen=True)
class EncryptedRecord:
    """One encrypted training instance with its cleartext label."""

    source_id: str
    index: int
    label: int
    nonce: bytes
    sealed: bytes  # AEAD ciphertext || tag over the serialized image tensor


@dataclass
class EncryptedDataset:
    """All encrypted records from one participant."""

    source_id: str
    records: List[EncryptedRecord]

    def __len__(self) -> int:
        return len(self.records)


def record_aad(source_id: str, index: int, label: int) -> bytes:
    """Associated data binding a record to its source, index, and label."""
    return canonical_json({"source": source_id, "index": index, "label": label})


def iter_encrypted_records(dataset: Dataset, key: SymmetricKey, source_id: str,
                           cipher: str = "hmac-ctr",
                           start_index: int = 0) -> Iterator[EncryptedRecord]:
    """Lazily seal ``dataset`` one instance at a time.

    Unlike :func:`encrypt_dataset`, nothing is materialised: each
    :class:`EncryptedRecord` is produced on demand, so a million-record
    dataset streams through a chunked upload with O(chunk) memory.

    ``start_index`` supports resuming an interrupted upload: records before
    it are skipped without being re-encrypted (the caller is responsible
    for advancing ``key`` past any already-spent nonces first — see
    :meth:`~repro.crypto.keys.SymmetricKey.advance_past`).
    """
    aead = new_aead(key.material, cipher=cipher)
    for i in range(start_index, len(dataset)):
        nonce = key.next_nonce()
        label = int(dataset.y[i])
        sealed = aead.seal(
            nonce, array_to_bytes(dataset.x[i]), record_aad(source_id, i, label)
        )
        yield EncryptedRecord(
            source_id=source_id, index=i, label=label, nonce=nonce, sealed=sealed
        )


def encrypt_dataset(dataset: Dataset, key: SymmetricKey, source_id: str,
                    cipher: str = "hmac-ctr") -> EncryptedDataset:
    """Seal every instance of ``dataset`` under the participant's key."""
    return EncryptedDataset(
        source_id=source_id,
        records=list(iter_encrypted_records(dataset, key, source_id, cipher=cipher)),
    )


def decrypt_record(record: EncryptedRecord, aead: Aead) -> Tuple[np.ndarray, int]:
    """Authenticate and decrypt one record; returns (image, label).

    Raises :class:`repro.errors.AuthenticationError` if the record was
    forged, tampered with, or relabelled.
    """
    aad = record_aad(record.source_id, record.index, record.label)
    plaintext = aead.open(record.nonce, record.sealed, aad)
    return array_from_bytes(plaintext), record.label
