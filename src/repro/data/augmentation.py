"""In-enclave data augmentation.

The paper augments mini-batches *inside* the training enclave after
decryption (random rotation, flipping, distortion — Section IV-A), drawing
randomness from the on-chip hardware RNG. :class:`Augmenter` reproduces that
pipeline; the trainer wires its generator to the enclave's
:class:`repro.enclave.platform.TrustedRng`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import ndimage

__all__ = ["Augmenter"]


@dataclass
class Augmenter:
    """Random rotation + horizontal flip + photometric distortion.

    Args:
        rng: Randomness source (the enclave's trusted RNG in CalTrain).
        max_rotation_degrees: Rotation is uniform in +/- this.
        flip_probability: Chance of a horizontal flip per image.
        distortion: Strength of brightness/contrast jitter.
    """

    rng: np.random.Generator
    max_rotation_degrees: float = 10.0
    flip_probability: float = 0.5
    distortion: float = 0.1

    def augment_batch(self, x: np.ndarray) -> np.ndarray:
        """Augment one NHWC batch; returns a new array in [0, 1]."""
        out = np.empty_like(x)
        for i in range(x.shape[0]):
            out[i] = self._augment_one(x[i])
        return out

    def _augment_one(self, image: np.ndarray) -> np.ndarray:
        augmented = image
        if self.max_rotation_degrees > 0:
            angle = self.rng.uniform(-self.max_rotation_degrees, self.max_rotation_degrees)
            augmented = ndimage.rotate(
                augmented, angle, axes=(0, 1), reshape=False, order=1, mode="nearest"
            )
        if self.rng.random() < self.flip_probability:
            augmented = augmented[:, ::-1, :]
        if self.distortion > 0:
            gain = 1.0 + self.rng.uniform(-self.distortion, self.distortion)
            bias = self.rng.uniform(-self.distortion, self.distortion) * 0.5
            augmented = augmented * gain + bias
        return np.clip(augmented, 0.0, 1.0).astype(np.float32)
