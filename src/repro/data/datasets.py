"""Synthetic image datasets.

:func:`synthetic_cifar` generates a 10-class, 28x28x3 dataset whose classes
are fine-grained texture frequencies (high-frequency gratings at a shared
orientation, plus instance jitter and noise) — separable by small
convolutional networks but not trivially, and with the property the Fig. 5
reproduction needs: the class texture survives full-resolution shallow
feature maps but aliases away under pooling. :func:`synthetic_faces`
generates an identity-classification dataset playing VGG-Face's role in the
accountability experiments: per-identity facial prototypes with
pose/illumination-style variation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import RngStream

__all__ = ["Dataset", "synthetic_cifar", "synthetic_faces"]


@dataclass
class Dataset:
    """A labelled image dataset: ``x`` in [0, 1], NHWC float32."""

    x: np.ndarray
    y: np.ndarray
    name: str = "dataset"
    #: Optional per-instance metadata (e.g. ground-truth poison flags).
    flags: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ConfigurationError("x and y lengths differ")
        self.x = self.x.astype(np.float32)
        self.y = self.y.astype(np.int64)

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self) else 0

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Dataset":
        idx = np.asarray(indices)
        return Dataset(
            x=self.x[idx],
            y=self.y[idx],
            name=name or self.name,
            flags={k: v[idx] for k, v in self.flags.items()},
        )

    def of_class(self, label: int) -> "Dataset":
        return self.subset(np.flatnonzero(self.y == label), name=f"{self.name}/class{label}")

    def split(self, fractions: Sequence[float],
              rng: Optional[np.random.Generator] = None) -> List["Dataset"]:
        """Random disjoint split by fractions (must sum to <= 1)."""
        if sum(fractions) > 1.0 + 1e-9:
            raise ConfigurationError("split fractions sum to more than 1")
        order = (
            rng.permutation(len(self)) if rng is not None else np.arange(len(self))
        )
        parts: List[Dataset] = []
        start = 0
        for i, frac in enumerate(fractions):
            count = int(round(frac * len(self)))
            parts.append(self.subset(order[start : start + count], name=f"{self.name}/part{i}"))
            start += count
        return parts

    @staticmethod
    def concatenate(datasets: Sequence["Dataset"], name: str = "merged") -> "Dataset":
        flag_keys = set()
        for ds in datasets:
            flag_keys |= set(ds.flags)
        flags = {}
        for key in flag_keys:
            flags[key] = np.concatenate([
                ds.flags.get(key, np.zeros(len(ds), dtype=bool)) for ds in datasets
            ])
        return Dataset(
            x=np.concatenate([ds.x for ds in datasets]),
            y=np.concatenate([ds.y for ds in datasets]),
            name=name,
            flags=flags,
        )


def _smooth_field(rng: np.random.Generator, h: int, w: int,
                  frequency: float, phase: np.ndarray) -> np.ndarray:
    """A smooth 2-D oriented sinusoid field in [-1, 1]."""
    yy, xx = np.mgrid[0:h, 0:w] / max(h, w)
    angle = phase[0] * 2 * np.pi
    proj = np.cos(angle) * xx + np.sin(angle) * yy
    return np.sin(2 * np.pi * frequency * proj + phase[1] * 2 * np.pi)


def _class_prototype(rng: np.random.Generator, h: int, w: int, c: int,
                     class_index: int = 0, num_classes: int = 1) -> np.ndarray:
    """A per-class prototype dominated by fine oriented texture.

    The class signature is a *high-frequency* oriented grating (wavelength
    ~3-4 pixels). This matters for the Fig. 5 reproduction: fine texture is
    preserved by full-resolution shallow feature maps (so shallow IRs leak
    class content) but destroyed by pooling (so deep IRs do not) — the same
    shallow-leak/deep-safe structure natural CIFAR images give the paper.
    A weak shared blob layout adds visual richness without being
    class-discriminative.
    """
    yy, xx = np.mgrid[0:h, 0:w] / max(h, w)
    # All classes share one orientation and differ by *frequency* only:
    # orientation survives pooling (it would leak from deep IRs) while
    # frequency aliases away, giving the shallow-leak/deep-safe structure.
    angle = np.pi / 4 + rng.uniform(-0.03, 0.03)
    frequency = 5.0 + 7.0 * class_index / max(1, num_classes - 1)
    proj = np.cos(angle) * xx + np.sin(angle) * yy
    grating = np.sin(2 * np.pi * frequency * proj + rng.uniform(0, 2 * np.pi))
    # Achromatic texture: identical across channels so the (grayscale)
    # IR-image projection preserves it.
    proto = np.repeat(grating[..., None], c, axis=-1) * 0.9
    # Non-discriminative low-frequency backdrop shared across classes.
    backdrop = _smooth_field(rng, h, w, frequency=1.5, phase=rng.random(2))
    proto += backdrop[..., None] * rng.uniform(-0.3, 0.3, size=c)
    return proto


def _render_instances(rng: np.random.Generator, prototype: np.ndarray,
                      count: int, noise: float, jitter: int) -> np.ndarray:
    """Instances of one class: shifted prototype + brightness jitter + noise."""
    h, w, c = prototype.shape
    out = np.empty((count, h, w, c), dtype=np.float64)
    for i in range(count):
        dy, dx = rng.integers(-jitter, jitter + 1, size=2)
        shifted = np.roll(np.roll(prototype, dy, axis=0), dx, axis=1)
        gain = rng.uniform(0.8, 1.2)
        bias = rng.uniform(-0.1, 0.1)
        out[i] = shifted * gain + bias
    out += rng.normal(0.0, noise, size=out.shape)
    # Map from roughly [-1.5, 1.5] into [0, 1].
    return np.clip(out * 0.3 + 0.5, 0.0, 1.0)


def synthetic_cifar(rng: RngStream, num_train: int = 2000, num_test: int = 400,
                    num_classes: int = 10,
                    shape: Tuple[int, int, int] = (28, 28, 3),
                    noise: float = 0.25) -> Tuple[Dataset, Dataset]:
    """The CIFAR-10 stand-in: (train, test) with balanced classes."""
    h, w, c = shape
    proto_rng = rng.child("prototypes").generator
    prototypes = [
        _class_prototype(proto_rng, h, w, c, class_index=k, num_classes=num_classes)
        for k in range(num_classes)
    ]

    def build(count: int, which: str) -> Dataset:
        gen = rng.child(f"instances/{which}").generator
        per_class = count // num_classes
        xs, ys = [], []
        for label, proto in enumerate(prototypes):
            xs.append(_render_instances(gen, proto, per_class, noise, jitter=2))
            ys.append(np.full(per_class, label))
        x = np.concatenate(xs).astype(np.float32)
        y = np.concatenate(ys)
        order = gen.permutation(len(y))
        return Dataset(x=x[order], y=y[order], name=f"synthetic-cifar/{which}")

    return build(num_train, "train"), build(num_test, "test")


def synthetic_faces(rng: RngStream, num_identities: int = 8,
                    per_identity: int = 60,
                    shape: Tuple[int, int, int] = (16, 16, 3),
                    noise: float = 0.15) -> Dataset:
    """The VGG-Face stand-in: one class per identity.

    Identity prototypes share a common "face" layout (centered oval, eye
    blobs) with identity-specific color/structure variation, so embeddings
    of the same identity cluster — the property Fig. 7/8 rely on.
    """
    h, w, c = shape
    proto_rng = rng.child("face-prototypes").generator
    yy, xx = np.mgrid[0:h, 0:w]
    # Common face layout: an oval mask and two eye positions.
    oval = np.exp(-(((yy - h / 2) / (0.42 * h)) ** 2 + ((xx - w / 2) / (0.34 * w)) ** 2) * 2)
    prototypes = []
    for identity in range(num_identities):
        face = oval[..., None] * proto_rng.uniform(0.3, 1.0, size=c)
        for ey, ex in ((0.35, 0.32), (0.35, 0.68)):
            eye = np.exp(-((yy - ey * h) ** 2 + (xx - ex * w) ** 2) / (2 * (0.06 * h * proto_rng.uniform(0.8, 1.6)) ** 2))
            face -= eye[..., None] * proto_rng.uniform(0.3, 0.9, size=c)
        # Identity-specific texture signature.
        face += _class_prototype(proto_rng, h, w, c, class_index=identity,
                                 num_classes=num_identities) * 0.5
        prototypes.append(face)

    gen = rng.child("face-instances").generator
    xs, ys = [], []
    for label, proto in enumerate(prototypes):
        xs.append(_render_instances(gen, proto, per_identity, noise, jitter=1))
        ys.append(np.full(per_identity, label))
    x = np.concatenate(xs).astype(np.float32)
    y = np.concatenate(ys)
    order = gen.permutation(len(y))
    return Dataset(x=x[order], y=y[order], name="synthetic-faces")
